"""Data-linearization prefetching (Section 2.2 / Figure 7), measured.

On a scattered linked list, software prefetching can only reach one node
ahead -- the pointer-chasing problem.  After linearization, "three nodes
ahead" is just "the next cache line", so block prefetching hides the
full miss latency.  This example measures all four schemes of Figure 7
on one list.

Run:  python examples/prefetch_linearize.py
"""

from repro import Machine, MachineConfig, NULL, list_linearize

NODES = 500
NODE_BYTES = 16
NEXT_OFFSET = 8
WORK_PER_NODE = 12
PREFETCH_BLOCK = 4


def build_scattered_list(m: Machine) -> int:
    head_handle = m.malloc(8)
    slot = head_handle
    for value in range(NODES):
        node = m.malloc(NODE_BYTES)
        m.malloc(112)  # scatter
        m.store(node, value)
        m.store(slot, node)
        slot = node + NEXT_OFFSET
    m.store(slot, NULL)
    return head_handle


def traverse(m: Machine, head_handle: int, prefetch: bool, linear: bool) -> int:
    line = m.config.hierarchy.line_size
    total = 0
    node = m.load(head_handle)
    while node != NULL:
        m.execute(WORK_PER_NODE)
        total += m.load(node)
        next_node = m.load(node + NEXT_OFFSET)
        if prefetch:
            if linear:
                m.prefetch(node + line, PREFETCH_BLOCK)  # block prefetch
            elif next_node != NULL:
                m.prefetch(next_node, 1)  # one hop is all we know
        node = next_node
    return total


def main() -> None:
    expected = sum(range(NODES))
    print(f"{'scheme':>8} {'cycles':>10} {'vs N':>7}")
    baseline = None
    for label, prefetch, linear in (
        ("N", False, False),
        ("NP", True, False),
        ("L", False, True),
        ("LP", True, True),
    ):
        m = Machine(MachineConfig().with_line_size(32))
        head = build_scattered_list(m)
        if linear:
            pool = m.create_pool(1 << 16)
            list_linearize(m, head, NEXT_OFFSET, NODE_BYTES, pool)
        traverse(m, head, prefetch, linear)  # warm-up
        start = m.cycles
        assert traverse(m, head, prefetch, linear) == expected
        cycles = m.cycles - start
        if baseline is None:
            baseline = cycles
        print(f"{label:>8} {cycles:>10.0f} {baseline / cycles:>6.2f}x")


if __name__ == "__main__":
    main()
