"""Out-of-core list linearization (Section 2.2 / conclusion).

A linked list scattered across 64 pages is traversed with only 8 page
frames of memory: nearly every node is a disk fault.  Linearizing the
list into contiguous pool pages turns the traversal into a sequential
sweep of a handful of pages -- the same optimization, one level further
down the memory hierarchy.

Run:  python examples/out_of_core.py
"""

from repro.vm import run_out_of_core_experiment


def main() -> None:
    scattered, linearized = run_out_of_core_experiment(
        nodes=300, span_pages=64, resident_pages=8, traversals=3
    )
    print(f"{'layout':12s}{'cycles':>15}{'page faults':>14}")
    for result in (scattered, linearized):
        print(f"{result.label:12s}{result.cycles:>15.0f}{result.page_faults:>14d}")
    print(f"\nspeedup from linearization: {scattered.cycles / linearized.cycles:.1f}x")
    assert scattered.checksum == linearized.checksum


if __name__ == "__main__":
    main()
