"""Figure 1 of the paper, executed: memory contents around a relocation.

Recreates the paper's exact example -- five 32-bit elements relocated
from addresses 800..819 to 5800..5819 -- and prints the memory/forwarding
state before and after, then performs the paper's forwarded 32-bit load
of address 804 (expected value: 47).

Run:  python examples/figure1_walkthrough.py
"""

from repro import ISAExtensions, Machine, relocate
from repro.core.debug import dump_chain, dump_region

SRC = 800       # the figure uses decimal addresses
TGT = 5800
VALUES = [3, 47, 0, 12, 5]


def main() -> None:
    m = Machine()
    isa = ISAExtensions(m)

    for index, value in enumerate(VALUES):
        m.memory.write_data(SRC + 4 * index, value, 4)

    print(dump_region(m.memory, SRC, 3, title="(a) before relocation"))
    print()

    # Relocate three words: the five elements plus the co-resident
    # subword that shares the last word (the figure's value 5).
    relocate(m, SRC, TGT, nwords=3)

    print(dump_region(m.memory, SRC, 3, title="(b) after relocation -- old"))
    print()
    print(dump_region(m.memory, TGT, 3, title="    after relocation -- new"))
    print()

    # The paper's example access: a 32-bit load of address 804 is
    # forwarded to 5804 and returns 47.
    loaded = m.load(SRC + 4, 4)
    print(f"32-bit load of address {SRC + 4}: {loaded}   (forwarded to {TGT + 4})")
    assert loaded == 47

    # The ISA extensions see through the forwarding:
    print(f"Read_FBit({SRC})          = {isa.Read_FBit(SRC)}")
    print(f"Unforwarded_Read({SRC})   = {isa.Unforwarded_Read(SRC)}  (the stub)")
    print(f"forwarding chain: {dump_chain(m.memory, SRC)}")


if __name__ == "__main__":
    main()
