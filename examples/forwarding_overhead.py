"""Forwarding overhead and the user-level trap tools (Sections 3.2, 5.4).

A miniature of the SMV case study: relocate a structure while leaving
stray pointers stale, then show three ways of living with the fallout:

1. eat the forwarding cost on every stale dereference;
2. profile where forwarding happens (ForwardingProfiler);
3. repair stray pointers on the fly (PointerFixupTrap), paying once.

Run:  python examples/forwarding_overhead.py
"""

from repro import (
    ForwardingProfiler,
    Machine,
    PointerFixupTrap,
    relocate,
)


def build(m: Machine, count: int = 64):
    """Heap objects plus an array of (stale-to-be) pointers to them."""
    objects = [m.malloc(32) for _ in range(count)]
    for index, obj in enumerate(objects):
        m.store(obj, index * 7)
    pointer_table = m.malloc(count * 8)
    for index, obj in enumerate(objects):
        m.store(pointer_table + index * 8, obj)
    return objects, pointer_table


def relocate_all(m: Machine, objects) -> None:
    pool = m.create_pool(1 << 16, "demo")
    for obj in objects:
        relocate(m, obj, pool.allocate(32), nwords=4)


def sweep(m: Machine, pointer_table: int, count: int) -> int:
    total = 0
    for index in range(count):
        total += m.load(m.load(pointer_table + index * 8))
    return total


def main() -> None:
    count = 64

    # --- 1. plain forwarding: every sweep pays the hops -----------------
    m = Machine()
    objects, table = build(m, count)
    expected = sweep(m, table, count)
    relocate_all(m, objects)
    before = m.cycles
    assert sweep(m, table, count) == expected
    print(f"sweep with stale pointers: {m.cycles - before:7.0f} cycles, "
          f"{m.stats().forwarding_hops} hops so far")

    # --- 2. profiling traps ---------------------------------------------
    profiler = ForwardingProfiler(granularity=4096)
    m.set_trap_handler(profiler)
    sweep(m, table, count)
    m.set_trap_handler(None)
    print(f"profiler saw {profiler.profile.events} forwarded accesses in "
          f"{len(profiler.profile.by_region)} region(s)")

    # --- 3. fix-up traps: pay once, then run at full speed ---------------
    slot_of = {}  # final address -> pointer slot (the app-specific knowledge)
    for index in range(count):
        slot_of[m.load(table + index * 8)] = table + index * 8

    def fixup(machine, event):
        slot = slot_of.get(event.initial_address)
        if slot is None:
            return False
        machine.store(slot, event.final_address)
        slot_of[event.final_address] = slot
        return True

    trap = PointerFixupTrap(fixup)
    m.set_trap_handler(trap)
    sweep(m, table, count)     # every stale pointer trips once and is fixed
    m.set_trap_handler(None)
    print(f"fixup trap repaired {trap.fixes}/{trap.invocations} pointers")

    hops_before = m.stats().forwarding_hops
    before = m.cycles
    assert sweep(m, table, count) == expected
    print(f"sweep after fix-up:        {m.cycles - before:7.0f} cycles, "
          f"{m.stats().forwarding_hops - hops_before} new hops")


if __name__ == "__main__":
    main()
