"""Quickstart: safe data relocation with memory forwarding.

Builds a small object graph on the simulated machine, relocates an
object WITHOUT updating one of the pointers to it, and shows that the
stale pointer still reads the right data -- the paper's core guarantee.

Run:  python examples/quickstart.py
"""

from repro import Machine, relocate


def main() -> None:
    m = Machine()

    # An 'object': four words on the simulated heap.
    obj = m.malloc(32)
    for word in range(4):
        m.store(obj + 8 * word, 100 + word)

    # Two pointers to it, stored in simulated memory like any C pointer.
    p1 = m.malloc(8)
    p2 = m.malloc(8)
    m.store(p1, obj)
    m.store(p2, obj)

    # Relocate the object into a contiguous pool -- and update only p1.
    # In plain C, leaving p2 stale would be a use-after-move bug; with
    # memory forwarding it is merely a slower access.
    pool = m.create_pool(4096, "quickstart")
    new_home = pool.allocate(32)
    relocate(m, obj, new_home, nwords=4)
    m.store(p1, new_home)

    direct = m.load(m.load(p1) + 8)   # via the updated pointer
    forwarded = m.load(m.load(p2) + 8)  # via the stale pointer
    print(f"updated pointer reads:   {direct}")
    print(f"stale pointer reads:     {forwarded}  (forwarded, still correct)")

    stats = m.stats()
    print(f"\nforwarded loads:         {stats.loads.forwarded}")
    print(f"total forwarding hops:   {stats.forwarding_hops}")
    print(f"simulated cycles:        {stats.cycles:.0f}")
    print(f"relocated words:         {stats.relocation.words_relocated}")
    assert direct == forwarded == 101


if __name__ == "__main__":
    main()
