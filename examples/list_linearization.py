"""List linearization (Figure 2 / Figure 4 of the paper), measured.

Builds two identical scattered linked lists, linearizes one into a
contiguous pool, and compares steady-state traversal cost and cache
misses at several line sizes -- a miniature of Figure 5's headline
result.

Run:  python examples/list_linearization.py
"""

from repro import Machine, MachineConfig, NULL, list_linearize

NODES = 400
NODE_BYTES = 16
NEXT_OFFSET = 8


def build_scattered_list(m: Machine) -> int:
    """A list whose nodes are separated by unrelated allocations."""
    head_handle = m.malloc(8)
    slot = head_handle
    for value in range(NODES):
        node = m.malloc(NODE_BYTES)
        m.malloc(112)  # other allocations land between the nodes
        m.store(node, value)
        m.store(slot, node)
        slot = node + NEXT_OFFSET
    m.store(slot, NULL)
    return head_handle


def traverse(m: Machine, head_handle: int) -> int:
    total = 0
    node = m.load(head_handle)
    while node != NULL:
        m.execute(10)  # per-element computation
        total += m.load(node)
        node = m.load(node + NEXT_OFFSET)
    return total


def measure(m: Machine, head_handle: int) -> tuple[float, int]:
    traverse(m, head_handle)  # warm-up pass
    cycles_before = m.cycles
    misses_before = m.stats().load_misses
    traverse(m, head_handle)
    return m.cycles - cycles_before, m.stats().load_misses - misses_before


def main() -> None:
    print(f"{'line':>5} {'scattered':>18} {'linearized':>18} {'speedup':>8}")
    for line_size in (32, 64, 128):
        m = Machine(MachineConfig().with_line_size(line_size))
        scattered = build_scattered_list(m)
        optimized = build_scattered_list(m)
        pool = m.create_pool(1 << 16, "list")
        new_head, moved = list_linearize(m, optimized, NEXT_OFFSET, NODE_BYTES, pool)
        assert moved == NODES

        s_cycles, s_misses = measure(m, scattered)
        l_cycles, l_misses = measure(m, optimized)
        print(
            f"{line_size:>4}B {s_cycles:>10.0f} ({s_misses:>4}m) "
            f"{l_cycles:>10.0f} ({l_misses:>4}m) {s_cycles / l_cycles:>7.2f}x"
        )

        # Safety: both lists still hold the same values.
        assert traverse(m, scattered) == traverse(m, optimized)


if __name__ == "__main__":
    main()
