"""False-sharing avoidance on a coherent multiprocessor (Section 2.2).

Four CPUs each increment their own private counters, but the counters of
different CPUs were allocated interleaved, so each cache line holds four
owners and ping-pongs on every write round.  Relocating each CPU's
counters into its own line-aligned region (safe under memory forwarding,
even with stale cross-references) removes every coherence miss.

Run:  python examples/false_sharing.py
"""

from repro.smp import run_false_sharing_experiment


def main() -> None:
    before, after = run_false_sharing_experiment(
        cpus=4, per_cpu_records=32, rounds=40
    )
    print(f"{'layout':34s}{'cycles':>12}{'coherence misses':>20}")
    for result in (before, after):
        print(f"{result.label:34s}{result.cycles:>12.0f}{result.coherence_misses:>20d}")
    print(f"\nspeedup from relocation: {before.cycles / after.cycles:.2f}x")
    assert before.checksum == after.checksum, "relocation must not change results"


if __name__ == "__main__":
    main()
