"""Subtree clustering of a binary tree (Figure 9), measured.

Builds a tree in pre-order allocation order (Figure 9(a)), clusters its
subtrees into cache-line-sized chunks (Figure 9(b)), and measures random
root-to-leaf descents before and after -- the access pattern BH's force
phase performs.

Run:  python examples/subtree_clustering.py
"""

from repro import Machine, MachineConfig, NULL
from repro.opts.clustering import cluster_subtrees
from repro.runtime.records import RecordLayout
from repro.runtime.rng import DeterministicRNG

NODE = RecordLayout("tree_node", [("value", 8), ("left", 8), ("right", 8)])
CHILD_OFFSETS = [NODE.offset("left"), NODE.offset("right")]
DEPTH = 9
WALKS = 400


def build_tree(m: Machine, depth: int, counter: list) -> int:
    node = NODE.alloc(m)
    m.malloc(104)  # realistic allocator noise between nodes
    NODE.write(m, node, "value", counter[0])
    counter[0] += 1
    left = build_tree(m, depth - 1, counter) if depth > 1 else NULL
    right = build_tree(m, depth - 1, counter) if depth > 1 else NULL
    NODE.write(m, node, "left", left)
    NODE.write(m, node, "right", right)
    return node


def random_descents(m: Machine, root_slot: int, seed: int) -> tuple[float, int]:
    rng = DeterministicRNG(seed)
    start_cycles = m.cycles
    start_misses = m.stats().load_misses
    checksum = 0
    for _ in range(WALKS):
        node = m.load(root_slot)
        while node != NULL:
            checksum += NODE.read(m, node, "value")
            side = "left" if rng.chance(0.5) else "right"
            node = NODE.read(m, node, side)
    return m.cycles - start_cycles, m.stats().load_misses - start_misses


def main() -> None:
    print(f"{'line':>5} {'before':>20} {'after':>20} {'speedup':>8}")
    for line_size in (64, 128, 256):
        m = Machine(MachineConfig().with_line_size(line_size))
        root_slot = m.malloc(8)
        m.store(root_slot, build_tree(m, DEPTH, [0]))

        before_cycles, before_misses = random_descents(m, root_slot, seed=1)

        pool = m.create_pool(1 << 18)
        result = cluster_subtrees(
            m, root_slot, CHILD_OFFSETS, NODE.size, pool, line_size
        )
        after_cycles, after_misses = random_descents(m, root_slot, seed=1)
        print(
            f"{line_size:>4}B {before_cycles:>12.0f} ({before_misses:>5}m)"
            f" {after_cycles:>12.0f} ({after_misses:>5}m)"
            f" {before_cycles / after_cycles:>7.2f}x"
            f"   [{result.chunks} chunks]"
        )


if __name__ == "__main__":
    main()
