"""Binary decision diagram substrate used by the SMV application."""
