"""A reduced ordered BDD package on the simulated machine (SMV substrate).

The paper's SMV case study (Section 5.4) is a model checker built on
Binary Decision Diagrams whose nodes are reachable two ways:

* through the **unique table** -- an array of buckets pointing to linked
  lists of nodes (collision chains), and
* through **tree pointers** -- the ``low``/``high`` fields of other nodes.

The locality optimization linearizes the unique-table chains.  The chain
``next`` pointers and bucket heads are rewritten by the linearizer, but
the tree pointers scattered through every other node are *not* updated,
so dereferencing them after relocation is forwarded -- SMV is the one
application where the safety net fires constantly, which is exactly what
Figure 10 measures.

``fixup_tree_pointers`` implements the *perfect forwarding* bound
(scheme ``Perf``): every stale pointer is rewritten to its final address
at zero simulated cost, so relocation happens but no reference ever pays
a hop.

The package is a conventional ROBDD implementation: ``mk`` with
unique-table hashing, ``apply`` with a direct-mapped computed cache kept
in simulated memory, and traversal utilities (node count, satisfying
assignment count) that exercise the tree pointers.
"""

from __future__ import annotations

from repro.core.machine import NULL, Machine
from repro.core.memory import WORD_SIZE
from repro.core.relocate import list_linearize
from repro.mem.pool import RelocationPool
from repro.runtime.records import RecordLayout

#: BDD node: variable index, low/high children, unique-chain link, and an
#: aux word (mark bits / reference counts, written during traversals as in
#: real BDD packages -- the source of SMV's forwarded *stores*).
BDD_NODE = RecordLayout(
    "bdd_node", [("var", 8), ("low", 8), ("high", 8), ("next", 8), ("aux", 8)]
)

#: Computed-cache entry: (tagged key1, key2, result).
CACHE_ENTRY = RecordLayout("bdd_cache", [("key1", 8), ("key2", 8), ("result", 8)])

#: Variable index used by the two terminal nodes (ordered after all real
#: variables).
TERMINAL_VAR = (1 << 32) - 1

#: Supported binary operations for apply().
OP_AND = 1
OP_OR = 2
OP_XOR = 3

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(a: int, b: int, c: int) -> int:
    value = (a * _GOLDEN) ^ (b * 0xC2B2AE3D27D4EB4F) ^ (c * 0x165667B19E3779F9)
    value &= _MASK64
    return value >> 24


class BDD:
    """ROBDD manager over simulated memory.

    Parameters
    ----------
    machine:
        The simulated machine nodes live on.
    num_vars:
        Number of boolean variables (ordering = index order).
    buckets:
        Unique-table bucket count.
    cache_slots:
        Computed-cache entries (direct mapped, in simulated memory).
    """

    def __init__(
        self,
        machine: Machine,
        num_vars: int,
        buckets: int = 512,
        cache_slots: int = 1024,
    ) -> None:
        if num_vars < 1:
            raise ValueError(f"num_vars must be >= 1, got {num_vars}")
        self.machine = machine
        self.num_vars = num_vars
        self.buckets = buckets
        self.cache_slots = cache_slots
        self.table_base = machine.malloc(buckets * WORD_SIZE)
        self.cache_base = machine.malloc(cache_slots * CACHE_ENTRY.size)
        # Terminal nodes live outside the unique table and never move.
        self.zero = self._new_node(TERMINAL_VAR, NULL, NULL)
        self.one = self._new_node(TERMINAL_VAR, NULL, NULL)
        self.node_count = 2
        self.mk_calls = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _new_node(self, var: int, low: int, high: int) -> int:
        node = self.machine.malloc(BDD_NODE.size)
        BDD_NODE.write(self.machine, node, "var", var)
        BDD_NODE.write(self.machine, node, "low", low)
        BDD_NODE.write(self.machine, node, "high", high)
        BDD_NODE.write(self.machine, node, "next", NULL)
        BDD_NODE.write(self.machine, node, "aux", 0)
        return node

    def _bucket_handle(self, var: int, low: int, high: int) -> int:
        self.machine.execute(4)  # hash computation
        return self.table_base + (_mix(var, low, high) % self.buckets) * WORD_SIZE

    def mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` (reduced, unique)."""
        self.mk_calls += 1
        if low == high:
            return low
        m = self.machine
        handle = self._bucket_handle(var, low, high)
        node = m.load(handle)
        while node != NULL:
            m.execute(1)
            if (
                BDD_NODE.read(m, node, "var") == var
                and BDD_NODE.read(m, node, "low") == low
                and BDD_NODE.read(m, node, "high") == high
            ):
                return node
            node = BDD_NODE.read(m, node, "next")
        node = self._new_node(var, low, high)
        BDD_NODE.write(m, node, "next", m.load(handle))
        m.store(handle, node)
        self.node_count += 1
        return node

    def var(self, index: int) -> int:
        """The BDD of variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range [0, {self.num_vars})")
        return self.mk(index, self.zero, self.one)

    def nvar(self, index: int) -> int:
        """The BDD of the negation of variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range [0, {self.num_vars})")
        return self.mk(index, self.one, self.zero)

    # ------------------------------------------------------------------
    # Apply with a computed cache in simulated memory
    # ------------------------------------------------------------------
    def _cache_slot(self, op: int, f: int, g: int) -> int:
        self.machine.execute(3)
        return self.cache_base + (_mix(op, f, g) % self.cache_slots) * CACHE_ENTRY.size

    def _cache_lookup(self, op: int, f: int, g: int) -> int | None:
        m = self.machine
        slot = self._cache_slot(op, f, g)
        if CACHE_ENTRY.read(m, slot, "key1") == ((f << 2) | op) & _MASK64 and (
            CACHE_ENTRY.read(m, slot, "key2") == g
        ):
            self.cache_hits += 1
            return CACHE_ENTRY.read(m, slot, "result")
        self.cache_misses += 1
        return None

    def _cache_store(self, op: int, f: int, g: int, result: int) -> None:
        m = self.machine
        slot = self._cache_slot(op, f, g)
        CACHE_ENTRY.write(m, slot, "key1", ((f << 2) | op) & _MASK64)
        CACHE_ENTRY.write(m, slot, "key2", g)
        CACHE_ENTRY.write(m, slot, "result", result)

    def _terminal_case(self, op: int, f: int, g: int) -> int | None:
        zero, one = self.zero, self.one
        if op == OP_AND:
            if f == zero or g == zero:
                return zero
            if f == one:
                return g
            if g == one:
                return f
            if f == g:
                return f
        elif op == OP_OR:
            if f == one or g == one:
                return one
            if f == zero:
                return g
            if g == zero:
                return f
            if f == g:
                return f
        elif op == OP_XOR:
            if f == g:
                return self.zero
            if f == zero:
                return g
            if g == zero:
                return f
        else:
            raise ValueError(f"unknown operation {op}")
        return None

    def apply(self, op: int, f: int, g: int) -> int:
        """Combine two BDDs with a binary boolean operation."""
        m = self.machine
        m.execute(2)
        terminal = self._terminal_case(op, f, g)
        if terminal is not None:
            return terminal
        cached = self._cache_lookup(op, f, g)
        if cached is not None:
            return cached
        f_var = BDD_NODE.read(m, f, "var")
        g_var = BDD_NODE.read(m, g, "var")
        var = min(f_var, g_var)
        if f_var == var:
            f_low = BDD_NODE.read(m, f, "low")
            f_high = BDD_NODE.read(m, f, "high")
        else:
            f_low = f_high = f
        if g_var == var:
            g_low = BDD_NODE.read(m, g, "low")
            g_high = BDD_NODE.read(m, g, "high")
        else:
            g_low = g_high = g
        low = self.apply(op, f_low, g_low)
        high = self.apply(op, f_high, g_high)
        result = self.mk(var, low, high)
        self._cache_store(op, f, g, result)
        return result

    def apply_and(self, f: int, g: int) -> int:
        return self.apply(OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self.apply(OP_OR, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.apply(OP_XOR, f, g)

    def ite_not(self, f: int) -> int:
        """Negation via XOR with the constant one."""
        return self.apply(OP_XOR, f, self.one)

    # ------------------------------------------------------------------
    # Traversals through the tree pointers (the forwarded path in SMV)
    # ------------------------------------------------------------------
    def count_nodes(self, root: int) -> int:
        """Number of distinct nodes reachable from ``root`` (timed walk)."""
        m = self.machine
        seen: set[int] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen or node in (self.zero, self.one):
                continue
            seen.add(node)
            stack.append(BDD_NODE.read(m, node, "low"))
            stack.append(BDD_NODE.read(m, node, "high"))
        return len(seen)

    def satcount(self, root: int) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        m = self.machine
        memo: dict[int, int] = {}

        def count(node: int) -> int:
            # count(node) = satisfying assignments over the variables
            # var(node)..num_vars-1 of the subfunction at node.
            if node == self.zero:
                return 0
            if node == self.one:
                return 1
            if node in memo:
                m.execute(1)
                return memo[node]
            var = BDD_NODE.read(m, node, "var")
            low = BDD_NODE.read(m, node, "low")
            high = BDD_NODE.read(m, node, "high")
            # Mark the node visited (real packages write mark/ref words
            # during such walks; these stores hit stale addresses too).
            BDD_NODE.write(m, node, "aux", 1)
            # Skipped levels between this node and each child contribute a
            # factor of two per level (the child ignores those variables).
            total = count(low) << (self._var_of(low) - var - 1)
            total += count(high) << (self._var_of(high) - var - 1)
            memo[node] = total
            return total

        if root == self.zero:
            return 0
        if root == self.one:
            return 1 << self.num_vars
        # Variables above the root are free: one factor of two each.
        root_var = BDD_NODE.read(m, root, "var")
        return count(root) << root_var

    def _var_of(self, node: int) -> int:
        if node in (self.zero, self.one):
            return self.num_vars
        var = BDD_NODE.read(self.machine, node, "var")
        return min(var, self.num_vars)

    def evaluate(self, root: int, assignment: list[bool]) -> bool:
        """Evaluate the function under a variable assignment (timed walk)."""
        m = self.machine
        node = root
        while node not in (self.zero, self.one):
            var = BDD_NODE.read(m, node, "var")
            field = "high" if assignment[var] else "low"
            node = BDD_NODE.read(m, node, field)
        return node == self.one

    # ------------------------------------------------------------------
    # The SMV layout optimization and the Perf bound
    # ------------------------------------------------------------------
    def linearize_unique_table(self, pool: RelocationPool) -> int:
        """Linearize every unique-table bucket chain into ``pool``.

        Bucket heads and chain ``next`` pointers are updated; tree
        pointers (``low``/``high`` in other nodes) are NOT -- stale ones
        will be forwarded, as in the paper's SMV.
        """
        moved = 0
        for index in range(self.buckets):
            handle = self.table_base + index * WORD_SIZE
            _, count = list_linearize(
                self.machine, handle, BDD_NODE.offset("next"), BDD_NODE.size, pool
            )
            moved += count
        self.machine.note_optimizer_invocation()
        return moved

    def fixup_tree_pointers(self) -> int:
        """Rewrite every stale low/high pointer to its final address.

        This models *perfect forwarding* (Figure 10's ``Perf``): the
        rewrite is free -- raw memory writes with no simulated cost --
        because the scheme is an unachievable upper bound, not a real
        optimization.  Returns the number of pointers patched.
        """
        memory = self.machine.memory
        patched = 0
        for index in range(self.buckets):
            node = memory.read_word(self.table_base + index * WORD_SIZE)
            while node != NULL:
                for field in ("low", "high"):
                    offset = BDD_NODE.offset(field)
                    value = memory.read_word(node + offset)
                    final = self._raw_final(value)
                    if final != value:
                        self.machine.raw_write(node + offset, final)
                        patched += 1
                node = memory.read_word(node + BDD_NODE.offset("next"))
        return patched

    def _raw_final(self, address: int) -> int:
        """Untimed final-address resolution (for the Perf fixup only)."""
        if address == NULL:
            return NULL
        memory = self.machine.memory
        word = address & ~7
        while memory.read_fbit(word):
            word = memory.read_word(word)
        return word | (address & 7)
