"""Coarse out-of-order timing model based on graduation slots.

The paper reports execution time as a breakdown of *graduation slots*
(Figure 5): on a 4-wide machine every cycle offers 4 slots, and each slot
either graduates an instruction (**busy**) or is lost to the oldest
instruction being a load miss (**load stall**), a store miss backing up the
store buffer (**store stall**), or anything else (**inst stall**).

A full cycle-accurate OoO pipeline is out of scope (DESIGN.md Section 2);
instead this model captures the first-order effects the paper's results
rest on:

* instructions graduate at up to ``width`` per cycle, with a fixed
  per-instruction inefficiency charged to inst stall (dependences,
  branches, fetch gaps);
* a load whose data is ready at absolute time ``t`` can be overlapped with
  other work for up to ``ooo_window`` cycles -- beyond that, the machine
  stalls and the lost cycles are attributed to load stall;
* stores retire through a finite store buffer; only when the buffer is
  full does a store miss stall graduation (store stall);
* forwarding exceptions and dependence-misspeculation flushes insert
  bubbles attributed to inst stall, with forwarding time also tracked
  separately for Figure 10(d).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TimingConfig:
    """Parameters of the graduation model (DESIGN.md Section 5)."""

    #: Graduation width (slots per cycle).
    width: int = 4
    #: Extra cycles per instruction lost to dependences/branches/fetch;
    #: charged to inst stall.  0.1 gives a realistic base CPI of ~0.35.
    inst_overhead: float = 0.1
    #: Cycles of a load's latency the out-of-order window can hide.
    ooo_window: float = 8.0
    #: Store buffer depth; store misses stall only when it is full.
    store_buffer_depth: int = 16
    #: Fixed cost of entering/leaving the forwarding exception path.
    forwarding_trap_cycles: float = 4.0
    #: Additional cycles per forwarding hop beyond the cache accesses
    #: (address swap, re-issue).
    forwarding_hop_cycles: float = 2.0
    #: Pipeline flush penalty for an incorrect data-dependence speculation.
    misspeculation_penalty: float = 20.0


@dataclass
class SlotBreakdown:
    """Graduation-slot totals in the four categories of Figure 5."""

    busy: float
    load_stall: float
    store_stall: float
    inst_stall: float

    @property
    def total(self) -> float:
        return self.busy + self.load_stall + self.store_stall + self.inst_stall


class TimingModel:
    """Advances simulated time and attributes lost slots to causes."""

    __slots__ = (
        "config",
        "cycle",
        "instructions",
        "load_stall_cycles",
        "store_stall_cycles",
        "inst_stall_cycles",
        "forwarding_cycles",
        "misspeculations",
        "_store_buffer",
        "_store_buffer_floor",
        "_ipc",
    )

    def __init__(self, config: TimingConfig | None = None) -> None:
        self.config = config or TimingConfig()
        self.cycle: float = 0.0
        self.instructions: int = 0
        self.load_stall_cycles: float = 0.0
        self.store_stall_cycles: float = 0.0
        self.inst_stall_cycles: float = 0.0
        #: Subset of stall time spent dereferencing forwarding addresses
        #: (trap + hop overhead + the forwarded accesses' own residuals);
        #: reported separately in Figure 10(d).
        self.forwarding_cycles: float = 0.0
        self.misspeculations: int = 0
        self._store_buffer: list[float] = []
        # Sound lower bound on min(_store_buffer): lets store_completes
        # skip the drain scan when no entry can have completed yet.
        self._store_buffer_floor = float("inf")
        self._ipc = 1.0 / self.config.width

    # ------------------------------------------------------------------
    def execute(self, count: int = 1) -> None:
        """Graduate ``count`` ordinary (non-memory) instructions."""
        cfg = self.config
        self.instructions += count
        self.cycle += count * self._ipc
        overhead = count * cfg.inst_overhead
        self.inst_stall_cycles += overhead
        self.cycle += overhead

    def load_completes(self, ready: float, forwarding: bool = False) -> None:
        """Account for a load whose value is ready at absolute time ``ready``.

        The out-of-order window hides up to ``ooo_window`` cycles of the
        residual latency; the remainder stalls graduation.
        """
        residual = ready - self.cycle - self.config.ooo_window
        if residual > 0.0:
            self.load_stall_cycles += residual
            self.cycle += residual
            if forwarding:
                self.forwarding_cycles += residual

    def store_completes(self, ready: float, forwarding: bool = False) -> None:
        """Account for a store retiring into the store buffer.

        The buffer absorbs outstanding store misses; when full, graduation
        stalls until the oldest entry drains.
        """
        buffer = self._store_buffer
        now = self.cycle
        if buffer and self._store_buffer_floor <= now:
            # Drain entries that have completed by now.  The floor bound
            # makes this a provable no-op most of the time: entries only
            # leave the buffer (raising the true minimum), so the floor
            # stays sound until a drain recomputes it exactly.
            buffer[:] = [t for t in buffer if t > now]
            self._store_buffer_floor = min(buffer) if buffer else float("inf")
        if len(buffer) >= self.config.store_buffer_depth:
            earliest = min(buffer)
            stall = earliest - now
            if stall > 0.0:
                self.store_stall_cycles += stall
                self.cycle += stall
                if forwarding:
                    self.forwarding_cycles += stall
            buffer.remove(earliest)
        if ready > self.cycle:
            buffer.append(ready)
            if ready < self._store_buffer_floor:
                self._store_buffer_floor = ready

    def forwarding_trap_cost(self, hops: int) -> float:
        """Exception-path overhead (cycles) of a reference with ``hops`` hops."""
        cfg = self.config
        return cfg.forwarding_trap_cycles + hops * cfg.forwarding_hop_cycles

    def forwarding_trap(self, hops: int) -> None:
        """Charge the exception-path overhead of a forwarded reference."""
        penalty = self.forwarding_trap_cost(hops)
        self.inst_stall_cycles += penalty
        self.forwarding_cycles += penalty
        self.cycle += penalty

    def misspeculation_flush(self) -> None:
        """Charge a data-dependence misspeculation pipeline flush."""
        self.misspeculations += 1
        penalty = self.config.misspeculation_penalty
        self.inst_stall_cycles += penalty
        self.cycle += penalty

    def stall(self, cycles: float, category: str = "inst") -> None:
        """Insert an explicit stall attributed to ``category``."""
        if cycles <= 0.0:
            return
        if category == "load":
            self.load_stall_cycles += cycles
        elif category == "store":
            self.store_stall_cycles += cycles
        else:
            self.inst_stall_cycles += cycles
        self.cycle += cycles

    # ------------------------------------------------------------------
    def register_metrics(self, registry) -> None:
        """Register timing counters with an ``repro.obs`` registry.

        All getters are bound (snapshot-time) reads of this model's flat
        slots; the per-reference accounting methods stay untouched-hot.
        Slot metrics mirror :meth:`slot_breakdown`'s width scaling.
        """
        width = self.config.width
        registry.bind("time.cycles", lambda: self.cycle)
        registry.bind("time.forwarding_cycles", lambda: self.forwarding_cycles)
        registry.bind("core.instructions", lambda: self.instructions)
        registry.bind("slots.busy", lambda: float(self.instructions))
        registry.bind("slots.load_stall", lambda: self.load_stall_cycles * width)
        registry.bind(
            "slots.store_stall", lambda: self.store_stall_cycles * width
        )
        registry.bind("slots.inst_stall", lambda: self.inst_stall_cycles * width)

    def slot_breakdown(self) -> SlotBreakdown:
        """Graduation slots by category (Figure 5's stacked bars)."""
        width = self.config.width
        return SlotBreakdown(
            busy=float(self.instructions),
            load_stall=self.load_stall_cycles * width,
            store_stall=self.store_stall_cycles * width,
            inst_stall=self.inst_stall_cycles * width,
        )

    @property
    def total_cycles(self) -> float:
        return self.cycle
