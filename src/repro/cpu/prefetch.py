"""Software prefetching with block-prefetch support (Section 5.2).

The paper inserts software prefetches for the static loads that miss most,
and assumes a single prefetch instruction can fetch one or more
*consecutive* cache lines ("block prefetching").  That assumption is the
whole point of the interaction with layout optimization: once a linked
list has been linearized, "the next three nodes" is "the next cache line
or two", so one block prefetch replaces an unprefetchable pointer chase
(data-linearization prefetching).

Prefetches here are non-binding: they start fills through the regular
MSHR/bandwidth machinery but never stall the core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import MemoryHierarchy


@dataclass(slots=True)
class PrefetchStats:
    """Issue and effectiveness counters."""

    instructions_issued: int = 0
    lines_requested: int = 0
    fills_started: int = 0

    def register_metrics(self, registry, prefix: str = "prefetch") -> None:
        """Expose these counters through an ``repro.obs`` registry."""
        registry.bind(f"{prefix}.instructions", lambda: self.instructions_issued)
        registry.bind(f"{prefix}.lines_requested", lambda: self.lines_requested)
        registry.bind(f"{prefix}.fills", lambda: self.fills_started)


class SoftwarePrefetcher:
    """Issues block prefetches into a memory hierarchy.

    Parameters
    ----------
    hierarchy:
        The memory system fills go through.
    max_block_lines:
        Upper bound on lines per block prefetch, mirroring a bounded
        hardware block size.
    """

    __slots__ = ("hierarchy", "max_block_lines", "stats")

    def __init__(self, hierarchy: MemoryHierarchy, max_block_lines: int = 8) -> None:
        if max_block_lines < 1:
            raise ValueError(f"max_block_lines must be >= 1, got {max_block_lines}")
        self.hierarchy = hierarchy
        self.max_block_lines = max_block_lines
        self.stats = PrefetchStats()

    def register_metrics(self, registry, prefix: str = "prefetch") -> None:
        """Register issue/effectiveness counters under ``prefix``."""
        self.stats.register_metrics(registry, prefix)

    def prefetch_block(self, address: int, lines: int, now: float) -> int:
        """Prefetch ``lines`` consecutive cache lines starting at ``address``.

        Returns the number of fills actually started.  Counts as one
        prefetch instruction regardless of block size (the paper's block
        prefetch); the caller charges that instruction to the timing model.
        """
        lines = max(1, min(lines, self.max_block_lines))
        self.stats.instructions_issued += 1
        self.stats.lines_requested += lines
        line_size = self.hierarchy.config.line_size
        started = 0
        base = self.hierarchy.line_address(address)
        for index in range(lines):
            if self.hierarchy.prefetch(base + index * line_size, now):
                started += 1
        self.stats.fills_started += started
        return started
