"""Data-dependence speculation in the presence of memory forwarding.

Section 3.2 of the paper: because a reference's *final* address is not
known until the reference nearly completes, a conservative out-of-order
core could never hoist a load above an earlier store.  The fix is to
speculate that final address == initial address (i.e. that the reference
is not forwarded), let the load go early, and squash if the speculation
was wrong.

A speculation is wrong exactly when a nearby earlier store and a younger
load had **different initial addresses but the same final address** -- the
disambiguator compared initials and concluded "independent" when they in
fact collided after forwarding.  (Same-initial pairs are handled by the
ordinary store queue and never misspeculate.)

The paper observes this "almost never" happens; this model lets us verify
that claim and charge the flush penalty when it does.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(slots=True)
class SpeculationStats:
    """Counters for the disambiguation model."""

    loads_checked: int = 0
    stores_tracked: int = 0
    misspeculations: int = 0

    def register_metrics(self, registry, prefix: str = "spec") -> None:
        """Expose these counters through an ``repro.obs`` registry."""
        registry.bind(f"{prefix}.loads_checked", lambda: self.loads_checked)
        registry.bind(f"{prefix}.stores_tracked", lambda: self.stores_tracked)
        registry.bind(f"{prefix}.misspeculations", lambda: self.misspeculations)


class DependenceSpeculator:
    """Sliding-window store queue that detects final-address collisions.

    Parameters
    ----------
    window:
        Number of recent stores a young load could have bypassed -- a proxy
        for the instruction-window depth of the modeled core.
    """

    __slots__ = ("window", "stats", "_queue", "_by_final", "_counts")

    def __init__(self, window: int = 32) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.stats = SpeculationStats()
        # deque of (final_word, initial_word); dict final_word -> initial_word
        # for O(1) load checks.  The dict keeps the *youngest* store to each
        # final word, which is the one an incorrectly hoisted load would
        # actually conflict with.  A per-final-word refcount makes window
        # eviction O(1): appends always overwrite the mapping with the
        # youngest initial, so on eviction the mapping is either still
        # backed by a younger in-window store (count > 0, keep it) or
        # orphaned (count == 0, drop it) -- no queue scan needed.
        self._queue: deque[tuple[int, int]] = deque()
        self._by_final: dict[int, int] = {}
        self._counts: dict[int, int] = {}

    def on_store(self, initial: int, final: int) -> None:
        """Record a retiring store's initial and final word addresses."""
        initial_word = initial & ~7
        final_word = final & ~7
        self.stats.stores_tracked += 1
        queue = self._queue
        counts = self._counts
        queue.append((final_word, initial_word))
        self._by_final[final_word] = initial_word
        counts[final_word] = counts.get(final_word, 0) + 1
        if len(queue) > self.window:
            old_final, _old_initial = queue.popleft()
            remaining = counts[old_final] - 1
            if remaining:
                counts[old_final] = remaining
            else:
                del counts[old_final]
                del self._by_final[old_final]

    def on_load(self, initial: int, final: int) -> bool:
        """Check a load against recent stores; True means misspeculation.

        A misspeculation requires the colliding pair to have *different*
        initial addresses: with equal initials the conventional store
        queue already ordered them correctly.
        """
        self.stats.loads_checked += 1
        store_initial = self._by_final.get(final & ~7)
        if store_initial is not None and store_initial != (initial & ~7):
            self.stats.misspeculations += 1
            return True
        return False

    def register_metrics(self, registry, prefix: str = "spec") -> None:
        """Register the disambiguation counters under ``prefix``."""
        self.stats.register_metrics(registry, prefix)

    def reset(self) -> None:
        self._queue.clear()
        self._by_final.clear()
        self._counts.clear()
