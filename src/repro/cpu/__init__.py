"""CPU model: graduation-slot timing, dependence speculation, prefetch."""
