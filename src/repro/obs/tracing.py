"""Request-scoped causal tracing across process boundaries.

PR 3's :mod:`repro.obs.span` records flat (name, wall, depth) tuples
inside one process; the serve tier needs more: a job admitted over HTTP
is probed on the event loop, queued by the scheduler, executed in a
*worker process*, and replayed chunk by chunk -- and the manifest should
carry that whole causal story as one tree.  This module adds the three
missing pieces:

* stable identifiers -- every request gets a ``trace_id`` and every
  span a ``span_id``/``parent_id``, so records reassemble into a tree
  no matter which process produced them;
* a :class:`Tracer` that owns one trace: a parent stack for nesting,
  ``span()``/``record()``/``begin()``/``end()`` to emit records, and
  ``absorb()`` to splice in records a worker shipped back;
* :class:`SpanContext`, the picklable wire form (two hex strings) that
  crosses the pool boundary so worker-side spans parent correctly
  under the service's ``serve.execute`` span.

Records are plain :class:`~repro.obs.span.SpanRecord` objects (with the
optional identity fields set), so the manifest schema, Perfetto export,
and span-log tooling all keep working; :func:`span_tree` rebuilds the
nested form for tests and exporters.

Ids are drawn from ``uuid4`` (not ``random``) so tracing never perturbs
seeded simulations.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from repro.obs.span import SpanRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import Registry

#: Hex digits in a trace id / span id.
TRACE_ID_HEX = 16
SPAN_ID_HEX = 8


def new_id(hex_digits: int = SPAN_ID_HEX) -> str:
    """A fresh lowercase-hex identifier, independent of seeded RNGs."""
    return uuid.uuid4().hex[:hex_digits]


@dataclass(frozen=True, slots=True)
class SpanContext:
    """The portable identity of one open span: enough to parent under it."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict[str, str]:
        """Picklable/JSON-safe form shipped into worker processes."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_wire(wire: Mapping[str, str] | None) -> "SpanContext | None":
        if wire is None:
            return None
        return SpanContext(trace_id=wire["trace_id"], span_id=wire["span_id"])


class Tracer:
    """One trace: a stack of open spans and the records they complete into.

    A tracer is **not** thread-safe; the serve tier gives each job its
    own, and each worker builds a child tracer from the wire context.

    Parameters
    ----------
    trace_id:
        Explicit trace id; generated when omitted.
    parent:
        A :class:`SpanContext` from another process.  The tracer joins
        that trace: same ``trace_id``, and top-level spans recorded here
        carry ``parent.span_id`` as their parent.
    """

    __slots__ = ("trace_id", "records", "_stack", "_started")

    def __init__(
        self,
        trace_id: str | None = None,
        *,
        parent: SpanContext | None = None,
    ) -> None:
        if parent is not None:
            trace_id = parent.trace_id
        self.trace_id = trace_id or new_id(TRACE_ID_HEX)
        #: Completed spans in completion order; dicts are absorbed
        #: foreign records, SpanRecords are locally produced.
        self.records: list[SpanRecord | dict[str, Any]] = []
        # (parent span id or None, depth for the next child).
        root_parent = parent.span_id if parent is not None else None
        self._stack: list[tuple[str | None, int]] = [(root_parent, 0)]
        self._started: dict[str, float] = {}

    # -- emission ------------------------------------------------------
    def _child(self, name: str) -> SpanRecord:
        parent_id, depth = self._stack[-1]
        return SpanRecord(
            name=name,
            wall_seconds=0.0,
            depth=depth,
            trace_id=self.trace_id,
            span_id=new_id(),
            parent_id=parent_id,
            start=time.time(),
        )

    @contextmanager
    def span(
        self, name: str, registry: "Registry | None" = None
    ) -> Iterator[SpanRecord]:
        """Open a child span for the duration of the block.

        Mirrors :func:`repro.obs.span.span` (exception-safe timing and
        metric attribution) but threads trace identity and keeps the
        parent stack so nested ``span()``/``record()`` calls attach
        underneath.
        """
        before = registry.snapshot() if registry is not None else None
        record = self._child(name)
        self._stack.append((record.span_id, record.depth + 1))
        started = time.perf_counter()
        try:
            yield record
        except BaseException as exc:
            detail = str(exc)
            record.error = (
                f"{type(exc).__name__}: {detail}" if detail else type(exc).__name__
            )
            raise
        finally:
            record.wall_seconds = time.perf_counter() - started
            try:
                if registry is not None and before is not None:
                    record.metrics = (
                        registry.snapshot().diff(before).nonzero().flat()
                    )
            finally:
                self._stack.pop()
                self.records.append(record)

    def record(
        self,
        name: str,
        wall_seconds: float,
        *,
        start: float | None = None,
        metrics: dict[str, Any] | None = None,
        error: str | None = None,
    ) -> SpanRecord:
        """Append an already-measured leaf span under the current parent.

        Used for intervals measured elsewhere (queue wait between two
        scheduler stamps) and instantaneous marks (a coalesce join,
        ``wall_seconds=0``).
        """
        record = self._child(name)
        record.wall_seconds = wall_seconds
        if start is not None:
            record.start = start
        if metrics:
            record.metrics = dict(metrics)
        record.error = error
        self.records.append(record)
        return record

    def begin(self, name: str) -> SpanRecord:
        """Open a span whose close happens in another coroutine/callback.

        The serve tier's ``serve.request`` root stays open across the
        whole job lifetime (submit coroutine through consumer task), so
        a ``with`` block can't bracket it; ``begin``/``end`` carry the
        stack discipline explicitly.
        """
        record = self._child(name)
        self._stack.append((record.span_id, record.depth + 1))
        self._started[record.span_id] = time.perf_counter()
        return record

    def end(self, record: SpanRecord, *, error: str | None = None) -> None:
        """Close a span opened with :meth:`begin` and log it."""
        started = self._started.pop(record.span_id, None)
        if started is not None:
            record.wall_seconds = time.perf_counter() - started
        if error is not None:
            record.error = error
        # Unwind to (and past) this span's stack entry; defensive
        # against a child left open by an error path.
        while len(self._stack) > 1:
            parent_id, _ = self._stack.pop()
            if parent_id == record.span_id:
                break
        self.records.append(record)

    # -- cross-process assembly ---------------------------------------
    def current(self) -> SpanContext:
        """Context of the innermost open span (the trace root if none)."""
        parent_id, _ = self._stack[-1]
        if parent_id is None:
            # No open span: mint a synthetic root so a worker can still
            # join the trace; its records parent under this id.
            parent_id = new_id()
            self._stack[0] = (parent_id, self._stack[0][1])
        return SpanContext(trace_id=self.trace_id, span_id=parent_id)

    def absorb(
        self,
        spans: Iterable[Mapping[str, Any]] | None,
        *,
        depth_offset: int = 0,
    ) -> None:
        """Splice in span dicts produced by a worker-side tracer.

        The worker's depths are local (its root children are depth 0);
        ``depth_offset`` rebases them under the span the worker's
        context pointed at.  Identity fields are kept verbatim -- the
        worker already parented them correctly via the wire context.
        """
        if not spans:
            return
        for span in spans:
            copied = dict(span)
            copied["depth"] = int(copied.get("depth", 0)) + depth_offset
            self.records.append(copied)

    def to_list(self) -> list[dict[str, Any]]:
        """JSON-safe records in completion order, for the manifest."""
        return [
            record.to_dict() if isinstance(record, SpanRecord) else dict(record)
            for record in self.records
        ]


def span_tree(spans: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Rebuild the causal tree from flat span dicts.

    Returns the list of roots; every node gains a ``children`` list
    (ordered as encountered).  Spans whose parent is absent from the
    set (e.g. the worker context's synthetic parent) become roots --
    the tree is best-effort over whatever subset was exported.
    """
    nodes: list[dict[str, Any]] = []
    by_id: dict[str, dict[str, Any]] = {}
    for span in spans:
        node = dict(span)
        node["children"] = []
        nodes.append(node)
        span_id = node.get("span_id")
        if span_id:
            by_id[span_id] = node
    roots: list[dict[str, Any]] = []
    for node in nodes:
        parent = by_id.get(node.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots
