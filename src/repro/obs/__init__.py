"""repro.obs — the instrumentation layer.

One surface for every counter, timer, and structured run artifact in the
reproduction:

* :class:`Registry` — hierarchical, typed metrics (owned or bound to
  hot-path counter slots), snapshotted in O(metrics).
* :class:`Snapshot` — immutable metric view with lossless
  ``merge``/``diff`` (shard aggregation, span attribution).
* :func:`span` / :class:`SpanLog` — wall-time + counter-delta tracing.
* :func:`build_manifest` / :func:`validate_manifest` — versioned,
  schema-validated JSON run manifests.

See DESIGN.md §5c for the design contract, in particular the hot-path
flush rule: fused kernels never touch the registry; their flat counter
slots are read through bound getters only at snapshot time.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    ManifestError,
    build_manifest,
    cell,
    load_schema,
    validate_manifest,
)
from repro.obs.registry import (
    COUNTER,
    EMPTY,
    GAUGE,
    HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    Registry,
    Snapshot,
)
from repro.obs.span import SpanLog, SpanRecord, span

__all__ = [
    "COUNTER",
    "Counter",
    "EMPTY",
    "GAUGE",
    "Gauge",
    "HISTOGRAM",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MANIFEST_VERSION",
    "ManifestError",
    "MetricError",
    "Registry",
    "Snapshot",
    "SpanLog",
    "SpanRecord",
    "build_manifest",
    "cell",
    "load_schema",
    "span",
    "validate_manifest",
]
