"""repro.obs — the instrumentation layer.

One surface for every counter, timer, and structured run artifact in the
reproduction:

* :class:`Registry` — hierarchical, typed metrics (owned or bound to
  hot-path counter slots), snapshotted in O(metrics).
* :class:`Snapshot` — immutable metric view with lossless
  ``merge``/``diff`` (shard aggregation, span attribution).
* :func:`span` / :class:`SpanLog` — wall-time + counter-delta tracing.
* :class:`Tracer` / :class:`SpanContext` — request-scoped causal
  tracing with picklable span contexts across the process pool
  (DESIGN.md §5i).
* :class:`Timeline` / :class:`EventLog` — windowed time-series sampling
  and the bounded structured event stream (DESIGN.md §5d).
* :func:`chrome_trace` / :func:`diff_timelines` — Perfetto export and
  the per-window regression gate.
* :func:`build_manifest` / :func:`validate_manifest` /
  :func:`upgrade_manifest` — versioned, schema-validated JSON run
  manifests.
* :func:`render_prometheus` / :func:`parse_prometheus` — text
  exposition of a snapshot for standard scrapers.
* :func:`configure_logging` — structured JSON logs, atomic per line,
  trace-id stamped.

See DESIGN.md §5c for the design contract, in particular the hot-path
flush rule: fused kernels never touch the registry; their flat counter
slots are read through bound getters only at snapshot time.
"""

from repro.obs.events import EventLog
from repro.obs.export import chrome_trace, diff_timelines, render_diff, windows_csv
from repro.obs.logging import (
    configure_logging,
    current_trace_id,
    log_event,
    trace_context,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    MANIFEST_SCHEMA_V2,
    MANIFEST_VERSION,
    ManifestError,
    build_manifest,
    cell,
    load_schema,
    upgrade_manifest,
    validate_manifest,
)
from repro.obs.prom import parse_prometheus, render_prometheus
from repro.obs.registry import (
    COUNTER,
    EMPTY,
    GAUGE,
    HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    Registry,
    Snapshot,
    histogram_quantiles,
)
from repro.obs.span import SpanLog, SpanRecord, span
from repro.obs.timeline import Timeline
from repro.obs.tracing import SpanContext, Tracer, new_id, span_tree

__all__ = [
    "COUNTER",
    "Counter",
    "EMPTY",
    "EventLog",
    "GAUGE",
    "Gauge",
    "HISTOGRAM",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_V1",
    "MANIFEST_SCHEMA_V2",
    "MANIFEST_VERSION",
    "ManifestError",
    "MetricError",
    "Registry",
    "Snapshot",
    "SpanContext",
    "SpanLog",
    "SpanRecord",
    "Timeline",
    "Tracer",
    "build_manifest",
    "cell",
    "chrome_trace",
    "configure_logging",
    "current_trace_id",
    "diff_timelines",
    "histogram_quantiles",
    "load_schema",
    "log_event",
    "new_id",
    "parse_prometheus",
    "render_diff",
    "render_prometheus",
    "span",
    "span_tree",
    "trace_context",
    "upgrade_manifest",
    "validate_manifest",
    "windows_csv",
]
