"""repro.obs — the instrumentation layer.

One surface for every counter, timer, and structured run artifact in the
reproduction:

* :class:`Registry` — hierarchical, typed metrics (owned or bound to
  hot-path counter slots), snapshotted in O(metrics).
* :class:`Snapshot` — immutable metric view with lossless
  ``merge``/``diff`` (shard aggregation, span attribution).
* :func:`span` / :class:`SpanLog` — wall-time + counter-delta tracing.
* :class:`Timeline` / :class:`EventLog` — windowed time-series sampling
  and the bounded structured event stream (DESIGN.md §5d).
* :func:`chrome_trace` / :func:`diff_timelines` — Perfetto export and
  the per-window regression gate.
* :func:`build_manifest` / :func:`validate_manifest` /
  :func:`upgrade_manifest` — versioned, schema-validated JSON run
  manifests.

See DESIGN.md §5c for the design contract, in particular the hot-path
flush rule: fused kernels never touch the registry; their flat counter
slots are read through bound getters only at snapshot time.
"""

from repro.obs.events import EventLog
from repro.obs.export import chrome_trace, diff_timelines, render_diff, windows_csv
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    MANIFEST_VERSION,
    ManifestError,
    build_manifest,
    cell,
    load_schema,
    upgrade_manifest,
    validate_manifest,
)
from repro.obs.registry import (
    COUNTER,
    EMPTY,
    GAUGE,
    HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    Registry,
    Snapshot,
    histogram_quantiles,
)
from repro.obs.span import SpanLog, SpanRecord, span
from repro.obs.timeline import Timeline

__all__ = [
    "COUNTER",
    "Counter",
    "EMPTY",
    "EventLog",
    "GAUGE",
    "Gauge",
    "HISTOGRAM",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_V1",
    "MANIFEST_VERSION",
    "ManifestError",
    "MetricError",
    "Registry",
    "Snapshot",
    "SpanLog",
    "SpanRecord",
    "Timeline",
    "build_manifest",
    "cell",
    "chrome_trace",
    "diff_timelines",
    "histogram_quantiles",
    "load_schema",
    "render_diff",
    "span",
    "upgrade_manifest",
    "validate_manifest",
    "windows_csv",
]
