"""Prometheus text exposition for :class:`~repro.obs.registry.Snapshot`.

``GET /metrics`` has so far returned an ad-hoc JSON tree that nothing
standard can scrape.  This module renders the same snapshot in the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4), stdlib-only:

* dotted metric names map to ``_``-joined sample names under a
  namespace prefix (``serve.jobs.completed`` ->
  ``repro_serve_jobs_completed``);
* counters and gauges emit one sample each with the matching ``# TYPE``;
* histograms emit in ``summary`` style: one ``{quantile="..."}`` sample
  per requested quantile (nearest-rank over the sparse value->count
  buckets, matching :func:`~repro.obs.registry.histogram_quantiles`)
  plus ``_count`` and ``_sum`` samples.

:func:`parse_prometheus` is the deliberately minimal inverse -- enough
to round-trip what :func:`render_prometheus` produces -- used by the
round-trip test and the CI obs-smoke scrape validator.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

from repro.obs.registry import COUNTER, HISTOGRAM, Snapshot, histogram_quantiles

#: Quantiles rendered for histogram metrics, in emission order.
DEFAULT_QUANTILES = (0.5, 0.9, 0.95, 0.99)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


class PrometheusParseError(ValueError):
    """A line the minimal text-format parser could not understand."""


def metric_name(dotted: str, namespace: str = "repro") -> str:
    """``serve.jobs.completed`` -> ``repro_serve_jobs_completed``."""
    joined = dotted.replace(".", "_").replace("-", "_")
    joined = _NAME_OK.sub("_", joined)
    if namespace:
        joined = f"{namespace}_{joined}"
    if joined and joined[0].isdigit():
        joined = "_" + joined
    return joined


def _format_value(value: Any) -> str:
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_labels(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(
            key, str(value).replace("\\", "\\\\").replace('"', '\\"')
        )
        for key, value in sorted(labels.items())
    )
    return "{" + rendered + "}"


def render_prometheus(
    snapshot: Snapshot,
    *,
    namespace: str = "repro",
    labels: Mapping[str, str] | None = None,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
) -> str:
    """Render a registry snapshot as Prometheus text exposition.

    ``labels`` are constant labels stamped on every sample (e.g.
    ``{"instance": "serve-0"}``).  Output ends with a newline, as the
    format requires.
    """
    base = dict(labels or {})
    lines: list[str] = []
    for dotted in sorted(snapshot.flat()):
        kind = snapshot.kind(dotted)
        value = snapshot.get(dotted)
        name = metric_name(dotted, namespace)
        lines.append(f"# HELP {name} {dotted}")
        if kind == HISTOGRAM:
            lines.append(f"# TYPE {name} summary")
            counts: Mapping[Any, int] = value if isinstance(value, Mapping) else {}
            quants = histogram_quantiles(counts, quantiles)
            total = sum(counts.values())
            total_sum = sum(float(k) * int(v) for k, v in counts.items())
            for q in quantiles:
                sample_labels = dict(base)
                sample_labels["quantile"] = _format_value(q)
                rendered = quants.get(f"p{q * 100:g}", float("nan"))
                lines.append(
                    f"{name}{_format_labels(sample_labels)} "
                    f"{_format_value(rendered)}"
                )
            lines.append(f"{name}_count{_format_labels(base)} {total}")
            lines.append(
                f"{name}_sum{_format_labels(base)} {_format_value(total_sum)}"
            )
        else:
            prom_type = "counter" if kind == COUNTER else "gauge"
            lines.append(f"# TYPE {name} {prom_type}")
            lines.append(f"{name}{_format_labels(base)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, Any]:
    """Parse text exposition back into structured form (round-trip helper).

    Returns ``{"types": {name: type}, "samples": [(name, labels, value)]}``.
    Only the subset :func:`render_prometheus` emits is supported;
    malformed sample lines raise :class:`PrometheusParseError`.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict[str, str], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3].strip()
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise PrometheusParseError(f"unparseable sample line: {line!r}")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for pair in _LABEL.finditer(match.group("labels")):
                labels[pair.group("key")] = (
                    pair.group("value").replace('\\"', '"').replace("\\\\", "\\")
                )
        value_text = match.group("value")
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            try:
                value = float(value_text)
            except ValueError as exc:
                raise PrometheusParseError(
                    f"bad sample value in line: {line!r}"
                ) from exc
        samples.append((match.group("name"), labels, value))
    return {"types": types, "samples": samples}


def samples_by_name(parsed: Mapping[str, Any]) -> dict[str, list[tuple[dict, float]]]:
    """Group parsed samples by metric name (scrape-assert convenience)."""
    grouped: dict[str, list[tuple[dict, float]]] = {}
    for name, labels, value in parsed["samples"]:
        grouped.setdefault(name, []).append((labels, value))
    return grouped
