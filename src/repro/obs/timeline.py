"""Windowed time-series sampling over an ``repro.obs`` registry.

The paper's argument is temporal: forwarding is a safety net that should
be *rare after relocation*, so the interesting signal is how miss rates,
stalls, and forwarding chases evolve across a run -- before, during, and
after linearization -- not the end-of-run totals.  A :class:`Timeline`
turns the registry's snapshot/diff algebra into exactly that: every
``interval`` simulated data references it diffs the registry against the
previous sample and appends one *window* to a compact per-metric series.

Windows are built exclusively from replay-faithful metrics (counters
the fused replay kernel maintains identically to a direct run), so a
direct run and its trace replay produce the *same* series -- an
invariant the integration tests pin.  The sampler also keeps an
address-space heatmap (access and forwarded-access counts per region)
and, when the machine has an :class:`~repro.obs.events.EventLog`, links
it into the exported payload.

Cost model: the sampler is wired up by wrapping ``machine.load`` /
``machine.store`` only when enabled, so a disabled timeline adds zero
instructions to the reference hot path (the 2% overhead budget of
DESIGN.md 5b is untouched).  Enabled, the per-reference cost is one
closure frame plus a dict bump; the snapshot diff is paid once per
window.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.events import EventLog
from repro.obs.registry import Registry, Snapshot

#: Series recorded per window, in export order.  ``refs`` is the window
#: width (the last window may be shorter); everything else is the delta
#: (or, for ``mshr_occupancy``, the level) observed across that window.
WINDOW_SERIES = (
    "refs",
    "cycles",
    "l1_misses",
    "miss_rate",
    "stall_slots",
    "chases",
    "mshr_occupancy",
)

#: Default heatmap granularity: one region per 64 KB of address space.
DEFAULT_REGION_BYTES = 64 * 1024

_MISS_METRICS = (
    "cache.l1.miss.load_full",
    "cache.l1.miss.load_partial",
    "cache.l1.miss.store_full",
    "cache.l1.miss.store_partial",
)
_STALL_METRICS = ("slots.load_stall", "slots.store_stall", "slots.inst_stall")


class Timeline:
    """Interval sampler producing per-window series and a region heatmap.

    Parameters
    ----------
    interval:
        Data references per window (>= 1).
    registry:
        The live registry to diff; must expose the canonical machine
        metric names (``time.cycles``, ``cache.l1.miss.*``,
        ``slots.*``, ``ref.*.forwarded``).
    mshr, clock:
        Optional MSHR file and cycle getter; when both are given each
        window records the MSHR occupancy level at its closing edge.
    events:
        Optional :class:`EventLog` folded into :meth:`to_payload`.
    region_bytes:
        Heatmap region size (power of two).
    """

    __slots__ = (
        "interval",
        "events",
        "windows",
        "region_bytes",
        "on_window",
        "_registry",
        "_mshr",
        "_clock",
        "_pending",
        "_last",
        "_region_shift",
        "_heat_access",
        "_heat_forwarded",
    )

    def __init__(
        self,
        interval: int,
        registry: Registry,
        *,
        mshr=None,
        clock: Callable[[], float] | None = None,
        events: EventLog | None = None,
        region_bytes: int = DEFAULT_REGION_BYTES,
    ) -> None:
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1, got {interval}")
        if region_bytes < 1 or region_bytes & (region_bytes - 1):
            raise ValueError(
                f"region size must be a power of two, got {region_bytes}"
            )
        self.interval = interval
        self.events = events
        self.region_bytes = region_bytes
        self._registry = registry
        self._mshr = mshr
        self._clock = clock
        self._pending = 0
        self._last: Snapshot = registry.snapshot()
        self._region_shift = region_bytes.bit_length() - 1
        self._heat_access: dict[int, int] = {}
        self._heat_forwarded: dict[int, int] = {}
        self.windows: dict[str, list] = {name: [] for name in WINDOW_SERIES}
        #: Optional live-streaming hook: called once per *closed* window
        #: with ``{"index": i, <series name>: value, ...}``.  Paid only
        #: at window boundaries (never per reference), so the disabled
        #: and non-streaming costs are both unchanged.  The callback
        #: must never raise; the serve tier's forwarder swallows its own
        #: queue-full conditions.
        self.on_window: Callable[[dict[str, Any]], None] | None = None

    # ------------------------------------------------------------------
    def add_on_window(self, callback: Callable[[dict[str, Any]], None]) -> None:
        """Chain ``callback`` after any existing :attr:`on_window` hook.

        Multiple consumers (the adaptive engine, the serve tier's SSE
        forwarder, an application-supplied streamer) can all observe the
        same windows; each sees the identical window dict, in the order
        the hooks were added.
        """
        existing = self.on_window
        if existing is None:
            self.on_window = callback
            return

        def chained(
            window: dict[str, Any],
            _first: Callable[[dict[str, Any]], None] = existing,
            _second: Callable[[dict[str, Any]], None] = callback,
        ) -> None:
            _first(window)
            _second(window)

        self.on_window = chained

    @property
    def region_shift(self) -> int:
        """log2 of the heatmap region size (address -> region id shift)."""
        return self._region_shift

    def heat_snapshot(self) -> tuple[dict[int, int], dict[int, int]]:
        """The live cumulative ``(access, forwarded)`` heat maps.

        Returned by reference (not copied): callers diff against their
        own previous snapshot and must not mutate them.
        """
        return self._heat_access, self._heat_forwarded

    def tick(self, address: int) -> None:
        """Count one data reference at ``address``; sample on boundary."""
        region = address >> self._region_shift
        heat = self._heat_access
        heat[region] = heat.get(region, 0) + 1
        self._pending += 1
        if self._pending >= self.interval:
            self._sample()

    def note_forwarded(self, address: int) -> None:
        """Count one forwarded reference whose *initial* address is given."""
        region = address >> self._region_shift
        heat = self._heat_forwarded
        heat[region] = heat.get(region, 0) + 1

    def finish(self) -> None:
        """Close the (possibly partial) trailing window."""
        if self._pending:
            self._sample()

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        snap = self._registry.snapshot()
        window = snap.diff(self._last)
        self._last = snap
        refs = self._pending
        self._pending = 0
        get = window.get
        misses = 0
        for name in _MISS_METRICS:
            misses += get(name, 0)
        stalls = 0.0
        for name in _STALL_METRICS:
            stalls += get(name, 0.0)
        chases = get("ref.load.forwarded", 0) + get("ref.store.forwarded", 0)
        occupancy = 0
        if self._mshr is not None and self._clock is not None:
            occupancy = self._mshr.occupancy_at(self._clock())
        series = self.windows
        series["refs"].append(refs)
        series["cycles"].append(get("time.cycles", 0.0))
        series["l1_misses"].append(int(misses))
        series["miss_rate"].append(misses / refs if refs else 0.0)
        series["stall_slots"].append(stalls)
        series["chases"].append(int(chases))
        series["mshr_occupancy"].append(occupancy)
        if self.on_window is not None:
            index = len(series["refs"]) - 1
            self.on_window({
                "index": index,
                "refs": refs,
                "cycles": series["cycles"][index],
                "l1_misses": series["l1_misses"][index],
                "miss_rate": series["miss_rate"][index],
                "stall_slots": stalls,
                "chases": series["chases"][index],
                "mshr_occupancy": occupancy,
            })

    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        return len(self.windows["refs"])

    def heatmap(self) -> dict[str, Any]:
        """JSON-safe address-space heatmap (regions keyed by index)."""
        forwarded = self._heat_forwarded
        return {
            "region_bytes": self.region_bytes,
            "regions": {
                str(region): {
                    "accesses": count,
                    "forwarded": forwarded.get(region, 0),
                }
                for region, count in sorted(self._heat_access.items())
            },
        }

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe form carried on :class:`~repro.apps.base.AppResult`."""
        return {
            "sample_interval": self.interval,
            "window_count": self.window_count,
            "windows": {name: list(series) for name, series in self.windows.items()},
            "heatmap": self.heatmap(),
            "events": (
                self.events.to_payload() if self.events is not None else None
            ),
        }
