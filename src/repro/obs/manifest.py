"""Versioned, schema-validated run manifests.

A *manifest* is the machine-readable record of one experiment artifact
run: the configuration that produced it, the workload seeds, the content
hashes of every trace it consumed, the span timeline, and the full
metric tree.  ``python -m repro <artifact> --format json`` prints one;
regression tooling and dashboards parse it instead of scraping the
rendered tables.

The schema is committed next to this module (``manifest_schema.json``)
and every manifest is validated against it before it leaves the
process.  Validation prefers :mod:`jsonschema` when importable and falls
back to a pure-python structural check so the artifact pipeline works in
minimal environments.
"""

from __future__ import annotations

import json
import platform
from importlib import resources
from typing import Any, Iterable, Mapping

from repro.obs.registry import Snapshot
from repro.obs.span import SpanLog

MANIFEST_VERSION = 1
MANIFEST_SCHEMA = "repro.obs.manifest/v1"

_SCALAR = (str, int, float, bool, type(None))


class ManifestError(ValueError):
    """A manifest failed schema validation."""


def load_schema() -> dict[str, Any]:
    """The committed JSON schema for manifest version 1."""
    text = (
        resources.files("repro.obs").joinpath("manifest_schema.json").read_text()
    )
    return json.loads(text)


def cell(
    cell_id: str,
    *,
    labels: Mapping[str, Any] | None = None,
    checksum: int | None = None,
    metrics: Snapshot | Mapping[str, Any] | None = None,
    values: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """One manifest cell: a figure bar, a table row, an ablation point.

    ``labels`` carries the cell's coordinates (app, variant, line size,
    ...), ``values`` its artifact-specific derived numbers (normalized
    slots, speedup, miss rate), ``metrics`` the raw metric tree of the
    simulation(s) behind it.
    """
    entry: dict[str, Any] = {"id": cell_id}
    if labels:
        entry["labels"] = dict(labels)
    if checksum is not None:
        entry["checksum"] = checksum
    if metrics is not None:
        entry["metrics"] = (
            metrics.tree() if isinstance(metrics, Snapshot) else dict(metrics)
        )
    if values:
        entry["values"] = dict(values)
    return entry


def build_manifest(
    artifact: str,
    *,
    run: Mapping[str, Any],
    seeds: Mapping[str, int],
    metrics: Snapshot | Mapping[str, Any],
    spans: SpanLog | Iterable[Mapping[str, Any]] | None = None,
    cells: Iterable[Mapping[str, Any]] = (),
    trace_hashes: Mapping[str, str] | None = None,
    summary: Mapping[str, Any] | None = None,
    validate: bool = True,
) -> dict[str, Any]:
    """Assemble (and by default validate) a version-1 run manifest."""
    from repro import __version__

    if isinstance(spans, SpanLog):
        span_list = spans.to_list()
    elif spans is None:
        span_list = []
    else:
        span_list = [dict(record) for record in spans]
    manifest: dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "schema": MANIFEST_SCHEMA,
        "artifact": artifact,
        "tool": {
            "name": "repro",
            "version": __version__,
            "python": platform.python_version(),
        },
        "run": dict(run),
        "seeds": dict(seeds),
        "trace_hashes": dict(trace_hashes or {}),
        "spans": span_list,
        "metrics": (
            metrics.tree() if isinstance(metrics, Snapshot) else dict(metrics)
        ),
        "cells": [dict(entry) for entry in cells],
    }
    if summary is not None:
        manifest["summary"] = dict(summary)
    if validate:
        validate_manifest(manifest)
    return manifest


def validate_manifest(manifest: Mapping[str, Any]) -> None:
    """Raise :class:`ManifestError` unless ``manifest`` matches the schema.

    Uses :mod:`jsonschema` when available; otherwise falls back to a
    structural check covering the same constraints (required keys, value
    types, metric-tree shape).
    """
    try:
        import jsonschema
    except ImportError:
        _validate_structurally(manifest)
        return
    try:
        jsonschema.validate(instance=dict(manifest), schema=load_schema())
    except jsonschema.ValidationError as exc:
        raise ManifestError(str(exc)) from exc


def _fail(path: str, message: str) -> None:
    raise ManifestError(f"{path}: {message}")


def _check_scalar_map(value: Any, path: str) -> None:
    if not isinstance(value, dict):
        _fail(path, "must be an object")
    for key, item in value.items():
        if not isinstance(key, str):
            _fail(path, f"non-string key {key!r}")
        if not isinstance(item, _SCALAR):
            _fail(f"{path}.{key}", "must be a scalar")


def _check_metric_tree(value: Any, path: str) -> None:
    if not isinstance(value, dict):
        _fail(path, "metric tree node must be an object")
    for key, item in value.items():
        if not isinstance(key, str):
            _fail(path, f"non-string key {key!r}")
        if isinstance(item, bool) or not isinstance(item, (int, float, dict)):
            _fail(f"{path}.{key}", "must be a number or a subtree")
        if isinstance(item, dict):
            _check_metric_tree(item, f"{path}.{key}")


def _validate_structurally(manifest: Mapping[str, Any]) -> None:
    """Pure-python fallback mirroring manifest_schema.json."""
    required = (
        "manifest_version",
        "schema",
        "artifact",
        "tool",
        "run",
        "seeds",
        "trace_hashes",
        "spans",
        "metrics",
        "cells",
    )
    for key in required:
        if key not in manifest:
            _fail(key, "missing required field")
    if manifest["manifest_version"] != MANIFEST_VERSION:
        _fail("manifest_version", f"must be {MANIFEST_VERSION}")
    if manifest["schema"] != MANIFEST_SCHEMA:
        _fail("schema", f"must be {MANIFEST_SCHEMA!r}")
    if not isinstance(manifest["artifact"], str) or not manifest["artifact"]:
        _fail("artifact", "must be a non-empty string")
    tool = manifest["tool"]
    if not isinstance(tool, dict) or set(tool) != {"name", "version", "python"}:
        _fail("tool", "must have exactly name/version/python")
    for key, item in tool.items():
        if not isinstance(item, str):
            _fail(f"tool.{key}", "must be a string")
    _check_scalar_map(manifest["run"], "run")
    seeds = manifest["seeds"]
    if not isinstance(seeds, dict):
        _fail("seeds", "must be an object")
    for app, seed in seeds.items():
        if isinstance(seed, bool) or not isinstance(seed, int):
            _fail(f"seeds.{app}", "must be an integer")
    hashes = manifest["trace_hashes"]
    if not isinstance(hashes, dict):
        _fail("trace_hashes", "must be an object")
    for key, digest in hashes.items():
        if not isinstance(digest, str) or not digest or set(digest) - set(
            "0123456789abcdef"
        ):
            _fail(f"trace_hashes.{key}", "must be a lowercase hex string")
    spans = manifest["spans"]
    if not isinstance(spans, list):
        _fail("spans", "must be an array")
    for index, record in enumerate(spans):
        path = f"spans[{index}]"
        if not isinstance(record, dict):
            _fail(path, "must be an object")
        extra = set(record) - {"name", "wall_seconds", "depth", "metrics"}
        missing = {"name", "wall_seconds", "depth", "metrics"} - set(record)
        if extra or missing:
            _fail(path, f"bad keys (extra={extra}, missing={missing})")
        if not isinstance(record["name"], str) or not record["name"]:
            _fail(f"{path}.name", "must be a non-empty string")
        if isinstance(record["wall_seconds"], bool) or not isinstance(
            record["wall_seconds"], (int, float)
        ) or record["wall_seconds"] < 0:
            _fail(f"{path}.wall_seconds", "must be a non-negative number")
        if isinstance(record["depth"], bool) or not isinstance(
            record["depth"], int
        ) or record["depth"] < 0:
            _fail(f"{path}.depth", "must be a non-negative integer")
        _check_metric_tree(record["metrics"], f"{path}.metrics")
    _check_metric_tree(manifest["metrics"], "metrics")
    cells = manifest["cells"]
    if not isinstance(cells, list):
        _fail("cells", "must be an array")
    for index, entry in enumerate(cells):
        path = f"cells[{index}]"
        if not isinstance(entry, dict):
            _fail(path, "must be an object")
        if set(entry) - {"id", "labels", "checksum", "metrics", "values"}:
            _fail(path, "unexpected keys")
        if not isinstance(entry.get("id"), str) or not entry["id"]:
            _fail(f"{path}.id", "must be a non-empty string")
        if "labels" in entry:
            _check_scalar_map(entry["labels"], f"{path}.labels")
        if "checksum" in entry and entry["checksum"] is not None:
            if isinstance(entry["checksum"], bool) or not isinstance(
                entry["checksum"], int
            ):
                _fail(f"{path}.checksum", "must be an integer or null")
        if "metrics" in entry:
            _check_metric_tree(entry["metrics"], f"{path}.metrics")
        if "values" in entry:
            _check_scalar_map(entry["values"], f"{path}.values")
    if "summary" in manifest:
        _check_scalar_map(manifest["summary"], "summary")
