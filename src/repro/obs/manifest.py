"""Versioned, schema-validated run manifests.

A *manifest* is the machine-readable record of one experiment artifact
run: the configuration that produced it, the workload seeds, the content
hashes of every trace it consumed, the span timeline, and the full
metric tree.  ``python -m repro <artifact> --format json`` prints one;
regression tooling and dashboards parse it instead of scraping the
rendered tables.

The schemas are committed next to this module (``manifest_schema.json``
for version 1, ``manifest_schema_v2.json`` for version 2,
``manifest_schema_v3.json`` for version 3) and every manifest is
validated against its declared version before it leaves the process.
Validation prefers :mod:`jsonschema` when importable and falls back to a
pure-python structural check so the artifact pipeline works in minimal
environments.

Version 2 (the ``repro.obs.timeline`` layer) added two optional
sections -- ``timeline`` (windowed time series and address-space heatmap
per simulation cell) and ``events`` (the bounded structured event
stream) -- plus an optional ``error`` field on span records.  Version 3
(the ``repro.obs.tracing`` layer) adds optional causal identity to span
records -- ``trace_id``/``span_id``/``parent_id`` hex ids and a
wall-clock ``start`` stamp -- so a serve-tier manifest carries the full
request span tree across the process-pool boundary.  Older manifests
still validate as their own version and can be explicitly up-converted
with :func:`upgrade_manifest`.
"""

from __future__ import annotations

import json
import platform
from importlib import resources
from typing import Any, Iterable, Mapping

from repro.obs.registry import Snapshot
from repro.obs.span import SpanLog

MANIFEST_VERSION = 3
MANIFEST_SCHEMA = "repro.obs.manifest/v3"
MANIFEST_SCHEMA_V2 = "repro.obs.manifest/v2"
MANIFEST_SCHEMA_V1 = "repro.obs.manifest/v1"

_SCHEMA_FILES = {
    1: "manifest_schema.json",
    2: "manifest_schema_v2.json",
    3: "manifest_schema_v3.json",
}
_SCHEMA_NAMES = {1: MANIFEST_SCHEMA_V1, 2: MANIFEST_SCHEMA_V2, 3: MANIFEST_SCHEMA}

_SCALAR = (str, int, float, bool, type(None))

#: Compiled jsonschema validators, one per manifest version (lazy).
_VALIDATORS: dict[int, Any] = {}


class ManifestError(ValueError):
    """A manifest failed schema validation."""


def load_schema(version: int = MANIFEST_VERSION) -> dict[str, Any]:
    """The committed JSON schema for the given manifest version."""
    try:
        filename = _SCHEMA_FILES[version]
    except KeyError:
        raise ManifestError(
            f"no schema for manifest version {version!r}; "
            f"known: {sorted(_SCHEMA_FILES)}"
        ) from None
    text = resources.files("repro.obs").joinpath(filename).read_text()
    return json.loads(text)


def upgrade_manifest(manifest: Mapping[str, Any]) -> dict[str, Any]:
    """Up-convert a manifest to the current version (validated).

    Versions 1 and 2 become version 3 by re-stamping the version and
    schema fields: every older construct is legal v3 -- the v2 sections
    (``timeline``, ``events``) and the v3 span identity fields are all
    optional, so an upgraded manifest simply lacks the ones its producer
    predates.  A manifest already at the current version is returned as
    a validated copy.
    """
    upgraded = dict(manifest)
    version = upgraded.get("manifest_version")
    if version in (1, 2):
        upgraded["manifest_version"] = MANIFEST_VERSION
        upgraded["schema"] = MANIFEST_SCHEMA
    elif version != MANIFEST_VERSION:
        raise ManifestError(
            f"cannot upgrade manifest_version {version!r}; "
            f"known: {sorted(_SCHEMA_FILES)}"
        )
    validate_manifest(upgraded)
    return upgraded


def cell(
    cell_id: str,
    *,
    labels: Mapping[str, Any] | None = None,
    checksum: int | None = None,
    metrics: Snapshot | Mapping[str, Any] | None = None,
    values: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """One manifest cell: a figure bar, a table row, an ablation point.

    ``labels`` carries the cell's coordinates (app, variant, line size,
    ...), ``values`` its artifact-specific derived numbers (normalized
    slots, speedup, miss rate), ``metrics`` the raw metric tree of the
    simulation(s) behind it.
    """
    entry: dict[str, Any] = {"id": cell_id}
    if labels:
        entry["labels"] = dict(labels)
    if checksum is not None:
        entry["checksum"] = checksum
    if metrics is not None:
        entry["metrics"] = (
            metrics.tree() if isinstance(metrics, Snapshot) else dict(metrics)
        )
    if values:
        entry["values"] = dict(values)
    return entry


def build_manifest(
    artifact: str,
    *,
    run: Mapping[str, Any],
    seeds: Mapping[str, int],
    metrics: Snapshot | Mapping[str, Any],
    spans: SpanLog | Iterable[Mapping[str, Any]] | None = None,
    cells: Iterable[Mapping[str, Any]] = (),
    trace_hashes: Mapping[str, str] | None = None,
    summary: Mapping[str, Any] | None = None,
    timeline: Mapping[str, Any] | None = None,
    events: Mapping[str, Any] | None = None,
    validate: bool = True,
) -> dict[str, Any]:
    """Assemble (and by default validate) a current-version run manifest.

    ``timeline`` and ``events`` are the optional v2 sections (see
    :mod:`repro.obs.timeline`); pass the per-cell payload maps the
    experiment runner collects.
    """
    from repro import __version__

    if isinstance(spans, SpanLog):
        span_list = spans.to_list()
    elif spans is None:
        span_list = []
    else:
        span_list = [dict(record) for record in spans]
    manifest: dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "schema": MANIFEST_SCHEMA,
        "artifact": artifact,
        "tool": {
            "name": "repro",
            "version": __version__,
            "python": platform.python_version(),
        },
        "run": dict(run),
        "seeds": dict(seeds),
        "trace_hashes": dict(trace_hashes or {}),
        "spans": span_list,
        "metrics": (
            metrics.tree() if isinstance(metrics, Snapshot) else dict(metrics)
        ),
        "cells": [dict(entry) for entry in cells],
    }
    if summary is not None:
        manifest["summary"] = dict(summary)
    if timeline is not None:
        manifest["timeline"] = dict(timeline)
    if events is not None:
        manifest["events"] = dict(events)
    if validate:
        validate_manifest(manifest)
    return manifest


def validate_manifest(manifest: Mapping[str, Any]) -> None:
    """Raise :class:`ManifestError` unless ``manifest`` matches its schema.

    Dispatches on the manifest's declared ``manifest_version`` (1 and 2
    both remain valid -- old manifests do not rot when the current
    version moves).  Uses :mod:`jsonschema` when available; otherwise
    falls back to a structural check covering the same constraints
    (required keys, value types, metric-tree shape).
    """
    version = manifest.get("manifest_version")
    if version not in _SCHEMA_FILES:
        raise ManifestError(
            f"manifest_version: unknown version {version!r}; "
            f"known: {sorted(_SCHEMA_FILES)}"
        )
    try:
        import jsonschema
    except ImportError:
        _validate_structurally(manifest)
        return
    validator = _VALIDATORS.get(version)
    if validator is None:
        # Compile (and schema-check) once per version: jsonschema.validate
        # redoes both on every call, which dominates hot paths like the
        # serve warm-cache probe.
        schema = load_schema(version)
        cls = jsonschema.validators.validator_for(schema)
        cls.check_schema(schema)
        validator = _VALIDATORS[version] = cls(schema)
    error = jsonschema.exceptions.best_match(validator.iter_errors(dict(manifest)))
    if error is not None:
        raise ManifestError(str(error)) from error


def _fail(path: str, message: str) -> None:
    raise ManifestError(f"{path}: {message}")


def _check_scalar_map(value: Any, path: str) -> None:
    if not isinstance(value, dict):
        _fail(path, "must be an object")
    for key, item in value.items():
        if not isinstance(key, str):
            _fail(path, f"non-string key {key!r}")
        if not isinstance(item, _SCALAR):
            _fail(f"{path}.{key}", "must be a scalar")


def _check_metric_tree(value: Any, path: str) -> None:
    if not isinstance(value, dict):
        _fail(path, "metric tree node must be an object")
    for key, item in value.items():
        if not isinstance(key, str):
            _fail(path, f"non-string key {key!r}")
        if isinstance(item, bool) or not isinstance(item, (int, float, dict)):
            _fail(f"{path}.{key}", "must be a number or a subtree")
        if isinstance(item, dict):
            _check_metric_tree(item, f"{path}.{key}")


def _validate_structurally(manifest: Mapping[str, Any]) -> None:
    """Pure-python fallback mirroring the committed schema files."""
    required = (
        "manifest_version",
        "schema",
        "artifact",
        "tool",
        "run",
        "seeds",
        "trace_hashes",
        "spans",
        "metrics",
        "cells",
    )
    for key in required:
        if key not in manifest:
            _fail(key, "missing required field")
    version = manifest["manifest_version"]
    if version not in _SCHEMA_FILES:
        _fail(
            "manifest_version",
            f"unknown version {version!r}; known: {sorted(_SCHEMA_FILES)}",
        )
    if manifest["schema"] != _SCHEMA_NAMES[version]:
        _fail("schema", f"must be {_SCHEMA_NAMES[version]!r}")
    allowed_top = set(required) | {"summary"}
    if version >= 2:
        allowed_top |= {"timeline", "events"}
    extra_top = set(manifest) - allowed_top
    if extra_top:
        _fail("/", f"unexpected keys {sorted(extra_top)}")
    if not isinstance(manifest["artifact"], str) or not manifest["artifact"]:
        _fail("artifact", "must be a non-empty string")
    tool = manifest["tool"]
    if not isinstance(tool, dict) or set(tool) != {"name", "version", "python"}:
        _fail("tool", "must have exactly name/version/python")
    for key, item in tool.items():
        if not isinstance(item, str):
            _fail(f"tool.{key}", "must be a string")
    _check_scalar_map(manifest["run"], "run")
    seeds = manifest["seeds"]
    if not isinstance(seeds, dict):
        _fail("seeds", "must be an object")
    for app, seed in seeds.items():
        if isinstance(seed, bool) or not isinstance(seed, int):
            _fail(f"seeds.{app}", "must be an integer")
    hashes = manifest["trace_hashes"]
    if not isinstance(hashes, dict):
        _fail("trace_hashes", "must be an object")
    for key, digest in hashes.items():
        if not isinstance(digest, str) or not digest or set(digest) - set(
            "0123456789abcdef"
        ):
            _fail(f"trace_hashes.{key}", "must be a lowercase hex string")
    spans = manifest["spans"]
    if not isinstance(spans, list):
        _fail("spans", "must be an array")
    span_keys = {"name", "wall_seconds", "depth", "metrics"}
    span_optional = {"error"} if version >= 2 else set()
    if version >= 3:
        span_optional |= {"trace_id", "span_id", "parent_id", "start"}
    for index, record in enumerate(spans):
        path = f"spans[{index}]"
        if not isinstance(record, dict):
            _fail(path, "must be an object")
        extra = set(record) - span_keys - span_optional
        missing = span_keys - set(record)
        if extra or missing:
            _fail(path, f"bad keys (extra={extra}, missing={missing})")
        if "error" in record and (
            not isinstance(record["error"], str) or not record["error"]
        ):
            _fail(f"{path}.error", "must be a non-empty string")
        for id_field in ("trace_id", "span_id", "parent_id"):
            if id_field in record:
                value = record[id_field]
                if not isinstance(value, str) or not value or set(value) - set(
                    "0123456789abcdef"
                ):
                    _fail(f"{path}.{id_field}", "must be a lowercase hex string")
        if "start" in record and (
            isinstance(record["start"], bool)
            or not isinstance(record["start"], (int, float))
            or record["start"] < 0
        ):
            _fail(f"{path}.start", "must be a non-negative number")
        if not isinstance(record["name"], str) or not record["name"]:
            _fail(f"{path}.name", "must be a non-empty string")
        if isinstance(record["wall_seconds"], bool) or not isinstance(
            record["wall_seconds"], (int, float)
        ) or record["wall_seconds"] < 0:
            _fail(f"{path}.wall_seconds", "must be a non-negative number")
        if isinstance(record["depth"], bool) or not isinstance(
            record["depth"], int
        ) or record["depth"] < 0:
            _fail(f"{path}.depth", "must be a non-negative integer")
        _check_metric_tree(record["metrics"], f"{path}.metrics")
    _check_metric_tree(manifest["metrics"], "metrics")
    cells = manifest["cells"]
    if not isinstance(cells, list):
        _fail("cells", "must be an array")
    for index, entry in enumerate(cells):
        path = f"cells[{index}]"
        if not isinstance(entry, dict):
            _fail(path, "must be an object")
        if set(entry) - {"id", "labels", "checksum", "metrics", "values"}:
            _fail(path, "unexpected keys")
        if not isinstance(entry.get("id"), str) or not entry["id"]:
            _fail(f"{path}.id", "must be a non-empty string")
        if "labels" in entry:
            _check_scalar_map(entry["labels"], f"{path}.labels")
        if "checksum" in entry and entry["checksum"] is not None:
            if isinstance(entry["checksum"], bool) or not isinstance(
                entry["checksum"], int
            ):
                _fail(f"{path}.checksum", "must be an integer or null")
        if "metrics" in entry:
            _check_metric_tree(entry["metrics"], f"{path}.metrics")
        if "values" in entry:
            _check_scalar_map(entry["values"], f"{path}.values")
    if "summary" in manifest:
        _check_scalar_map(manifest["summary"], "summary")
    if "timeline" in manifest:
        _check_timeline_section(manifest["timeline"], "timeline")
    if "events" in manifest:
        _check_events_section(manifest["events"], "events")


_WINDOW_SERIES_KEYS = (
    "refs",
    "cycles",
    "l1_misses",
    "miss_rate",
    "stall_slots",
    "chases",
    "mshr_occupancy",
)


def _check_timeline_section(section: Any, path: str) -> None:
    if not isinstance(section, dict) or set(section) != {"cells"}:
        _fail(path, "must be an object with exactly a 'cells' key")
    for cell_id, cell in section["cells"].items():
        cell_path = f"{path}.cells.{cell_id}"
        if not isinstance(cell, dict) or set(cell) != {
            "sample_interval",
            "window_count",
            "windows",
            "heatmap",
        }:
            _fail(cell_path, "bad keys")
        windows = cell["windows"]
        if not isinstance(windows, dict) or set(windows) != set(
            _WINDOW_SERIES_KEYS
        ):
            _fail(f"{cell_path}.windows", "bad series keys")
        lengths = set()
        for name, series in windows.items():
            if not isinstance(series, list):
                _fail(f"{cell_path}.windows.{name}", "must be an array")
            lengths.add(len(series))
        if len(lengths) > 1:
            _fail(f"{cell_path}.windows", "series lengths differ")
        heatmap = cell["heatmap"]
        if not isinstance(heatmap, dict) or set(heatmap) != {
            "region_bytes",
            "regions",
        }:
            _fail(f"{cell_path}.heatmap", "bad keys")


def _check_events_section(section: Any, path: str) -> None:
    if not isinstance(section, dict) or set(section) != {"cells"}:
        _fail(path, "must be an object with exactly a 'cells' key")
    for cell_id, payload in section["cells"].items():
        cell_path = f"{path}.cells.{cell_id}"
        if not isinstance(payload, dict) or set(payload) != {
            "capacity",
            "total",
            "dropped",
            "counts",
            "records",
        }:
            _fail(cell_path, "bad keys")
        if not isinstance(payload["records"], list):
            _fail(f"{cell_path}.records", "must be an array")
        for index, record in enumerate(payload["records"]):
            if not isinstance(record, dict) or set(record) != {
                "ts",
                "kind",
                "args",
            }:
                _fail(f"{cell_path}.records[{index}]", "bad keys")
