"""Hierarchical metrics registry: typed instruments, snapshots, merge/diff.

This is the single instrumentation surface of the reproduction.  Every
stats producer (caches, MSHR file, timing model, speculator, prefetcher,
forwarding engine, relocation runtime) registers its counters here under
dotted names -- ``cache.l1.miss.load_full``, ``slots.load_stall`` -- and
every consumer (experiment drivers, the sweep executor, run manifests)
reads :class:`Snapshot` objects instead of plucking attributes off
bespoke stat structs.

Two registration styles exist, because the simulator has two kinds of
producer:

* **Owned instruments** (:meth:`Registry.counter` /:meth:`~Registry.gauge`
  /:meth:`~Registry.histogram`) are created and mutated through the
  registry -- the right choice for cold-path counters such as the
  experiment runner's capture/replay/cache tallies.
* **Bound instruments** (:meth:`Registry.bind`) wrap a zero-argument
  getter that is only evaluated at snapshot time.  This is the *hot-path
  flush contract*: the fused kernels of :mod:`repro.core.hotpath` keep
  mutating the same flat counter slots they always have (``CacheStats``,
  ``MSHRStats``, ``TimingModel`` fields, ...) with zero added cost, and
  the registry pulls those slots into the metric tree only when someone
  asks for a snapshot.

Snapshots are plain immutable mappings of dotted name to value with
O(1) per-metric access, and they compose: :meth:`Snapshot.merge` sums
counters (and histograms key-wise) while taking the maximum of gauges --
exactly the semantics needed to aggregate shard results from a parallel
sweep -- and :meth:`Snapshot.diff` subtracts an earlier snapshot from a
later one, which is how spans attribute work to a region of execution.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

#: Instrument kinds.  Counters and histograms accumulate and merge by
#: summation; gauges are level measurements and merge by maximum (the
#: only gauge the simulator reports, heap high water, is a maximum by
#: construction).
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

_KINDS = (COUNTER, GAUGE, HISTOGRAM)


class MetricError(ValueError):
    """Invalid metric name, kind, or a structural conflict."""


class Counter:
    """Monotonic sum (int or float)."""

    __slots__ = ("name", "value")
    kind = COUNTER

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """Last-set level measurement."""

    __slots__ = ("name", "value")
    kind = GAUGE

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def track_max(self, value: int | float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Sparse histogram: observed key -> occurrence count."""

    __slots__ = ("name", "counts")
    kind = HISTOGRAM

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: dict[int, int] = {}

    def observe(self, key: int, count: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + count

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def _check_name(name: str) -> None:
    if not name or name.startswith(".") or name.endswith(".") or ".." in name:
        raise MetricError(f"invalid metric name {name!r}")


class Snapshot(Mapping[str, Any]):
    """Immutable point-in-time view of a metric tree.

    Maps dotted metric names to values: numbers for counters and gauges,
    ``{key: count}`` dicts for histograms.  Construction is O(n) in the
    number of metrics; lookups are O(1); ``merge``/``diff`` are O(n)
    single passes that never lose a key.
    """

    __slots__ = ("_values", "_kinds")

    def __init__(
        self,
        values: dict[str, Any] | None = None,
        kinds: dict[str, str] | None = None,
    ) -> None:
        self._values: dict[str, Any] = dict(values or {})
        self._kinds: dict[str, str] = dict(kinds or {})
        for name in self._values:
            self._kinds.setdefault(name, COUNTER)

    # -- mapping protocol ----------------------------------------------
    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Snapshot):
            return NotImplemented
        return self._values == other._values and self._kinds == other._kinds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot({len(self._values)} metrics)"

    def kind(self, name: str) -> str:
        """Instrument kind (counter/gauge/histogram) of ``name``."""
        return self._kinds[name]

    # -- composition ---------------------------------------------------
    def merge(self, other: "Snapshot") -> "Snapshot":
        """Combine two snapshots (e.g. shards of a sweep) into one.

        Counters and histograms sum; gauges take the maximum.  The result
        carries the union of both key sets -- no key is ever dropped.
        A name present in both with different kinds is a programming
        error and raises.
        """
        values = dict(self._values)
        kinds = dict(self._kinds)
        for name, theirs in other._values.items():
            kind = other._kinds[name]
            if name not in values:
                values[name] = dict(theirs) if kind == HISTOGRAM else theirs
                kinds[name] = kind
                continue
            if kinds[name] != kind:
                raise MetricError(
                    f"cannot merge {name!r}: kind {kinds[name]} vs {kind}"
                )
            if kind == HISTOGRAM:
                merged = dict(values[name])
                for key, count in theirs.items():
                    merged[key] = merged.get(key, 0) + count
                values[name] = merged
            elif kind == GAUGE:
                values[name] = max(values[name], theirs)
            else:
                values[name] = values[name] + theirs
        return Snapshot(values, kinds)

    def diff(self, older: "Snapshot") -> "Snapshot":
        """Work done between ``older`` and ``self`` (span attribution).

        Counters and histograms subtract; gauges keep their current
        (``self``) value.  Keys only in ``self`` pass through unchanged;
        keys only in ``older`` appear negated, so ``a.diff(b)`` never
        loses a key either.
        """
        values: dict[str, Any] = {}
        kinds = dict(self._kinds)
        for name, mine in self._values.items():
            kind = self._kinds[name]
            theirs = older._values.get(name)
            if theirs is None:
                values[name] = dict(mine) if kind == HISTOGRAM else mine
            elif kind == HISTOGRAM:
                delta = {
                    key: mine.get(key, 0) - theirs.get(key, 0)
                    for key in set(mine) | set(theirs)
                }
                values[name] = {k: v for k, v in delta.items() if v}
            elif kind == GAUGE:
                values[name] = mine
            else:
                values[name] = mine - theirs
        for name, theirs in older._values.items():
            if name in self._values:
                continue
            kind = older._kinds[name]
            kinds[name] = kind
            if kind == HISTOGRAM:
                values[name] = {k: -v for k, v in theirs.items()}
            elif kind == GAUGE:
                values[name] = theirs
            else:
                values[name] = -theirs
        return Snapshot(values, kinds)

    def nonzero(self) -> "Snapshot":
        """Copy without zero-valued counters/gauges and empty histograms."""
        values = {
            name: value
            for name, value in self._values.items()
            if value not in (0, 0.0, {})
        }
        kinds = {name: self._kinds[name] for name in values}
        return Snapshot(values, kinds)

    # -- views ---------------------------------------------------------
    def tree(self) -> dict[str, Any]:
        """Nested-dict form of the metric hierarchy (JSON-friendly).

        Histogram keys become strings so the result is valid JSON.
        """
        root: dict[str, Any] = {}
        for name in sorted(self._values):
            parts = name.split(".")
            node = root
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            value = self._values[name]
            if self._kinds[name] == HISTOGRAM:
                value = {str(key): count for key, count in sorted(value.items())}
            node[parts[-1]] = value
        return root

    def flat(self) -> dict[str, Any]:
        """Plain ``{dotted name: value}`` dict copy."""
        return dict(self._values)


#: The empty snapshot -- identity element of :meth:`Snapshot.merge`.
EMPTY = Snapshot()


def histogram_quantiles(
    counts: Mapping[Any, int], quantiles: Iterable[float] = (0.5, 0.99)
) -> dict[str, float]:
    """Nearest-rank quantiles of a sparse ``{value: count}`` histogram.

    Accepts the exact shapes histograms take across the codebase: int
    keys (live instruments) or their stringified form (JSON round
    trips).  Returns ``{"p50": ..., "p99": ...}``-style keys; empty
    histograms yield an empty dict.  This is how the serve layer turns
    its latency histograms into p50/p99 without retaining per-event
    samples.
    """
    total = 0
    pairs: list[tuple[float, int]] = []
    for key, count in counts.items():
        if count <= 0:
            continue
        pairs.append((float(key), count))
        total += count
    if not total:
        return {}
    pairs.sort()
    out: dict[str, float] = {}
    for quantile in quantiles:
        if not 0 < quantile <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        rank = max(1, -(-quantile * total // 1))  # ceil without math import
        seen = 0
        for value, count in pairs:
            seen += count
            if seen >= rank:
                label = f"{quantile * 100:g}"
                out[f"p{label}"] = value
                break
    return out


class Registry:
    """Hierarchical registry of owned and bound instruments.

    One registry instance corresponds to one observation domain: a
    machine, a replay, an experiment runner.  Names form a tree by
    dotted segments; a name may not be both a leaf and an interior node
    (``cache.l1`` cannot coexist with ``cache.l1.hits``), which keeps
    :meth:`Snapshot.tree` well-defined.
    """

    __slots__ = ("_owned", "_bound", "_prefixes", "spans")

    def __init__(self) -> None:
        self._owned: dict[str, Counter | Gauge | Histogram] = {}
        #: name -> (kind, getter); evaluated lazily at snapshot time.
        self._bound: dict[str, tuple[str, Callable[[], Any]]] = {}
        self._prefixes: set[str] = set()
        # Imported here to avoid a cycle (span.py imports Snapshot).
        from repro.obs.span import SpanLog

        self.spans = SpanLog()

    # -- registration --------------------------------------------------
    def _claim(self, name: str) -> None:
        _check_name(name)
        if name in self._owned or name in self._bound:
            raise MetricError(f"metric {name!r} already registered")
        if name in self._prefixes:
            raise MetricError(
                f"metric {name!r} is already an interior node of the tree"
            )
        parts = name.split(".")
        for depth in range(1, len(parts)):
            prefix = ".".join(parts[:depth])
            if prefix in self._owned or prefix in self._bound:
                raise MetricError(
                    f"metric {name!r} conflicts with existing leaf {prefix!r}"
                )
            self._prefixes.add(prefix)

    def counter(self, name: str) -> Counter:
        """Create (or fetch) an owned counter."""
        existing = self._owned.get(name)
        if existing is not None:
            if existing.kind != COUNTER:
                raise MetricError(f"{name!r} exists with kind {existing.kind}")
            return existing
        self._claim(name)
        instrument = Counter(name)
        self._owned[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Create (or fetch) an owned gauge."""
        existing = self._owned.get(name)
        if existing is not None:
            if existing.kind != GAUGE:
                raise MetricError(f"{name!r} exists with kind {existing.kind}")
            return existing
        self._claim(name)
        instrument = Gauge(name)
        self._owned[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Create (or fetch) an owned histogram."""
        existing = self._owned.get(name)
        if existing is not None:
            if existing.kind != HISTOGRAM:
                raise MetricError(f"{name!r} exists with kind {existing.kind}")
            return existing
        self._claim(name)
        instrument = Histogram(name)
        self._owned[name] = instrument
        return instrument

    def bind(
        self, name: str, getter: Callable[[], Any], kind: str = COUNTER
    ) -> None:
        """Register a source-backed metric read at snapshot time.

        ``getter`` must be cheap and side-effect free; it is evaluated on
        every :meth:`snapshot`.  This is how hot-path components expose
        their flat counter slots without paying any per-event cost.
        """
        if kind not in _KINDS:
            raise MetricError(f"unknown metric kind {kind!r}")
        self._claim(name)
        self._bound[name] = (kind, getter)

    # -- accounting ----------------------------------------------------
    def absorb(self, snapshot: Snapshot) -> None:
        """Fold a snapshot into this registry's owned instruments.

        Counters and histogram buckets add; gauges track the maximum.
        This is the registry-merge primitive the sweep aggregation and
        the experiment runner use instead of hand-summing dicts.
        """
        for name, value in snapshot.items():
            kind = snapshot.kind(name)
            if kind == HISTOGRAM:
                instrument = self.histogram(name)
                for key, count in value.items():
                    instrument.observe(key, count)
            elif kind == GAUGE:
                self.gauge(name).track_max(value)
            else:
                self.counter(name).inc(value)

    # -- observation ---------------------------------------------------
    def snapshot(self) -> Snapshot:
        """O(metrics) point-in-time view of every registered instrument."""
        values: dict[str, Any] = {}
        kinds: dict[str, str] = {}
        for name, instrument in self._owned.items():
            kinds[name] = instrument.kind
            if instrument.kind == HISTOGRAM:
                values[name] = dict(instrument.counts)
            else:
                values[name] = instrument.value
        for name, (kind, getter) in self._bound.items():
            kinds[name] = kind
            value = getter()
            values[name] = dict(value) if kind == HISTOGRAM else value
        return Snapshot(values, kinds)

    def span(self, name: str):
        """Context manager timing a region against this registry.

        Records wall time and the counter deltas between entry and exit
        into :attr:`spans`.  See :mod:`repro.obs.span`.
        """
        from repro.obs.span import span as _span

        return _span(name, registry=self, log=self.spans)
