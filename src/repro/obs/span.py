"""Lightweight spans: wall-clock timing plus counter attribution.

A span brackets a region of execution -- one figure regeneration, one
sweep phase, one captured run -- and records how long it took and what
simulation work happened inside it (the diff of the registry's counters
between entry and exit).  Spans nest; each record carries its dotted
name and depth so a log renders as an indented timeline.

Usage::

    registry = Registry()
    with registry.span("figure5.health.base"):
        ...work...
    registry.spans.records[-1].wall_seconds

Spans are instrumentation, not accounting: they never touch simulated
time, and a span around untimed code simply reports zero deltas.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import Registry, Snapshot


@dataclass(slots=True)
class SpanRecord:
    """One completed span."""

    name: str
    wall_seconds: float
    #: Nesting depth at the time the span ran (0 = top level).
    depth: int = 0
    #: Counter deltas observed across the span (dotted name -> delta).
    #: Zero deltas are dropped; gauges report their exit value.
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Exception summary when the span body raised (``None`` for clean
    #: exits).  A failed region still accounts for its time and work.
    error: str | None = None
    #: Causal identity (set by :mod:`repro.obs.tracing`; ``None`` for
    #: plain registry spans).  Hex strings; ``parent_id`` is ``None``
    #: for trace roots.
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None
    #: Wall-clock start stamp (``time.time()``), letting exporters lay
    #: spans out on a real axis instead of packing them sequentially.
    start: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form used by run manifests."""
        out = {
            "name": self.name,
            "wall_seconds": round(self.wall_seconds, 6),
            "depth": self.depth,
            "metrics": {
                name: (
                    {str(k): v for k, v in sorted(value.items())}
                    if isinstance(value, dict)
                    else value
                )
                for name, value in sorted(self.metrics.items())
            },
        }
        if self.error is not None:
            out["error"] = self.error
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.start is not None:
            out["start"] = round(self.start, 6)
        return out


class SpanLog:
    """Ordered log of completed spans (completion order, innermost first)."""

    __slots__ = ("records", "_depth")

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []
        self._depth = 0

    def to_list(self) -> list[dict[str, Any]]:
        return [record.to_dict() for record in self.records]

    def find(self, name: str) -> SpanRecord:
        """The most recent record with ``name`` (KeyError if absent)."""
        for record in reversed(self.records):
            if record.name == name:
                return record
        raise KeyError(name)


@contextmanager
def span(
    name: str,
    registry: "Registry | None" = None,
    log: SpanLog | None = None,
) -> Iterator[SpanRecord]:
    """Time a region; optionally attribute registry counter deltas to it.

    Yields the (still incomplete) :class:`SpanRecord`; its fields are
    filled in when the block exits, including on exception -- a failed
    region still accounts for the time it consumed, records its counter
    deltas, and carries the exception summary in ``record.error``.  The
    exception itself propagates unchanged, and nested spans unwind
    cleanly: the log's depth counter and record append happen even if
    computing the metric delta itself raises.
    """
    before: "Snapshot | None" = registry.snapshot() if registry is not None else None
    record = SpanRecord(name=name, wall_seconds=0.0)
    if log is not None:
        record.depth = log._depth
        log._depth += 1
    started = time.perf_counter()
    try:
        yield record
    except BaseException as exc:
        detail = str(exc)
        record.error = (
            f"{type(exc).__name__}: {detail}" if detail else type(exc).__name__
        )
        raise
    finally:
        record.wall_seconds = time.perf_counter() - started
        try:
            if registry is not None and before is not None:
                record.metrics = registry.snapshot().diff(before).nonzero().flat()
        finally:
            if log is not None:
                log._depth -= 1
                log.records.append(record)
