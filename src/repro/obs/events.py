"""Bounded structured event stream: the timeline's discrete channel.

Where :mod:`repro.obs.timeline` samples *rates* (what the machine was
doing per window), the event log records *occurrences* -- the discrete
acts the paper's mechanism is built from: an object relocation, a
forwarding-chain walk of a given length, an L2 inclusion victim taking
its L1 lines with it, a pool carve, a forwarding-aware free.

The log is a fixed-capacity ring: once full, the oldest record is
dropped (and counted in :attr:`EventLog.dropped`) so a long run's event
cost is bounded no matter how busy it is.  Per-kind totals
(:attr:`EventLog.counts`) are kept outside the ring and never drop, so
"how many relocations happened" survives even when the individual
records did not.

Emission must stay cheap but it is *not* free, which is why the core
only wires an :class:`EventLog` up when
:attr:`~repro.core.machine.MachineConfig.events_capacity` is non-zero --
and why enabling events forces the general reference path (the fused
kernels inline the cache internals some events come from; see
DESIGN.md 5d).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable


class EventLog:
    """Fixed-capacity ring of ``(timestamp, kind, fields)`` records.

    Parameters
    ----------
    capacity:
        Maximum records retained; older records drop first.
    clock:
        Zero-argument callable giving the timestamp of each event
        (the machine passes its simulated cycle counter).  ``None``
        stamps every record 0.0.
    """

    __slots__ = ("capacity", "clock", "records", "dropped", "counts")

    def __init__(
        self, capacity: int = 4096, clock: Callable[[], float] | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"event capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.records: deque[tuple[float, str, dict[str, Any]]] = deque(
            maxlen=capacity
        )
        #: Records evicted from the ring (emitted - retained).
        self.dropped = 0
        #: Per-kind emission totals; unlike the ring, these never drop.
        self.counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event of ``kind`` with keyword payload ``fields``."""
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        records = self.records
        if len(records) == self.capacity:
            self.dropped += 1
        clock = self.clock
        records.append((clock() if clock is not None else 0.0, kind, fields))

    @property
    def total(self) -> int:
        """Events emitted over the log's lifetime (retained or not)."""
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """JSON-safe form embedded in run manifests (``events`` section)."""
        return {
            "capacity": self.capacity,
            "total": self.total,
            "dropped": self.dropped,
            "counts": {kind: self.counts[kind] for kind in sorted(self.counts)},
            "records": [
                {"ts": ts, "kind": kind, "args": dict(fields)}
                for ts, kind, fields in self.records
            ],
        }
