"""Timeline exporters: Chrome trace (Perfetto), CSV, and window diffing.

Three consumers of the ``timeline``/``events`` manifest sections
(:mod:`repro.obs.manifest`, schema ``/v2``/``/v3``):

* :func:`chrome_trace` renders a manifest as Chrome-trace JSON -- the
  format ``chrome://tracing`` and https://ui.perfetto.dev load directly.
  Window series become counter tracks (one process per cell), event
  records become instant events, and the span log becomes duration
  slices on a wall-clock track.
* :func:`windows_csv` flattens one cell's window series to CSV for
  spreadsheet / pandas consumption.
* :func:`diff_timelines` aligns the windows of two manifests and flags
  per-window regressions -- the ``python -m repro timeline diff``
  regression gate.

All functions are pure: manifests in, JSON-safe structures out.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.timeline import WINDOW_SERIES

#: Derived per-window rates the diff gate compares.  Each is a function
#: of one window index into a ``windows`` series dict; rates (rather
#: than raw deltas) keep the comparison meaningful when two runs window
#: at slightly different trailing-window widths.
DIFF_METRICS = ("miss_rate", "cycles_per_ref", "stall_slots_per_ref", "chases_per_ref")

#: Default relative regression threshold for :func:`diff_timelines`.
DEFAULT_THRESHOLD = 0.05

#: Absolute slack added on top of the relative threshold so zero-valued
#: windows (miss-free, chase-free) don't flag on float noise.
DEFAULT_EPSILON = 1e-6


def _rate(windows: Mapping[str, list], metric: str, index: int) -> float:
    refs = windows["refs"][index]
    if metric == "miss_rate":
        return windows["miss_rate"][index]
    if not refs:
        return 0.0
    if metric == "cycles_per_ref":
        return windows["cycles"][index] / refs
    if metric == "stall_slots_per_ref":
        return windows["stall_slots"][index] / refs
    if metric == "chases_per_ref":
        return windows["chases"][index] / refs
    raise KeyError(metric)


# ----------------------------------------------------------------------
# Chrome trace / Perfetto
# ----------------------------------------------------------------------
def chrome_trace(manifest: Mapping[str, Any]) -> dict[str, Any]:
    """Chrome-trace JSON object for a ``/v2`` or ``/v3`` manifest.

    Timestamps are microseconds, as the format requires; simulated
    cycles map 1:1 to microseconds (the absolute scale is meaningless in
    a simulator -- only the shape matters), and span wall-clock seconds
    scale by 1e6 on their own track.
    """
    trace_events: list[dict[str, Any]] = []
    pid = 0

    timeline = manifest.get("timeline") or {}
    for cell_id in sorted(timeline.get("cells") or {}):
        cell = timeline["cells"][cell_id]
        windows = cell["windows"]
        pid += 1
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"timeline {cell_id}"},
        })
        ts = 0.0
        for index in range(len(windows["refs"])):
            # One counter sample per window, stamped at the window's
            # closing edge on the cumulative-cycle axis.
            ts += windows["cycles"][index]
            trace_events.append({
                "name": "window",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "args": {
                    "miss_rate": windows["miss_rate"][index],
                    "stall_slots": windows["stall_slots"][index],
                    "chases": windows["chases"][index],
                    "mshr_occupancy": windows["mshr_occupancy"][index],
                },
            })

    events = manifest.get("events") or {}
    for cell_id in sorted(events.get("cells") or {}):
        payload = events["cells"][cell_id]
        pid += 1
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"events {cell_id}"},
        })
        for record in payload.get("records", ()):
            trace_events.append({
                "name": record["kind"],
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": 0,
                "ts": record["ts"],
                "args": dict(record.get("args") or {}),
            })

    spans = manifest.get("spans") or []
    if spans:
        pid += 1
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "spans (wall clock)"},
        })
        # /v3 traced spans carry real wall-clock start stamps: lay those
        # out on a shared axis (normalized to the earliest stamp) so
        # queue wait, worker execution, and replay chunks line up
        # causally.  Legacy records without stamps fall back to the /v2
        # behavior -- sequential per depth, so nesting still reads.
        stamps = [
            record["start"] for record in spans if record.get("start") is not None
        ]
        origin = min(stamps) if stamps else 0.0
        cursor_by_depth: dict[int, float] = {}
        for record in spans:
            depth = record.get("depth", 0)
            duration = record["wall_seconds"] * 1e6
            stamped = record.get("start")
            if stamped is not None:
                start = (stamped - origin) * 1e6
            else:
                start = cursor_by_depth.get(depth, 0.0)
            args: dict[str, Any] = {}
            for field in ("trace_id", "span_id", "parent_id", "error"):
                if record.get(field) is not None:
                    args[field] = record[field]
            trace_events.append({
                "name": record["name"],
                "ph": "X",
                "pid": pid,
                "tid": depth,
                "ts": start,
                "dur": duration,
                "args": args,
            })
            cursor_by_depth[depth] = start + duration

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "artifact": str(manifest.get("artifact", "")),
            "schema": str(manifest.get("schema", "")),
        },
    }


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def windows_csv(windows: Mapping[str, list]) -> str:
    """One cell's window series as CSV (header + one row per window)."""
    lines = ["window," + ",".join(WINDOW_SERIES)]
    for index in range(len(windows["refs"])):
        row = [str(index)]
        for name in WINDOW_SERIES:
            value = windows[name][index]
            row.append(repr(value) if isinstance(value, float) else str(value))
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Window diffing (the `timeline diff` regression gate)
# ----------------------------------------------------------------------
def diff_timelines(
    before: Mapping[str, Any],
    after: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    epsilon: float = DEFAULT_EPSILON,
) -> tuple[list[dict[str, Any]], list[str]]:
    """Align two manifests' windows; returns ``(regressions, notes)``.

    A *regression* is a shared cell and window index where an ``after``
    rate exceeds the ``before`` rate by more than ``threshold``
    (relative) plus ``epsilon`` (absolute).  ``notes`` lists structural
    mismatches -- cells present on one side only, differing window
    counts -- which are reported but are not regressions.
    """
    cells_before = (before.get("timeline") or {}).get("cells") or {}
    cells_after = (after.get("timeline") or {}).get("cells") or {}
    regressions: list[dict[str, Any]] = []
    notes: list[str] = []
    for cell_id in sorted(set(cells_before) ^ set(cells_after)):
        side = "before" if cell_id in cells_before else "after"
        notes.append(f"cell {cell_id!r} only present in {side!r} manifest")
    for cell_id in sorted(set(cells_before) & set(cells_after)):
        windows_before = cells_before[cell_id]["windows"]
        windows_after = cells_after[cell_id]["windows"]
        n_before = len(windows_before["refs"])
        n_after = len(windows_after["refs"])
        if n_before != n_after:
            notes.append(
                f"cell {cell_id!r}: window count {n_before} vs {n_after}; "
                f"comparing the first {min(n_before, n_after)}"
            )
        for index in range(min(n_before, n_after)):
            for metric in DIFF_METRICS:
                value_before = _rate(windows_before, metric, index)
                value_after = _rate(windows_after, metric, index)
                if value_after > value_before * (1.0 + threshold) + epsilon:
                    regressions.append({
                        "cell": cell_id,
                        "window": index,
                        "metric": metric,
                        "before": value_before,
                        "after": value_after,
                        "ratio": (
                            value_after / value_before
                            if value_before
                            else float("inf")
                        ),
                    })
    return regressions, notes


def render_diff(
    regressions: list[dict[str, Any]], notes: list[str]
) -> str:
    """Human-readable report for :func:`diff_timelines` output."""
    lines = []
    for note in notes:
        lines.append(f"note: {note}")
    for entry in regressions:
        ratio = entry["ratio"]
        shown = f"{ratio:.3f}x" if ratio != float("inf") else "inf"
        lines.append(
            f"REGRESSION {entry['cell']} window {entry['window']} "
            f"{entry['metric']}: {entry['before']:.6g} -> "
            f"{entry['after']:.6g} ({shown})"
        )
    if not regressions:
        lines.append("no per-window regressions")
    return "\n".join(lines)
