"""Structured JSON logging for every subsystem, safe under a process pool.

The progress prints of PRs 1-8 were bare ``"%(message)s"`` lines on
stderr.  That worked for a single sweep process but breaks down in the
serve tier: worker *processes* inherit the handler and interleave
partial lines (stderr writes above the pipe buffer are not atomic at
the ``stream.write`` level), and nothing ties a log line back to the
request that caused it.  This module fixes both:

* :class:`JsonFormatter` renders one JSON object per line -- timestamp,
  level, logger, message, the current ``trace_id`` (a contextvar set by
  the serve tier), plus any ``extra={"fields": {...}}`` payload;
* :class:`AtomicLineHandler` buffers the formatted record and emits it
  with a *single* ``os.write`` on the stream's file descriptor, so
  lines from concurrent workers interleave whole, never torn;
* :func:`configure_logging` installs both on the ``repro`` root logger
  (idempotent, ``force=True`` to rebuild), gated by ``--log-level`` or
  the ``REPRO_LOG_LEVEL`` environment variable;
* :func:`worker_init` is a picklable pool initializer that repeats the
  configuration inside freshly spawned worker processes.

Everything stays off by default: importing this module configures
nothing, and library code keeps logging through the stdlib ``logging``
tree exactly as before.
"""

from __future__ import annotations

import contextvars
import json
import logging
import os
import sys
import time
from typing import Any, Iterator, TextIO

#: Root of the package's logger hierarchy (kept in sync with
#: :mod:`repro.core.debug`, which predates this module).
ROOT_LOGGER_NAME = "repro"

#: Environment variable consulted for the default level.
LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Contextvar carrying the active request's trace id; stamped onto
#: every record emitted while it is set.
_trace_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def current_trace_id() -> str | None:
    """The trace id bound to the current context, if any."""
    return _trace_id.get()


def bind_trace_id(trace_id: str | None) -> contextvars.Token:
    """Bind ``trace_id`` for the current context; returns a reset token."""
    return _trace_id.set(trace_id)


def reset_trace_id(token: contextvars.Token) -> None:
    _trace_id.reset(token)


class trace_context:
    """``with trace_context("a1b2..."):`` -- scope a trace id binding."""

    __slots__ = ("trace_id", "_token")

    def __init__(self, trace_id: str | None) -> None:
        self.trace_id = trace_id
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "trace_context":
        self._token = bind_trace_id(self.trace_id)
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._token is not None:
            reset_trace_id(self._token)
            self._token = None


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg, trace_id, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None) or current_trace_id()
        if trace_id:
            payload["trace_id"] = trace_id
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(
                {k: v for k, v in fields.items() if k not in payload}
            )
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False, default=str)


class AtomicLineHandler(logging.Handler):
    """Emit each formatted record as one atomic line.

    The record is formatted off to the side (per-worker buffering) and
    pushed with a single ``os.write`` when the stream has a usable file
    descriptor; writes of one line stay well under ``PIPE_BUF``, so
    concurrent worker processes never tear each other's lines.  Streams
    without a descriptor (pytest's capture replaces ``sys.stderr`` with
    a plain object) fall back to ``stream.write``.
    """

    def __init__(self, stream: TextIO | None = None) -> None:
        super().__init__()
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, record: logging.LogRecord) -> None:
        try:
            line = self.format(record) + "\n"
            stream = self.stream
            fileno = None
            try:
                fileno = stream.fileno()
            except (AttributeError, OSError, ValueError):
                fileno = None
            if fileno is not None:
                os.write(fileno, line.encode("utf-8", "replace"))
            else:
                stream.write(line)
                flush = getattr(stream, "flush", None)
                if flush is not None:
                    flush()
        except Exception:  # pragma: no cover - stdlib handler contract
            self.handleError(record)


def resolve_level(level: int | str | None = None) -> int:
    """Numeric level from an int, a name, or the environment (INFO default)."""
    if level is None:
        level = os.environ.get(LEVEL_ENV) or "INFO"
    if isinstance(level, int):
        return level
    name = str(level).strip().upper()
    resolved = logging.getLevelName(name)
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level: {level!r}")
    return resolved


def configure_logging(
    level: int | str | None = None,
    *,
    stream: TextIO | None = None,
    force: bool = False,
) -> logging.Logger:
    """Install the structured handler on the ``repro`` logger (idempotent).

    Logs go to *stderr* deliberately: stdout is reserved for rendered
    tables and figures, which must stay machine-diffable even when
    several sweep workers are reporting at once.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    numeric = resolve_level(level)
    if force:
        for handler in [h for h in logger.handlers if isinstance(h, AtomicLineHandler)]:
            logger.removeHandler(handler)
    if not any(isinstance(h, AtomicLineHandler) for h in logger.handlers):
        handler = AtomicLineHandler(stream)
        handler.setFormatter(JsonFormatter())
        logger.addHandler(handler)
    logger.setLevel(numeric)
    return logger


def worker_init(level: int | str | None = None) -> None:
    """Pool initializer: repeat the logging setup in a worker process.

    Spawned workers import the package fresh and inherit nothing from
    the parent's logger tree; ``initializer=worker_init`` (with the
    parent's resolved level as ``initargs``) gives them the same
    atomic structured handler so their lines never tear.
    """
    configure_logging(level, force=True)


def log_event(
    logger: logging.Logger,
    level: int,
    msg: str,
    /,
    **fields: Any,
) -> None:
    """Log ``msg`` with structured ``fields`` folded into the JSON line."""
    if logger.isEnabledFor(level):
        logger.log(level, msg, extra={"fields": fields})


def iter_log_lines(text: str) -> Iterator[dict[str, Any]]:
    """Parse captured structured-log output back into dicts (tests, CI)."""
    for line in text.splitlines():
        line = line.strip()
        if not line or not line.startswith("{"):
            continue
        try:
            yield json.loads(line)
        except ValueError:
            continue
