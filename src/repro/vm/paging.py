"""A paging layer: memory forwarding below the cache hierarchy.

Section 2.2 and the paper's conclusion argue the optimizations apply "to
the other levels of the memory hierarchy.  For example, we can apply
data relocation to improve the spatial locality within pages (and hence
on disk) for out-of-core applications."

This module supplies the substrate: an LRU-managed pool of resident page
frames over the simulated address space, with a disk-latency charge per
page fault.  The :mod:`repro.vm.out_of_core` experiment then shows list
linearization cutting page faults the same way it cuts cache misses.

The pager sees *final* addresses -- the machine resolves forwarding
before any physical access -- so relocation transparently changes which
pages a traversal touches: exactly the paper's point.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class PagerConfig:
    """Residency and cost parameters of the paging layer."""

    page_size: int = 4096
    #: Number of page frames that fit in "memory" (tiny, so the working
    #: set of an out-of-core structure exceeds it).
    resident_pages: int = 8
    #: Cost of a page fault (disk read), in simulated cycles.
    fault_cycles: float = 50_000.0


@dataclass
class PagerStats:
    accesses: int = 0
    faults: int = 0
    evictions: int = 0

    @property
    def fault_rate(self) -> float:
        return self.faults / self.accesses if self.accesses else 0.0


class Pager:
    """LRU page-frame manager charging disk latency per fault."""

    def __init__(self, config: PagerConfig | None = None) -> None:
        self.config = config or PagerConfig()
        if self.config.page_size & (self.config.page_size - 1):
            raise ValueError("page size must be a power of two")
        if self.config.resident_pages < 1:
            raise ValueError("need at least one resident page")
        self._shift = self.config.page_size.bit_length() - 1
        #: page number -> None, ordered by recency (OrderedDict as LRU).
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.stats = PagerStats()

    def page_of(self, address: int) -> int:
        return address >> self._shift

    def access(self, address: int) -> float:
        """Touch ``address``; returns the fault latency charged (0 if hit)."""
        page = address >> self._shift
        stats = self.stats
        stats.accesses += 1
        resident = self._resident
        if page in resident:
            resident.move_to_end(page)
            return 0.0
        stats.faults += 1
        if len(resident) >= self.config.resident_pages:
            resident.popitem(last=False)
            stats.evictions += 1
        resident[page] = None
        return self.config.fault_cycles

    def resident_count(self) -> int:
        return len(self._resident)

    def is_resident(self, address: int) -> bool:
        return (address >> self._shift) in self._resident
