"""Paging extension: memory forwarding for out-of-core data (Section 2.2).

The paper claims its optimizations extend past caches to the disk level;
this subpackage provides the paging substrate and the out-of-core list
linearization experiment that demonstrates it.
"""

from repro.vm.out_of_core import (
    OutOfCoreResult,
    PagedMachine,
    run_out_of_core_experiment,
)
from repro.vm.paging import Pager, PagerConfig, PagerStats

__all__ = [
    "OutOfCoreResult",
    "PagedMachine",
    "Pager",
    "PagerConfig",
    "PagerStats",
    "run_out_of_core_experiment",
]
