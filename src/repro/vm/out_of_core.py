"""Out-of-core list linearization: relocation beats the disk, too.

The experiment builds a large linked list whose nodes are scattered over
many more pages than fit in memory, then traverses it repeatedly through
the paging layer.  Each traversal of the scattered list touches pages in
random order -- nearly every node is a page fault.  After linearization
into a contiguous pool, the same traversal sweeps a handful of pages
sequentially.

Everything runs on the ordinary :class:`~repro.core.machine.Machine`
(forwarding, caches, timing); the pager adds its fault cost on top of
each reference's final address.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine import Machine, NULL
from repro.core.relocate import list_linearize
from repro.runtime.rng import DeterministicRNG
from repro.vm.paging import Pager, PagerConfig


@dataclass
class OutOfCoreResult:
    label: str
    cycles: float
    page_faults: int
    checksum: int


class PagedMachine:
    """A Machine whose references also pass through a pager."""

    def __init__(self, machine: Machine, pager: Pager) -> None:
        self.machine = machine
        self.pager = pager

    def load(self, address: int, size: int = 8) -> int:
        value = self.machine.load(address, size)
        # Page cost applies to the final (possibly forwarded) address.
        final = address
        if self.machine.memory.read_fbit(address & ~7):
            from repro.core.pointer_ops import final_address
            final = final_address(self.machine, address)
        fault = self.pager.access(final)
        if fault:
            self.machine.timing.stall(fault, "load")
        return value

    def store(self, address: int, value: int, size: int = 8) -> None:
        self.machine.store(address, value, size)
        fault = self.pager.access(address)
        if fault:
            self.machine.timing.stall(fault, "store")


def _build_scattered_list(machine: Machine, rng: DeterministicRNG,
                          nodes: int, span_pages: int, page_size: int) -> int:
    """Nodes placed at random offsets across a wide heap span."""
    head_handle = machine.malloc(8)
    span = machine.malloc(span_pages * page_size, align=page_size)
    used: set[int] = set()
    slot = head_handle
    for value in range(nodes):
        while True:
            offset = rng.randint(span_pages * page_size // 16) * 16
            if offset not in used:
                used.add(offset)
                break
        node = span + offset
        machine.store(node, value)
        machine.store(slot, node)
        slot = node + 8
    machine.store(slot, NULL)
    return head_handle


def _traverse(paged: PagedMachine, head_handle: int) -> int:
    total = 0
    node = paged.load(head_handle)
    while node != NULL:
        total += paged.load(node)
        node = paged.load(node + 8)
    return total


def run_out_of_core_experiment(
    nodes: int = 300,
    span_pages: int = 64,
    resident_pages: int = 8,
    traversals: int = 3,
    seed: int = 1,
) -> tuple[OutOfCoreResult, OutOfCoreResult]:
    """Measure scattered vs linearized traversals through the pager.

    Returns ``(scattered, linearized)``; checksums must match.
    """
    results = []
    for optimized in (False, True):
        machine = Machine()
        pager = Pager(PagerConfig(resident_pages=resident_pages))
        paged = PagedMachine(machine, pager)
        rng = DeterministicRNG(seed)
        head = _build_scattered_list(
            machine, rng, nodes, span_pages, pager.config.page_size
        )
        if optimized:
            pool = machine.create_pool(1 << 20, "ooc")
            list_linearize(machine, head, 8, 16, pool)
        pager.stats.faults = 0
        pager.stats.accesses = 0
        start = machine.cycles
        checksum = 0
        for _ in range(traversals):
            checksum += _traverse(paged, head)
        results.append(
            OutOfCoreResult(
                label="linearized" if optimized else "scattered",
                cycles=machine.cycles - start,
                page_faults=pager.stats.faults,
                checksum=checksum,
            )
        )
    return results[0], results[1]


def main() -> None:  # pragma: no cover - CLI entry
    scattered, linearized = run_out_of_core_experiment()
    for result in (scattered, linearized):
        print(
            f"{result.label:11s} cycles={result.cycles:12.0f} "
            f"page faults={result.page_faults:6d}"
        )
    print(f"speedup: {scattered.cycles / linearized.cycles:.1f}x")


if __name__ == "__main__":  # pragma: no cover
    main()
