"""User-level forwarding traps (Section 3.2).

The paper proposes a lightweight user-level trap on any forwarded access,
with two motivating tools, both implemented here:

* :class:`ForwardingProfiler` -- gather forwarding statistics to tune a
  future run ("which accesses keep hitting stale pointers?").
* :class:`PointerFixupTrap` -- repair stray pointers on the fly using
  application-specific knowledge, so the forwarding cost is paid once
  per stale pointer instead of on every dereference.

Handlers are installed with :meth:`Machine.set_trap_handler`; each
invocation costs ``MachineConfig.user_trap_cycles``, modeling a trap
comparable to informing memory operations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.core.machine import ForwardingEvent, Machine


@dataclass
class ForwardingProfile:
    """Aggregated forwarding behaviour recorded by the profiler."""

    events: int = 0
    total_hops: int = 0
    write_events: int = 0
    #: Counts keyed by initial address rounded to `granularity` bytes --
    #: a stand-in for "which static data structure" without real PCs.
    by_region: Counter = field(default_factory=Counter)

    def top_regions(self, n: int = 10) -> list[tuple[int, int]]:
        """The ``n`` regions with the most forwarded accesses."""
        return self.by_region.most_common(n)


class ForwardingProfiler:
    """Trap handler that records where forwarding happens.

    Parameters
    ----------
    granularity:
        Initial addresses are bucketed to this many bytes, grouping the
        events by object/arena rather than by individual word.
    """

    def __init__(self, granularity: int = 4096) -> None:
        if granularity <= 0 or granularity & (granularity - 1):
            raise ValueError("granularity must be a power of two")
        self._shift = granularity.bit_length() - 1
        self.profile = ForwardingProfile()

    def __call__(self, machine: Machine, event: ForwardingEvent) -> None:
        profile = self.profile
        profile.events += 1
        profile.total_hops += event.hops
        if event.is_write:
            profile.write_events += 1
        profile.by_region[event.initial_address >> self._shift] += 1


#: Application-specific callback: given the stale initial address and the
#: object's final address, update the offending pointer(s) in the
#: application's own data structures.  Returns True if anything was fixed.
FixupFn = Callable[[Machine, ForwardingEvent], bool]


class PointerFixupTrap:
    """Trap handler that repairs stray pointers using app knowledge.

    The handler delegates to an application-provided fixup function --
    only the application knows *which* of its pointers held the stale
    address (Section 3.2: "one must have application-specific knowledge
    in order to do this").
    """

    def __init__(self, fixup: FixupFn) -> None:
        self._fixup = fixup
        self.invocations = 0
        self.fixes = 0

    def __call__(self, machine: Machine, event: ForwardingEvent) -> None:
        self.invocations += 1
        if self._fixup(machine, event):
            self.fixes += 1


class ChainedTrapHandler:
    """Compose several trap handlers (e.g. profile *and* fix up)."""

    def __init__(self, *handlers: Callable[[Machine, ForwardingEvent], None]) -> None:
        self._handlers = handlers

    def __call__(self, machine: Machine, event: ForwardingEvent) -> None:
        for handler in self._handlers:
            handler(machine, event)
