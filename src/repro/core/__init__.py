"""Core mechanism: tagged memory, forwarding engine, machine facade."""
