"""Software relocation primitives, following Figure 4 of the paper.

``relocate()`` is the paper's ``Relocate()`` (Figure 4(a)): copy an object
word by word to its new home, then turn every old word into a forwarding
stub.  Crucially it first walks to the *end* of any existing forwarding
chain, so re-relocating an already-moved object appends to the chain
instead of corrupting it.

``list_linearize()`` is the paper's ``ListLinearize()`` (Figure 4(b)): walk
a linked list, relocating each node into a contiguous pool and rewriting
the predecessor's ``next`` pointer (and the list head) to the new
locations, so the *list's own* traversals never pay a forwarding hop --
only stray outside pointers do.

Both are written entirely in terms of the machine's timed operations, so
their run-time cost (the "instruction overhead" visible in Figure 5's
busy sections) falls out of the simulation rather than being estimated.
"""

from __future__ import annotations

from repro.core.machine import NULL, Machine
from repro.core.memory import WORD_SIZE
from repro.mem.pool import RelocationPool


def relocate(machine: Machine, src: int, tgt: int, nwords: int) -> None:
    """Move ``nwords`` words from ``src`` to ``tgt``; leave forwarding stubs.

    Mirrors Figure 4(a): for each word, chase any existing chain to its
    end, copy the data to the target, then atomically write the target
    address and set the forwarding bit at the chain's tail.
    """
    if src % WORD_SIZE or tgt % WORD_SIZE:
        raise ValueError("relocation source and target must be word aligned")
    if nwords <= 0:
        raise ValueError(f"nwords must be positive, got {nwords}")
    for index in range(nwords):
        old = src + index * WORD_SIZE
        new = tgt + index * WORD_SIZE
        # Append at the end of the forwarding chain (if any): loop until a
        # clear forwarding bit is read.
        while machine.read_fbit(old):
            old = machine.unforwarded_read(old)
        value = machine.unforwarded_read(old)
        machine.unforwarded_write(new, value, 0)
        machine.unforwarded_write(old, new, 1)
    machine.note_relocation(1, nwords)


def list_linearize(
    machine: Machine,
    head_handle: int,
    next_offset: int,
    node_bytes: int,
    pool: RelocationPool,
) -> tuple[int, int]:
    """Relocate a singly linked list into contiguous pool memory.

    Mirrors Figure 4(b).  ``head_handle`` is the *address of* the list
    head pointer (not its value), so the head itself can be updated to
    point at the new first node.  ``next_offset`` is the byte offset of
    the ``next`` field within a node; ``node_bytes`` the node size (a
    multiple of the word size).

    Returns ``(new_head, node_count)``.
    """
    if node_bytes % WORD_SIZE:
        raise ValueError(f"node size must be a word multiple, got {node_bytes}")
    if next_offset % WORD_SIZE or next_offset >= node_bytes:
        raise ValueError(f"bad next-pointer offset {next_offset}")
    nwords = node_bytes // WORD_SIZE
    count = 0
    pointer_slot = head_handle
    node = machine.load(head_handle)
    new_head = node
    while node != NULL:
        tgt = pool.allocate(node_bytes)
        relocate(machine, node, tgt, nwords)
        # Point the predecessor (or the head) at the node's new home, so
        # future traversals go straight to the linearized copy.
        machine.store(pointer_slot, tgt)
        if count == 0:
            new_head = tgt
        pointer_slot = tgt + next_offset
        # The relocated copy's next field still holds the *old* address of
        # the successor; read it from the new location (no forwarding).
        node = machine.load(pointer_slot)
        count += 1
    machine.note_optimizer_invocation()
    return new_head, count
