"""Exception hierarchy for the memory-forwarding simulator.

Every error raised by the simulated machine derives from
:class:`SimulationError`, so callers can fence off simulator failures from
ordinary Python errors with a single ``except`` clause.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulated machine."""


class MemoryAccessError(SimulationError):
    """An access fell outside the simulated physical address space."""

    def __init__(self, address: int, size: int = 0, reason: str = "") -> None:
        self.address = address
        self.size = size
        detail = f"address={address:#x}"
        if size:
            detail += f" size={size}"
        if reason:
            detail += f" ({reason})"
        super().__init__(f"invalid memory access: {detail}")


class AlignmentError(SimulationError):
    """An access (or relocation) violated the required alignment.

    The paper requires relocatable chunks to be word aligned (Section 2.1)
    and the simulated MIPS-like machine requires naturally aligned
    loads and stores.
    """

    def __init__(self, address: int, alignment: int) -> None:
        self.address = address
        self.alignment = alignment
        super().__init__(
            f"address {address:#x} is not aligned to {alignment} bytes"
        )


class ForwardingCycleError(SimulationError):
    """An accurate cycle check confirmed a forwarding-chain cycle.

    Per Section 3.2 of the paper, the hardware keeps a cheap hop counter
    and raises an exception when the limit is exceeded; the software
    handler then performs an accurate check.  If the chain really does
    contain a cycle, execution must be aborted -- which in this simulator
    surfaces as this exception.
    """

    def __init__(self, start_address: int, cycle_address: int) -> None:
        self.start_address = start_address
        self.cycle_address = cycle_address
        super().__init__(
            f"forwarding cycle detected: chain from {start_address:#x} "
            f"revisits {cycle_address:#x}"
        )


class HopLimitExceeded(SimulationError):
    """Internal signal: the fast hop counter overflowed.

    Raised by the hardware-level chain walker; the machine catches it and
    runs the accurate (but slow) cycle check, mirroring the exception
    handler described in Section 3.2.  Application code should never see
    this exception escape the machine.
    """

    def __init__(self, start_address: int, hops: int) -> None:
        self.start_address = start_address
        self.hops = hops
        super().__init__(
            f"forwarding hop limit exceeded after {hops} hops "
            f"starting at {start_address:#x}"
        )


class AllocationError(SimulationError):
    """The simulated heap could not satisfy an allocation request."""


class DoubleFreeError(SimulationError):
    """A simulated heap block was freed twice (or was never allocated)."""

    def __init__(self, address: int) -> None:
        self.address = address
        super().__init__(f"free of unallocated address {address:#x}")
