"""Aggregated simulation statistics.

One :class:`MachineStats` snapshot carries everything the paper's
evaluation section reports:

* graduation-slot breakdown (Figure 5),
* load miss counts split full/partial (Figure 6(a)),
* bytes moved at both memory-system interfaces (Figure 6(b)),
* forwarding frequency and per-reference latency split (Figure 10(c,d)),
* relocation and space-overhead accounting (Table 1).

Snapshots are plain data: experiments collect them, diff them, and render
them without needing the live machine.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cpu.timing import SlotBreakdown
from repro.obs.registry import GAUGE, HISTOGRAM, Snapshot

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.cache.hierarchy import MemoryHierarchy
    from repro.cpu.prefetch import SoftwarePrefetcher
    from repro.cpu.speculation import DependenceSpeculator
    from repro.cpu.timing import TimingModel


@dataclass(slots=True)
class ReferenceLatencyStats:
    """Per-reference completion-time accounting for Figure 10(d).

    ``ordinary`` sums cache hit/miss latencies of the final access;
    ``forwarding`` sums time spent dereferencing forwarding addresses
    (hop accesses plus trap overhead).
    """

    count: int = 0
    forwarded: int = 0
    ordinary_cycles: float = 0.0
    forwarding_cycles: float = 0.0

    @property
    def avg_ordinary(self) -> float:
        return self.ordinary_cycles / self.count if self.count else 0.0

    @property
    def avg_forwarding(self) -> float:
        return self.forwarding_cycles / self.count if self.count else 0.0

    @property
    def avg_total(self) -> float:
        return self.avg_ordinary + self.avg_forwarding

    @property
    def forwarded_fraction(self) -> float:
        """Fraction of references needing >= 1 hop (Figure 10(c))."""
        return self.forwarded / self.count if self.count else 0.0

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose these counters through an ``repro.obs`` registry."""
        registry.bind(f"{prefix}.count", lambda: self.count)
        registry.bind(f"{prefix}.forwarded", lambda: self.forwarded)
        registry.bind(f"{prefix}.ordinary_cycles", lambda: self.ordinary_cycles)
        registry.bind(
            f"{prefix}.forwarding_cycles", lambda: self.forwarding_cycles
        )


@dataclass(slots=True)
class RelocationStats:
    """Software-side relocation activity (Table 1)."""

    #: Calls to relocate() (one per object moved).
    relocations: int = 0
    #: Total words moved.
    words_relocated: int = 0
    #: Invocations of higher-level optimizations (e.g. list linearizations).
    optimizer_invocations: int = 0
    #: Bytes of pool space consumed by relocated copies ("Space Overhead").
    pool_bytes: int = 0


@dataclass
class MachineStats:
    """Full snapshot of one simulation run."""

    cycles: float = 0.0
    instructions: int = 0
    slots: SlotBreakdown = field(
        default_factory=lambda: SlotBreakdown(0.0, 0.0, 0.0, 0.0)
    )
    loads: ReferenceLatencyStats = field(default_factory=ReferenceLatencyStats)
    stores: ReferenceLatencyStats = field(default_factory=ReferenceLatencyStats)
    # Cache behaviour.
    l1_load_misses_full: int = 0
    l1_load_misses_partial: int = 0
    l1_store_misses_full: int = 0
    l1_store_misses_partial: int = 0
    l2_misses: int = 0
    # Bandwidth (Figure 6(b)).
    l1_l2_bytes: int = 0
    l2_mem_bytes: int = 0
    # Forwarding engine.
    forwarding_hops: int = 0
    cycle_checks: int = 0
    #: Chain-length distribution: hops -> references needing exactly that
    #: many (the paper's "chains are short" evidence, Section 5.4).
    forwarding_chain_hist: dict[int, int] = field(default_factory=dict)
    # Speculation.
    speculation_loads_checked: int = 0
    misspeculations: int = 0
    # Prefetching.
    prefetch_instructions: int = 0
    prefetch_fills: int = 0
    # Software relocation.
    relocation: RelocationStats = field(default_factory=RelocationStats)
    # Heap footprint.
    heap_high_water: int = 0
    #: Miss-path stage counters (``cache.misspath.*`` leaf name ->
    #: count).  Empty unless the run's hierarchy carried a mechanism, so
    #: baseline snapshots -- and their metric trees, dumps, and cached
    #: results -- are byte-identical to pre-misspath ones.
    misspath: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def load_misses(self) -> int:
        return self.l1_load_misses_full + self.l1_load_misses_partial

    @property
    def store_misses(self) -> int:
        return self.l1_store_misses_full + self.l1_store_misses_partial

    @property
    def total_bandwidth_bytes(self) -> int:
        return self.l1_l2_bytes + self.l2_mem_bytes

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "MachineStats") -> float:
        """Execution-time speedup of ``self`` relative to ``baseline``."""
        return baseline.cycles / self.cycles if self.cycles else 0.0

    # ------------------------------------------------------------------
    # Registry view (repro.obs)
    # ------------------------------------------------------------------
    @classmethod
    def collect(
        cls,
        *,
        timing: "TimingModel",
        hierarchy: "MemoryHierarchy",
        loads: ReferenceLatencyStats,
        stores: ReferenceLatencyStats,
        speculator: "DependenceSpeculator | None" = None,
        prefetcher: "SoftwarePrefetcher | None" = None,
        forwarding_hops: int = 0,
        cycle_checks: int = 0,
        forwarding_chain_hist: dict[int, int] | None = None,
        relocation: RelocationStats | None = None,
        heap_high_water: int = 0,
    ) -> "MachineStats":
        """Assemble a snapshot from live config-dependent components.

        The single aggregation codepath shared by :meth:`Machine.stats`
        and trace replay: config-dependent counters are read off the
        components, config-invariant ones (forwarding totals, relocation
        bookkeeping, heap footprint) come in as arguments because replay
        copies them from the capture.
        """
        miss = hierarchy.miss_classes
        traffic = hierarchy.traffic
        return cls(
            cycles=timing.cycle,
            instructions=timing.instructions,
            slots=timing.slot_breakdown(),
            loads=loads,
            stores=stores,
            l1_load_misses_full=miss.load_full,
            l1_load_misses_partial=miss.load_partial,
            l1_store_misses_full=miss.store_full,
            l1_store_misses_partial=miss.store_partial,
            l2_misses=hierarchy.l2.stats.misses,
            l1_l2_bytes=traffic.l1_l2_bytes,
            l2_mem_bytes=traffic.l2_mem_bytes,
            forwarding_hops=forwarding_hops,
            cycle_checks=cycle_checks,
            forwarding_chain_hist=(
                dict(forwarding_chain_hist) if forwarding_chain_hist else {}
            ),
            speculation_loads_checked=(
                speculator.stats.loads_checked if speculator else 0
            ),
            misspeculations=timing.misspeculations,
            prefetch_instructions=(
                prefetcher.stats.instructions_issued if prefetcher else 0
            ),
            prefetch_fills=prefetcher.stats.fills_started if prefetcher else 0,
            relocation=relocation if relocation is not None else RelocationStats(),
            heap_high_water=heap_high_water,
            misspath=(
                hierarchy.misspath.stats_dict()
                if hierarchy.misspath is not None
                else {}
            ),
        )

    def to_snapshot(self) -> Snapshot:
        """This snapshot as an ``repro.obs`` metric tree.

        Canonical dotted names: the same names a live
        :attr:`Machine.metrics <repro.core.machine.Machine.metrics>`
        registry exposes, so experiment aggregation can merge stats from
        direct runs, replays, and cached results interchangeably.
        ``heap.high_water`` is a gauge (merges by max); everything else
        is a counter.
        """
        values: dict[str, Any] = {
            "time.cycles": self.cycles,
            "core.instructions": self.instructions,
            "slots.busy": self.slots.busy,
            "slots.load_stall": self.slots.load_stall,
            "slots.store_stall": self.slots.store_stall,
            "slots.inst_stall": self.slots.inst_stall,
            "ref.load.count": self.loads.count,
            "ref.load.forwarded": self.loads.forwarded,
            "ref.load.ordinary_cycles": self.loads.ordinary_cycles,
            "ref.load.forwarding_cycles": self.loads.forwarding_cycles,
            "ref.store.count": self.stores.count,
            "ref.store.forwarded": self.stores.forwarded,
            "ref.store.ordinary_cycles": self.stores.ordinary_cycles,
            "ref.store.forwarding_cycles": self.stores.forwarding_cycles,
            "cache.l1.miss.load_full": self.l1_load_misses_full,
            "cache.l1.miss.load_partial": self.l1_load_misses_partial,
            "cache.l1.miss.store_full": self.l1_store_misses_full,
            "cache.l1.miss.store_partial": self.l1_store_misses_partial,
            "cache.l2.miss.total": self.l2_misses,
            "bw.l1_l2.bytes": self.l1_l2_bytes,
            "bw.l2_mem.bytes": self.l2_mem_bytes,
            "fwd.hops": self.forwarding_hops,
            "fwd.cycle_checks": self.cycle_checks,
            "fwd.chain_length": dict(self.forwarding_chain_hist),
            "spec.loads_checked": self.speculation_loads_checked,
            "spec.misspeculations": self.misspeculations,
            "prefetch.instructions": self.prefetch_instructions,
            "prefetch.fills": self.prefetch_fills,
            "reloc.count": self.relocation.relocations,
            "reloc.words": self.relocation.words_relocated,
            "reloc.optimizer_invocations": self.relocation.optimizer_invocations,
            "reloc.pool_bytes": self.relocation.pool_bytes,
            "heap.high_water": self.heap_high_water,
        }
        for key, count in self.misspath.items():
            values[f"cache.misspath.{key}"] = count
        return Snapshot(
            values,
            {"heap.high_water": GAUGE, "fwd.chain_length": HISTOGRAM},
        )

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot) -> "MachineStats":
        """Inverse of :meth:`to_snapshot` (missing names default to 0)."""
        get = snapshot.get
        return cls(
            cycles=get("time.cycles", 0.0),
            instructions=int(get("core.instructions", 0)),
            slots=SlotBreakdown(
                busy=get("slots.busy", 0.0),
                load_stall=get("slots.load_stall", 0.0),
                store_stall=get("slots.store_stall", 0.0),
                inst_stall=get("slots.inst_stall", 0.0),
            ),
            loads=ReferenceLatencyStats(
                count=int(get("ref.load.count", 0)),
                forwarded=int(get("ref.load.forwarded", 0)),
                ordinary_cycles=get("ref.load.ordinary_cycles", 0.0),
                forwarding_cycles=get("ref.load.forwarding_cycles", 0.0),
            ),
            stores=ReferenceLatencyStats(
                count=int(get("ref.store.count", 0)),
                forwarded=int(get("ref.store.forwarded", 0)),
                ordinary_cycles=get("ref.store.ordinary_cycles", 0.0),
                forwarding_cycles=get("ref.store.forwarding_cycles", 0.0),
            ),
            l1_load_misses_full=int(get("cache.l1.miss.load_full", 0)),
            l1_load_misses_partial=int(get("cache.l1.miss.load_partial", 0)),
            l1_store_misses_full=int(get("cache.l1.miss.store_full", 0)),
            l1_store_misses_partial=int(get("cache.l1.miss.store_partial", 0)),
            l2_misses=int(get("cache.l2.miss.total", 0)),
            l1_l2_bytes=int(get("bw.l1_l2.bytes", 0)),
            l2_mem_bytes=int(get("bw.l2_mem.bytes", 0)),
            forwarding_hops=int(get("fwd.hops", 0)),
            cycle_checks=int(get("fwd.cycle_checks", 0)),
            forwarding_chain_hist={
                int(hops): int(count)
                for hops, count in (get("fwd.chain_length", None) or {}).items()
            },
            speculation_loads_checked=int(get("spec.loads_checked", 0)),
            misspeculations=int(get("spec.misspeculations", 0)),
            prefetch_instructions=int(get("prefetch.instructions", 0)),
            prefetch_fills=int(get("prefetch.fills", 0)),
            relocation=RelocationStats(
                relocations=int(get("reloc.count", 0)),
                words_relocated=int(get("reloc.words", 0)),
                optimizer_invocations=int(get("reloc.optimizer_invocations", 0)),
                pool_bytes=int(get("reloc.pool_bytes", 0)),
            ),
            heap_high_water=int(get("heap.high_water", 0)),
            misspath={
                name[len("cache.misspath."):]: int(value)
                for name, value in snapshot.items()
                if name.startswith("cache.misspath.")
            },
        )

    def dump(self) -> dict[str, Any]:
        """Lossless nested-dict form (JSON-safe, exact float round trip).

        Unlike :meth:`to_dict` (a flattened report view), this preserves
        the full structure so :meth:`parse` reconstructs an *equal*
        snapshot -- the contract the ``repro.trace`` result cache relies
        on.
        """
        payload: dict[str, Any] = {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "slots": {
                "busy": self.slots.busy,
                "load_stall": self.slots.load_stall,
                "store_stall": self.slots.store_stall,
                "inst_stall": self.slots.inst_stall,
            },
            "loads": asdict(self.loads),
            "stores": asdict(self.stores),
            "l1_load_misses_full": self.l1_load_misses_full,
            "l1_load_misses_partial": self.l1_load_misses_partial,
            "l1_store_misses_full": self.l1_store_misses_full,
            "l1_store_misses_partial": self.l1_store_misses_partial,
            "l2_misses": self.l2_misses,
            "l1_l2_bytes": self.l1_l2_bytes,
            "l2_mem_bytes": self.l2_mem_bytes,
            "forwarding_hops": self.forwarding_hops,
            "cycle_checks": self.cycle_checks,
            "forwarding_chain_hist": {
                str(hops): count
                for hops, count in sorted(self.forwarding_chain_hist.items())
            },
            "speculation_loads_checked": self.speculation_loads_checked,
            "misspeculations": self.misspeculations,
            "prefetch_instructions": self.prefetch_instructions,
            "prefetch_fills": self.prefetch_fills,
            "relocation": asdict(self.relocation),
            "heap_high_water": self.heap_high_water,
        }
        if self.misspath:
            # Only present for mechanism-carrying runs: baseline dumps
            # (and their cached-result files) stay byte-identical to
            # pre-misspath ones.
            payload["misspath"] = {
                key: self.misspath[key] for key in sorted(self.misspath)
            }
        return payload

    @classmethod
    def parse(cls, data: dict[str, Any]) -> "MachineStats":
        """Inverse of :meth:`dump`."""
        payload = dict(data)
        payload["slots"] = SlotBreakdown(**payload["slots"])
        payload["loads"] = ReferenceLatencyStats(**payload["loads"])
        payload["stores"] = ReferenceLatencyStats(**payload["stores"])
        payload["relocation"] = RelocationStats(**payload["relocation"])
        # JSON stringifies the histogram keys; pre-PR4 dumps lack the
        # field entirely.
        payload["forwarding_chain_hist"] = {
            int(hops): count
            for hops, count in payload.get("forwarding_chain_hist", {}).items()
        }
        # Absent from baseline and pre-PR6 dumps.
        payload["misspath"] = {
            key: int(count)
            for key, count in payload.get("misspath", {}).items()
        }
        return cls(**payload)

    def to_dict(self) -> dict[str, Any]:
        """Flatten to primitives for reports and JSON dumps."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "busy_slots": self.slots.busy,
            "load_stall_slots": self.slots.load_stall,
            "store_stall_slots": self.slots.store_stall,
            "inst_stall_slots": self.slots.inst_stall,
            "loads": self.loads.count,
            "stores": self.stores.count,
            "forwarded_loads": self.loads.forwarded,
            "forwarded_stores": self.stores.forwarded,
            "load_misses_full": self.l1_load_misses_full,
            "load_misses_partial": self.l1_load_misses_partial,
            "store_misses_full": self.l1_store_misses_full,
            "store_misses_partial": self.l1_store_misses_partial,
            "l2_misses": self.l2_misses,
            "l1_l2_bytes": self.l1_l2_bytes,
            "l2_mem_bytes": self.l2_mem_bytes,
            "forwarding_hops": self.forwarding_hops,
            "misspeculations": self.misspeculations,
            "prefetch_instructions": self.prefetch_instructions,
            "prefetch_fills": self.prefetch_fills,
            "relocations": self.relocation.relocations,
            "words_relocated": self.relocation.words_relocated,
            "optimizer_invocations": self.relocation.optimizer_invocations,
            "pool_bytes": self.relocation.pool_bytes,
            "heap_high_water": self.heap_high_water,
        }
