"""Aggregated simulation statistics.

One :class:`MachineStats` snapshot carries everything the paper's
evaluation section reports:

* graduation-slot breakdown (Figure 5),
* load miss counts split full/partial (Figure 6(a)),
* bytes moved at both memory-system interfaces (Figure 6(b)),
* forwarding frequency and per-reference latency split (Figure 10(c,d)),
* relocation and space-overhead accounting (Table 1).

Snapshots are plain data: experiments collect them, diff them, and render
them without needing the live machine.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.cpu.timing import SlotBreakdown


@dataclass(slots=True)
class ReferenceLatencyStats:
    """Per-reference completion-time accounting for Figure 10(d).

    ``ordinary`` sums cache hit/miss latencies of the final access;
    ``forwarding`` sums time spent dereferencing forwarding addresses
    (hop accesses plus trap overhead).
    """

    count: int = 0
    forwarded: int = 0
    ordinary_cycles: float = 0.0
    forwarding_cycles: float = 0.0

    @property
    def avg_ordinary(self) -> float:
        return self.ordinary_cycles / self.count if self.count else 0.0

    @property
    def avg_forwarding(self) -> float:
        return self.forwarding_cycles / self.count if self.count else 0.0

    @property
    def avg_total(self) -> float:
        return self.avg_ordinary + self.avg_forwarding

    @property
    def forwarded_fraction(self) -> float:
        """Fraction of references needing >= 1 hop (Figure 10(c))."""
        return self.forwarded / self.count if self.count else 0.0


@dataclass(slots=True)
class RelocationStats:
    """Software-side relocation activity (Table 1)."""

    #: Calls to relocate() (one per object moved).
    relocations: int = 0
    #: Total words moved.
    words_relocated: int = 0
    #: Invocations of higher-level optimizations (e.g. list linearizations).
    optimizer_invocations: int = 0
    #: Bytes of pool space consumed by relocated copies ("Space Overhead").
    pool_bytes: int = 0


@dataclass
class MachineStats:
    """Full snapshot of one simulation run."""

    cycles: float = 0.0
    instructions: int = 0
    slots: SlotBreakdown = field(
        default_factory=lambda: SlotBreakdown(0.0, 0.0, 0.0, 0.0)
    )
    loads: ReferenceLatencyStats = field(default_factory=ReferenceLatencyStats)
    stores: ReferenceLatencyStats = field(default_factory=ReferenceLatencyStats)
    # Cache behaviour.
    l1_load_misses_full: int = 0
    l1_load_misses_partial: int = 0
    l1_store_misses_full: int = 0
    l1_store_misses_partial: int = 0
    l2_misses: int = 0
    # Bandwidth (Figure 6(b)).
    l1_l2_bytes: int = 0
    l2_mem_bytes: int = 0
    # Forwarding engine.
    forwarding_hops: int = 0
    cycle_checks: int = 0
    # Speculation.
    speculation_loads_checked: int = 0
    misspeculations: int = 0
    # Prefetching.
    prefetch_instructions: int = 0
    prefetch_fills: int = 0
    # Software relocation.
    relocation: RelocationStats = field(default_factory=RelocationStats)
    # Heap footprint.
    heap_high_water: int = 0

    # ------------------------------------------------------------------
    @property
    def load_misses(self) -> int:
        return self.l1_load_misses_full + self.l1_load_misses_partial

    @property
    def store_misses(self) -> int:
        return self.l1_store_misses_full + self.l1_store_misses_partial

    @property
    def total_bandwidth_bytes(self) -> int:
        return self.l1_l2_bytes + self.l2_mem_bytes

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "MachineStats") -> float:
        """Execution-time speedup of ``self`` relative to ``baseline``."""
        return baseline.cycles / self.cycles if self.cycles else 0.0

    def dump(self) -> dict[str, Any]:
        """Lossless nested-dict form (JSON-safe, exact float round trip).

        Unlike :meth:`to_dict` (a flattened report view), this preserves
        the full structure so :meth:`parse` reconstructs an *equal*
        snapshot -- the contract the ``repro.trace`` result cache relies
        on.
        """
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "slots": {
                "busy": self.slots.busy,
                "load_stall": self.slots.load_stall,
                "store_stall": self.slots.store_stall,
                "inst_stall": self.slots.inst_stall,
            },
            "loads": asdict(self.loads),
            "stores": asdict(self.stores),
            "l1_load_misses_full": self.l1_load_misses_full,
            "l1_load_misses_partial": self.l1_load_misses_partial,
            "l1_store_misses_full": self.l1_store_misses_full,
            "l1_store_misses_partial": self.l1_store_misses_partial,
            "l2_misses": self.l2_misses,
            "l1_l2_bytes": self.l1_l2_bytes,
            "l2_mem_bytes": self.l2_mem_bytes,
            "forwarding_hops": self.forwarding_hops,
            "cycle_checks": self.cycle_checks,
            "speculation_loads_checked": self.speculation_loads_checked,
            "misspeculations": self.misspeculations,
            "prefetch_instructions": self.prefetch_instructions,
            "prefetch_fills": self.prefetch_fills,
            "relocation": asdict(self.relocation),
            "heap_high_water": self.heap_high_water,
        }

    @classmethod
    def parse(cls, data: dict[str, Any]) -> "MachineStats":
        """Inverse of :meth:`dump`."""
        payload = dict(data)
        payload["slots"] = SlotBreakdown(**payload["slots"])
        payload["loads"] = ReferenceLatencyStats(**payload["loads"])
        payload["stores"] = ReferenceLatencyStats(**payload["stores"])
        payload["relocation"] = RelocationStats(**payload["relocation"])
        return cls(**payload)

    def to_dict(self) -> dict[str, Any]:
        """Flatten to primitives for reports and JSON dumps."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "busy_slots": self.slots.busy,
            "load_stall_slots": self.slots.load_stall,
            "store_stall_slots": self.slots.store_stall,
            "inst_stall_slots": self.slots.inst_stall,
            "loads": self.loads.count,
            "stores": self.stores.count,
            "forwarded_loads": self.loads.forwarded,
            "forwarded_stores": self.stores.forwarded,
            "load_misses_full": self.l1_load_misses_full,
            "load_misses_partial": self.l1_load_misses_partial,
            "store_misses_full": self.l1_store_misses_full,
            "store_misses_partial": self.l1_store_misses_partial,
            "l2_misses": self.l2_misses,
            "l1_l2_bytes": self.l1_l2_bytes,
            "l2_mem_bytes": self.l2_mem_bytes,
            "forwarding_hops": self.forwarding_hops,
            "misspeculations": self.misspeculations,
            "prefetch_instructions": self.prefetch_instructions,
            "prefetch_fills": self.prefetch_fills,
            "relocations": self.relocation.relocations,
            "words_relocated": self.relocation.words_relocated,
            "optimizer_invocations": self.relocation.optimizer_invocations,
            "pool_bytes": self.relocation.pool_bytes,
            "heap_high_water": self.heap_high_water,
        }
