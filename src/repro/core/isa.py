"""The paper's ISA extensions (Figure 3), under their published names.

The machine exposes the three new instructions as plain methods
(:meth:`~repro.core.machine.Machine.read_fbit` and friends).  This module
wraps them in an object using the paper's exact mnemonics, which keeps
example code and fidelity tests side-by-side readable against Figure 3:

=====================  =========================================================
Instruction            Semantics
=====================  =========================================================
``Read_FBit(addr)``    Return the forwarding bit of the word at ``addr``.
``Unforwarded_Read``   Read a word with the forwarding mechanism disabled --
                       i.e. return the forwarding address itself, not the data
                       it points to.
``Unforwarded_Write``  Write a word *and* its forwarding bit atomically, with
                       the forwarding mechanism disabled.
=====================  =========================================================

Normal ``Read``/``Write`` (the forwarding-enabled references every ordinary
instruction performs) are included for completeness.
"""

from __future__ import annotations

from repro.core.machine import Machine
from repro.core.memory import WORD_SIZE


class ISAExtensions:
    """Figure 3's instruction set, bound to one simulated machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    # -- new instructions ------------------------------------------------
    def Read_FBit(self, address: int) -> int:
        """Return the forwarding bit (0/1) of the word at ``address``."""
        return self.machine.read_fbit(address)

    def Unforwarded_Read(self, address: int) -> int:
        """Read the raw word at ``address``, ignoring its forwarding bit."""
        return self.machine.unforwarded_read(address)

    def Unforwarded_Write(self, address: int, value: int, fbit: int) -> None:
        """Atomically write ``value`` and ``fbit`` at ``address``."""
        self.machine.unforwarded_write(address, value, fbit)

    # -- ordinary references (forwarding enabled) -------------------------
    def Read(self, address: int, size: int = WORD_SIZE) -> int:
        """A normal load: follows forwarding chains to the final address."""
        return self.machine.load(address, size)

    def Write(self, address: int, value: int, size: int = WORD_SIZE) -> None:
        """A normal store: follows forwarding chains to the final address."""
        self.machine.store(address, value, size)
