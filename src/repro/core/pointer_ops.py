"""Final-address pointer comparison (Section 2.1 / Section 3.3).

With memory forwarding, two pointers holding *different* bit patterns may
name the same object: one may be a stale pointer to the old location whose
words now forward to the new one.  Explicit pointer comparisons in the
source program must therefore compare **final addresses**.

The hardware does not do this automatically; the paper's compiler pass
replaces affected comparisons with an explicit lookup sequence built from
the ISA extensions.  These functions are that sequence -- every
``Read_FBit``/``Unforwarded_Read`` they issue is a timed instruction, so
the software overhead the paper measures (and reports as unproblematic)
is charged faithfully.
"""

from __future__ import annotations

from repro.core.machine import NULL, Machine
from repro.core.memory import WORD_OFFSET_MASK


def final_address(machine: Machine, pointer: int) -> int:
    """Resolve ``pointer`` to its final address using the ISA extensions.

    Software chain walk: test the forwarding bit; while set, replace the
    word address with the forwarding address it holds.  The byte offset
    within the word is preserved, as in a hardware dereference.
    """
    if pointer == NULL:
        return NULL
    offset = pointer & WORD_OFFSET_MASK
    word = pointer - offset
    while machine.read_fbit(word):
        word = machine.unforwarded_read(word)
    return word | offset

def ptr_eq(machine: Machine, left: int, right: int) -> bool:
    """Compare two pointers by final address (the safe ``==``).

    The fast path -- equal bit patterns -- needs no lookups and costs one
    compare instruction, matching what the compiler would emit.
    """
    machine.execute(1)
    if left == right:
        return True
    return final_address(machine, left) == final_address(machine, right)


def ptr_ne(machine: Machine, left: int, right: int) -> bool:
    """Safe ``!=`` on pointers (final-address comparison)."""
    return not ptr_eq(machine, left, right)
