"""The forwarding engine: dereferencing chains of forwarding addresses.

This is the core hardware mechanism of the paper (Sections 2.1 and 3.2).
When a data reference touches a word whose forwarding bit is set, the word's
contents are interpreted as a *forwarding address* and the access is
re-launched there; this repeats until a word with a clear bit is reached.

Two addresses therefore matter for every reference:

* the **initial address** -- the first location accessed, and
* the **final address** -- the location the data actually lives at.

For non-relocated data the two are equal, which is the expected common case:
forwarding exists as a safety net, not a fast path.

Cycle handling follows the paper exactly: the hardware keeps only a cheap
hop counter during the walk, and when the counter exceeds a limit it raises
an exception whose (software) handler performs an accurate cycle check.  A
false alarm resets the counter and resumes; a genuine cycle aborts the
program (:class:`~repro.core.errors.ForwardingCycleError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import ForwardingCycleError
from repro.core.memory import TaggedMemory, WORD_OFFSET_MASK

#: Default fast hop-counter limit before the cycle-check exception fires.
#: Real chains produced by repeated relocation are short (one hop per
#: relocation generation), so a small limit keeps the fast path cheap.
DEFAULT_HOP_LIMIT = 16

#: Called once per forwarding hop with the word address being dereferenced.
#: The machine layer uses this to charge a cache access for the hop (which
#: is how forwarding pollutes the cache, per Section 5.4).
HopCallback = Callable[[int], None]


@dataclass(slots=True)
class ForwardingStats:
    """Counters describing how often the safety net actually fired."""

    #: Total references resolved through the engine.
    references: int = 0
    #: References that needed at least one hop.
    forwarded_references: int = 0
    #: Total hops across all references.
    total_hops: int = 0
    #: Histogram: hops -> number of references that needed exactly that many.
    hop_histogram: dict[int, int] = field(default_factory=dict)
    #: Times the fast hop counter overflowed and the accurate check ran.
    cycle_check_invocations: int = 0
    #: Accurate checks that found a genuine cycle (execution aborts).
    cycles_detected: int = 0

    def record(self, hops: int) -> None:
        self.references += 1
        if hops:
            self.forwarded_references += 1
            self.total_hops += hops
            self.hop_histogram[hops] = self.hop_histogram.get(hops, 0) + 1

    def register_metrics(self, registry, prefix: str = "fwd") -> None:
        """Expose these counters through an ``repro.obs`` registry."""
        registry.bind(f"{prefix}.references", lambda: self.references)
        registry.bind(f"{prefix}.forwarded", lambda: self.forwarded_references)
        registry.bind(f"{prefix}.hops", lambda: self.total_hops)
        registry.bind(
            f"{prefix}.cycle_checks", lambda: self.cycle_check_invocations
        )
        registry.bind(f"{prefix}.cycles_detected", lambda: self.cycles_detected)
        # The paper's "chains are short" claim (Section 5.4) is only
        # checkable from output if the full distribution survives into
        # manifests, hence a histogram rather than the mean hops/chase.
        registry.bind(
            f"{prefix}.chain_length",
            lambda: self.hop_histogram,
            kind="histogram",
        )

    def merge(self, other: "ForwardingStats") -> None:
        self.references += other.references
        self.forwarded_references += other.forwarded_references
        self.total_hops += other.total_hops
        for hops, count in other.hop_histogram.items():
            self.hop_histogram[hops] = self.hop_histogram.get(hops, 0) + count
        self.cycle_check_invocations += other.cycle_check_invocations
        self.cycles_detected += other.cycles_detected


class ForwardingEngine:
    """Walks forwarding chains to turn initial addresses into final ones.

    Parameters
    ----------
    memory:
        The tagged memory holding data words and forwarding bits.
    hop_limit:
        Fast hop-counter limit.  Exceeding it triggers the accurate cycle
        check (Section 3.2), not an immediate failure.
    """

    __slots__ = ("memory", "hop_limit", "stats", "events")

    def __init__(self, memory: TaggedMemory, hop_limit: int = DEFAULT_HOP_LIMIT) -> None:
        if hop_limit < 1:
            raise ValueError(f"hop limit must be >= 1, got {hop_limit}")
        self.memory = memory
        self.hop_limit = hop_limit
        self.stats = ForwardingStats()
        #: Optional :class:`repro.obs.events.EventLog`; when set, every
        #: chain walk emits a ``fwd.walk`` event.  The unforwarded early
        #: return below never touches it, so the common case stays cheap.
        self.events = None

    def resolve(self, address: int, on_hop: HopCallback | None = None) -> tuple[int, int]:
        """Resolve ``address`` to its final address.

        Returns ``(final_address, hops)``.  ``on_hop`` is invoked once per
        hop with the word address whose forwarding pointer was read, letting
        the caller model the cost (and cache pollution) of touching the old
        location.

        The byte offset within a word is preserved across hops: a sub-word
        access to a forwarded word lands at the same offset within the
        relocated word (Section 2.1's 32-bit load example).
        """
        memory = self.memory
        offset = address & WORD_OFFSET_MASK
        word_address = address - offset
        # Fast path: unforwarded word.  This must stay cheap -- it is on
        # every simulated load and store.
        fbits = memory._fbits
        words = memory._words
        index = word_address >> 3
        if index < 0 or index >= memory.word_count:
            # Delegate bounds error reporting to the raw layer.
            memory.read_fbit(word_address)
        if not fbits[index]:
            self.stats.references += 1
            return address, 0

        # `counter` models the cheap hardware hop counter (reset on a false
        # alarm, per the paper's handler); `hops` is the true total used for
        # statistics and cost accounting.
        counter = 0
        hops = 0
        while fbits[index]:
            if on_hop is not None:
                on_hop(index << 3)
            word_address = words[index]
            index = word_address >> 3
            if index < 0 or index >= memory.word_count:
                memory.read_fbit(word_address)
            hops += 1
            counter += 1
            if counter > self.hop_limit:
                # Fast counter overflowed: run the accurate check the
                # software exception handler would perform.
                self.stats.cycle_check_invocations += 1
                self._accurate_cycle_check(address)
                # False alarm: the chain is long but acyclic.  Reset the
                # counter (exactly what the paper's handler does) and keep
                # walking without re-triggering until another full limit.
                counter = 0
        final = word_address | offset
        self.stats.record(hops)
        if self.events is not None:
            self.events.emit("fwd.walk", initial=address, final=final, hops=hops)
        return final, hops

    def _accurate_cycle_check(self, start_address: int) -> None:
        """Accurate (set-based) cycle detection from ``start_address``.

        Raises :class:`ForwardingCycleError` if the chain revisits a word.
        This is the slow check the paper relegates to an exception handler.
        """
        memory = self.memory
        seen: set[int] = set()
        word_address = start_address & ~WORD_OFFSET_MASK
        while memory.read_fbit(word_address):
            if word_address in seen:
                self.stats.cycles_detected += 1
                raise ForwardingCycleError(start_address, word_address)
            seen.add(word_address)
            word_address = memory.read_word(word_address) & ~WORD_OFFSET_MASK

    def chain(self, address: int, max_length: int = 1 << 20) -> list[int]:
        """Return the full chain of word addresses from ``address``.

        The result starts with the initial word address and ends with the
        final (unforwarded) word address.  Used by the forwarding-aware
        deallocator (Section 3.3) and by diagnostics; raises
        :class:`ForwardingCycleError` on a cycle.
        """
        memory = self.memory
        word_address = address & ~WORD_OFFSET_MASK
        out = [word_address]
        seen = {word_address}
        while memory.read_fbit(word_address):
            word_address = memory.read_word(word_address) & ~WORD_OFFSET_MASK
            if word_address in seen:
                raise ForwardingCycleError(address, word_address)
            seen.add(word_address)
            out.append(word_address)
            if len(out) > max_length:
                raise ForwardingCycleError(address, word_address)
        return out
