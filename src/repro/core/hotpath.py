"""Fused per-reference cost kernel shared by Machine and trace replay.

One simulated data reference on the general path crosses eight Python
function boundaries (execute, resolve, access, lookup, MSHR, fill,
completes, speculator) -- and at the reference volumes of the Figure 5
sweep those call frames, not the arithmetic, dominate wall-clock time.
:func:`make_reference_kernel` builds two closures, ``load_ref`` and
``store_ref``, that perform the *entire* cost accounting of one
unforwarded reference -- instruction graduation, MSHR combining, L1/L2
probe and fill, writeback traffic, stall attribution, and dependence
speculation -- in a single function body with every hot object bound to
a closure variable.  The L1 set is probed exactly once per reference
and the result is shared by the hit, partial-miss and full-miss arms.

With ``bare=True`` the closures charge the cost of a word-granular
``Unforwarded_Read``/``Unforwarded_Write``/``Read_FBit`` instead: the
same hierarchy walk and stall attribution, but no per-reference latency
statistics, no forwarding-reference count and no dependence-speculation
bookkeeping -- exactly what the general path's ``execute + access +
*_completes`` sequence does for those instructions.

The kernel is a pure transcription of the general path, operation for
operation: every float addition happens in the same order and on the
same values as the layered code in :mod:`repro.cache.hierarchy`,
:mod:`repro.cpu.timing` and :mod:`repro.cpu.speculation`, so the
resulting :class:`~repro.core.stats.MachineStats` are bit-identical.
``tests/integration/test_fastpath_parity.py`` enforces that contract for
every application and variant.  The kernel handles only the common case
its callers gate on: an unforwarded reference (forwarding bit clear) to
an in-range address.  Observers, forwarding hops, and traps never reach
it.

Objects that are *replaced* rather than mutated by
``MemoryHierarchy.reset_stats`` (``traffic``, ``miss_classes``) are
deliberately re-fetched from the hierarchy on each miss instead of being
closed over.
"""

from __future__ import annotations

from typing import Callable

#: Replacement-mode constants, mirrored from repro.cache.cache.
_LRU = 0
_RANDOM = 2

#: Sentinel for "no pending entry" in the MSHR / store-buffer floors.
_INF = float("inf")


def make_reference_kernel(
    hierarchy,
    timing,
    speculator,
    load_latency,
    store_latency,
    forwarding_stats,
) -> tuple[Callable[..., None], Callable[..., None]]:
    """Build ``(load_ref, store_ref)`` bound to one set of components.

    Each closure takes a byte address and charges the full cost of one
    unforwarded load/store against the supplied hierarchy, timing model,
    speculator (may be ``None``) and latency/forwarding counters; with
    ``bare=True`` it charges an ``Unforwarded_Read``/``Write`` instead
    (see module docstring).

    With a miss-path mechanism enabled the fused transcription below
    would need the stage pipeline inlined too; instead the kernel gates
    off to closures over the *layered* components -- same call
    signature, same bit-exact results, general-path speed.  The default
    configuration (``mechanism="none"``) keeps the fused kernel, so the
    baseline sweep's throughput is untouched.
    """
    if hierarchy.misspath is not None:
        return _make_general_backed_kernel(
            hierarchy,
            timing,
            speculator,
            load_latency,
            store_latency,
            forwarding_stats,
        )
    cfg = hierarchy.config
    l1 = hierarchy.l1
    l2 = hierarchy.l2
    mshr = hierarchy.mshr

    tags = l1._tags
    dirty = l1._dirty
    set_len = l1._set_len
    l1_stats = l1.stats
    line_shift = l1.line_shift
    set_mask = l1._set_mask
    assoc = l1.associativity
    l1_mode = l1._mode

    l2_tags = l2._tags
    l2_dirty = l2._dirty
    l2_set_len = l2._set_len
    l2_stats = l2.stats
    l2_shift = l2.line_shift
    l2_set_mask = l2._set_mask
    l2_assoc = l2.associativity
    l2_mode = l2._mode
    l2_fill = l2.fill

    inflight = mshr._inflight
    inflight_get = inflight.get
    mshr_stats = mshr.stats
    mshr_capacity = mshr.capacity

    line_size = cfg.line_size
    l2_line_size = max(cfg.l2_line_size, cfg.line_size)
    #: L1 lines per L2 line, for the inclusion-invalidation walk.
    inclusion_count = l2_line_size // line_size
    l1_hit_latency = cfg.l1_hit_latency
    # Pure functions of the config; evaluating the properties once gives
    # the exact floats the general path recomputes per miss.
    l2_fill_latency = cfg.l2_fill_latency
    full_miss_latency = cfg.full_miss_latency

    ipc = timing._ipc
    inst_overhead = timing.config.inst_overhead
    ooo = timing.config.ooo_window
    depth = timing.config.store_buffer_depth
    buffer = timing._store_buffer
    buffer_append = buffer.append
    buffer_remove = buffer.remove

    if speculator is not None:
        spec_stats = speculator.stats
        by_final = speculator._by_final
        by_final_get = by_final.get
        queue = speculator._queue
        queue_append = queue.append
        queue_popleft = queue.popleft
        counts = speculator._counts
        counts_get = counts.get
        window = speculator.window
    else:
        spec_stats = by_final = by_final_get = None
        queue = queue_append = queue_popleft = counts = counts_get = None
        window = 0

    def load_ref(address: int, bare: bool = False) -> None:
        # TimingModel.execute(1), inlined.
        timing.instructions += 1
        cycle = timing.cycle + ipc
        timing.inst_stall_cycles += inst_overhead
        cycle += inst_overhead
        start = cycle
        line = address >> line_shift
        # Single L1 probe shared by the hit/partial/full-miss arms
        # (Cache.lookup, inlined).
        set_index = line & set_mask
        base = set_index * assoc
        n = set_len[set_index]
        hit = -1
        if n:
            # First two ways unrolled (the default L1 is 2-way); deeper
            # sets fall through to the loop.
            if tags[base] == line:
                hit = base
            elif n > 1:
                if tags[base + 1] == line:
                    hit = base + 1
                else:
                    for slot in range(base + 2, base + n):
                        if tags[slot] == line:
                            hit = slot
                            break
        if hit >= 0:
            if hit != base and l1_mode == _LRU:
                # Element-wise shift: sets are 2-4 ways, so moving slots
                # one by one beats slice assignment (which allocates).
                d = dirty[hit]
                slot = hit
                while slot > base:
                    tags[slot] = tags[slot - 1]
                    dirty[slot] = dirty[slot - 1]
                    slot -= 1
                tags[base] = line
                dirty[base] = d
            l1_stats.load_hits += 1
        # MSHRFile.lookup, inlined (expired entries drop as a side
        # effect, exactly as in the general path).
        line_addr = line << line_shift
        ready = inflight_get(line_addr) if inflight else None
        if ready is not None and ready <= start:
            del inflight[line_addr]
            ready = None
        if ready is not None:
            # Partial miss: combine with the outstanding fill.
            mshr_stats.combines += 1
            if hit < 0:
                l1_stats.load_misses += 1
            hierarchy.miss_classes.load_partial += 1
        elif hit >= 0:
            ready = start + l1_hit_latency
        else:
            # Full miss: MemoryHierarchy._fill_from_below, inlined.
            l1_stats.load_misses += 1
            hierarchy.miss_classes.load_full += 1
            traffic = hierarchy.traffic
            l2_line = line_addr >> l2_shift
            l2_set = l2_line & l2_set_mask
            l2_base = l2_set * l2_assoc
            n2 = l2_set_len[l2_set]
            l2_hit = -1
            if n2:
                if l2_tags[l2_base] == l2_line:
                    l2_hit = l2_base
                elif n2 > 1:
                    if l2_tags[l2_base + 1] == l2_line:
                        l2_hit = l2_base + 1
                    else:
                        for slot in range(l2_base + 2, l2_base + n2):
                            if l2_tags[slot] == l2_line:
                                l2_hit = slot
                                break
            if l2_hit >= 0:
                if l2_hit != l2_base and l2_mode == _LRU:
                    d = l2_dirty[l2_hit]
                    slot = l2_hit
                    while slot > l2_base:
                        l2_tags[slot] = l2_tags[slot - 1]
                        l2_dirty[slot] = l2_dirty[slot - 1]
                        slot -= 1
                    l2_tags[l2_base] = l2_line
                    l2_dirty[l2_base] = d
                l2_stats.load_hits += 1
                latency = l2_fill_latency
            else:
                l2_stats.load_misses += 1
                latency = full_miss_latency
                traffic.l2_mem_fill_bytes += l2_line_size
                # Cache.fill into L2, inlined; the line is known absent
                # (the probe above missed) so this is insert-with-evict.
                if n2 >= l2_assoc:
                    if l2_mode == _RANDOM:
                        state = l2._rng_state
                        state ^= (state << 13) & 0xFFFFFFFF
                        state ^= state >> 17
                        state ^= (state << 5) & 0xFFFFFFFF
                        l2._rng_state = state
                        victim = l2_base + state % n2
                    else:
                        victim = l2_base + n2 - 1
                    victim_dirty = l2_dirty[victim]
                    l2_stats.evictions += 1
                    if victim_dirty:
                        l2_stats.dirty_evictions += 1
                    ev_first = l2_tags[victim] << l2_shift >> line_shift
                    slot = victim
                    while slot > l2_base:
                        l2_tags[slot] = l2_tags[slot - 1]
                        l2_dirty[slot] = l2_dirty[slot - 1]
                        slot -= 1
                    l2_tags[l2_base] = l2_line
                    l2_dirty[l2_base] = 0
                    # Inclusion: dropping an L2 line drops every L1 line
                    # it contains (Cache.invalidate, inlined).
                    for inv_line in range(ev_first, ev_first + inclusion_count):
                        inv_set = inv_line & set_mask
                        inv_base = inv_set * assoc
                        inv_n = set_len[inv_set]
                        for slot in range(inv_base, inv_base + inv_n):
                            if tags[slot] == inv_line:
                                end = inv_base + inv_n - 1
                                while slot < end:
                                    tags[slot] = tags[slot + 1]
                                    dirty[slot] = dirty[slot + 1]
                                    slot += 1
                                set_len[inv_set] = inv_n - 1
                                break
                    if victim_dirty:
                        traffic.l2_mem_writeback_bytes += l2_line_size
                else:
                    slot = l2_base + n2
                    while slot > l2_base:
                        l2_tags[slot] = l2_tags[slot - 1]
                        l2_dirty[slot] = l2_dirty[slot - 1]
                        slot -= 1
                    l2_set_len[l2_set] = n2 + 1
                    l2_tags[l2_base] = l2_line
                    l2_dirty[l2_base] = 0
            traffic.l1_l2_fill_bytes += line_size
            # Cache.fill into L1, inlined; the line is known absent
            # (the probe above missed) so this is insert-with-evict.
            # Re-read the occupancy: the inclusion invalidations may
            # have touched this very set.
            n = set_len[set_index]
            if n >= assoc:
                if l1_mode == _RANDOM:
                    state = l1._rng_state
                    state ^= (state << 13) & 0xFFFFFFFF
                    state ^= state >> 17
                    state ^= (state << 5) & 0xFFFFFFFF
                    l1._rng_state = state
                    victim = base + state % n
                else:
                    victim = base + n - 1
                victim_dirty = dirty[victim]
                l1_stats.evictions += 1
                if victim_dirty:
                    l1_stats.dirty_evictions += 1
                ev_addr = tags[victim] << line_shift
                slot = victim
                while slot > base:
                    tags[slot] = tags[slot - 1]
                    dirty[slot] = dirty[slot - 1]
                    slot -= 1
                tags[base] = line
                dirty[base] = 0
                if victim_dirty:
                    # Write-back lands in L2 and dirties it there.
                    traffic.l1_l2_writeback_bytes += line_size
                    l2_fill(ev_addr, True)
            else:
                slot = base + n
                while slot > base:
                    tags[slot] = tags[slot - 1]
                    dirty[slot] = dirty[slot - 1]
                    slot -= 1
                set_len[set_index] = n + 1
                tags[base] = line
                dirty[base] = 0
            # MSHRFile.allocate, inlined.  The floor bound (see
            # repro.cache.mshr) skips the expiry scan when no fill can
            # have completed yet.
            if inflight and mshr._floor <= start:
                for key in [k for k, r in inflight.items() if r <= start]:
                    del inflight[key]
                mshr._floor = min(inflight.values()) if inflight else _INF
            if len(inflight) >= mshr_capacity:
                earliest = min(inflight.values())
                mshr_stats.full_stalls += 1
                mshr_stats.full_stall_cycles += earliest - start
                for key, r in list(inflight.items()):
                    if r == earliest:
                        del inflight[key]
                        break
                ready = earliest + latency
            else:
                ready = start + latency
            inflight[line_addr] = ready
            if ready < mshr._floor:
                mshr._floor = ready
            mshr_stats.allocations += 1
        # TimingModel.load_completes, inlined.
        residual = ready - start - ooo
        if residual > 0.0:
            timing.load_stall_cycles += residual
            cycle += residual
        timing.cycle = cycle
        if bare:
            return
        forwarding_stats.references += 1
        load_latency.count += 1
        load_latency.ordinary_cycles += ready - start
        # DependenceSpeculator.on_load, inlined (final == initial).
        if spec_stats is not None:
            spec_stats.loads_checked += 1
            if by_final:  # empty until the first relocation
                word = address & ~7
                store_initial = by_final_get(word)
                if store_initial is not None and store_initial != word:
                    spec_stats.misspeculations += 1
                    timing.misspeculation_flush()

    def store_ref(address: int, bare: bool = False) -> None:
        # TimingModel.execute(1), inlined.
        timing.instructions += 1
        cycle = timing.cycle + ipc
        timing.inst_stall_cycles += inst_overhead
        cycle += inst_overhead
        start = cycle
        line = address >> line_shift
        # Single L1 probe shared by the hit/partial/full-miss arms.
        set_index = line & set_mask
        base = set_index * assoc
        n = set_len[set_index]
        hit = -1
        if n:
            # First two ways unrolled (the default L1 is 2-way); deeper
            # sets fall through to the loop.
            if tags[base] == line:
                hit = base
            elif n > 1:
                if tags[base + 1] == line:
                    hit = base + 1
                else:
                    for slot in range(base + 2, base + n):
                        if tags[slot] == line:
                            hit = slot
                            break
        if hit >= 0:
            if hit != base and l1_mode == _LRU:
                # Element-wise shift: sets are 2-4 ways, so moving slots
                # one by one beats slice assignment (which allocates).
                d = dirty[hit]
                slot = hit
                while slot > base:
                    tags[slot] = tags[slot - 1]
                    dirty[slot] = dirty[slot - 1]
                    slot -= 1
                tags[base] = line
                dirty[base] = d
                hit = base
            dirty[hit] = 1
            l1_stats.store_hits += 1
        # MSHRFile.lookup, inlined.
        line_addr = line << line_shift
        ready = inflight_get(line_addr) if inflight else None
        if ready is not None and ready <= start:
            del inflight[line_addr]
            ready = None
        if ready is not None:
            mshr_stats.combines += 1
            if hit < 0:
                l1_stats.store_misses += 1
            hierarchy.miss_classes.store_partial += 1
        elif hit >= 0:
            ready = start + l1_hit_latency
        else:
            l1_stats.store_misses += 1
            hierarchy.miss_classes.store_full += 1
            traffic = hierarchy.traffic
            l2_line = line_addr >> l2_shift
            l2_set = l2_line & l2_set_mask
            l2_base = l2_set * l2_assoc
            n2 = l2_set_len[l2_set]
            l2_hit = -1
            if n2:
                if l2_tags[l2_base] == l2_line:
                    l2_hit = l2_base
                elif n2 > 1:
                    if l2_tags[l2_base + 1] == l2_line:
                        l2_hit = l2_base + 1
                    else:
                        for slot in range(l2_base + 2, l2_base + n2):
                            if l2_tags[slot] == l2_line:
                                l2_hit = slot
                                break
            if l2_hit >= 0:
                if l2_hit != l2_base and l2_mode == _LRU:
                    d = l2_dirty[l2_hit]
                    slot = l2_hit
                    while slot > l2_base:
                        l2_tags[slot] = l2_tags[slot - 1]
                        l2_dirty[slot] = l2_dirty[slot - 1]
                        slot -= 1
                    l2_tags[l2_base] = l2_line
                    l2_dirty[l2_base] = d
                # Fills probe the L2 as reads regardless of the demand
                # access type, as in _fill_from_below.
                l2_stats.load_hits += 1
                latency = l2_fill_latency
            else:
                l2_stats.load_misses += 1
                latency = full_miss_latency
                traffic.l2_mem_fill_bytes += l2_line_size
                # Cache.fill into L2, inlined (fills stay clean: the
                # demand store dirties only the L1 copy).
                if n2 >= l2_assoc:
                    if l2_mode == _RANDOM:
                        state = l2._rng_state
                        state ^= (state << 13) & 0xFFFFFFFF
                        state ^= state >> 17
                        state ^= (state << 5) & 0xFFFFFFFF
                        l2._rng_state = state
                        victim = l2_base + state % n2
                    else:
                        victim = l2_base + n2 - 1
                    victim_dirty = l2_dirty[victim]
                    l2_stats.evictions += 1
                    if victim_dirty:
                        l2_stats.dirty_evictions += 1
                    ev_first = l2_tags[victim] << l2_shift >> line_shift
                    slot = victim
                    while slot > l2_base:
                        l2_tags[slot] = l2_tags[slot - 1]
                        l2_dirty[slot] = l2_dirty[slot - 1]
                        slot -= 1
                    l2_tags[l2_base] = l2_line
                    l2_dirty[l2_base] = 0
                    for inv_line in range(ev_first, ev_first + inclusion_count):
                        inv_set = inv_line & set_mask
                        inv_base = inv_set * assoc
                        inv_n = set_len[inv_set]
                        for slot in range(inv_base, inv_base + inv_n):
                            if tags[slot] == inv_line:
                                end = inv_base + inv_n - 1
                                while slot < end:
                                    tags[slot] = tags[slot + 1]
                                    dirty[slot] = dirty[slot + 1]
                                    slot += 1
                                set_len[inv_set] = inv_n - 1
                                break
                    if victim_dirty:
                        traffic.l2_mem_writeback_bytes += l2_line_size
                else:
                    slot = l2_base + n2
                    while slot > l2_base:
                        l2_tags[slot] = l2_tags[slot - 1]
                        l2_dirty[slot] = l2_dirty[slot - 1]
                        slot -= 1
                    l2_set_len[l2_set] = n2 + 1
                    l2_tags[l2_base] = l2_line
                    l2_dirty[l2_base] = 0
            traffic.l1_l2_fill_bytes += line_size
            # Cache.fill into L1 (write-allocate: filled dirty).
            n = set_len[set_index]
            if n >= assoc:
                if l1_mode == _RANDOM:
                    state = l1._rng_state
                    state ^= (state << 13) & 0xFFFFFFFF
                    state ^= state >> 17
                    state ^= (state << 5) & 0xFFFFFFFF
                    l1._rng_state = state
                    victim = base + state % n
                else:
                    victim = base + n - 1
                victim_dirty = dirty[victim]
                l1_stats.evictions += 1
                if victim_dirty:
                    l1_stats.dirty_evictions += 1
                ev_addr = tags[victim] << line_shift
                slot = victim
                while slot > base:
                    tags[slot] = tags[slot - 1]
                    dirty[slot] = dirty[slot - 1]
                    slot -= 1
                tags[base] = line
                dirty[base] = 1
                if victim_dirty:
                    traffic.l1_l2_writeback_bytes += line_size
                    l2_fill(ev_addr, True)
            else:
                slot = base + n
                while slot > base:
                    tags[slot] = tags[slot - 1]
                    dirty[slot] = dirty[slot - 1]
                    slot -= 1
                set_len[set_index] = n + 1
                tags[base] = line
                dirty[base] = 1
            # MSHRFile.allocate, inlined.  The floor bound (see
            # repro.cache.mshr) skips the expiry scan when no fill can
            # have completed yet.
            if inflight and mshr._floor <= start:
                for key in [k for k, r in inflight.items() if r <= start]:
                    del inflight[key]
                mshr._floor = min(inflight.values()) if inflight else _INF
            if len(inflight) >= mshr_capacity:
                earliest = min(inflight.values())
                mshr_stats.full_stalls += 1
                mshr_stats.full_stall_cycles += earliest - start
                for key, r in list(inflight.items()):
                    if r == earliest:
                        del inflight[key]
                        break
                ready = earliest + latency
            else:
                ready = start + latency
            inflight[line_addr] = ready
            if ready < mshr._floor:
                mshr._floor = ready
            mshr_stats.allocations += 1
        # TimingModel.store_completes, inlined.
        if buffer and timing._store_buffer_floor <= cycle:
            buffer[:] = [t for t in buffer if t > cycle]
            timing._store_buffer_floor = min(buffer) if buffer else _INF
        if len(buffer) >= depth:
            earliest = min(buffer)
            stall = earliest - cycle
            if stall > 0.0:
                timing.store_stall_cycles += stall
                cycle += stall
            buffer_remove(earliest)
        if ready > cycle:
            buffer_append(ready)
            if ready < timing._store_buffer_floor:
                timing._store_buffer_floor = ready
        timing.cycle = cycle
        if bare:
            return
        forwarding_stats.references += 1
        store_latency.count += 1
        store_latency.ordinary_cycles += ready - start
        # DependenceSpeculator.on_store, inlined (final == initial).
        if spec_stats is not None:
            word = address & ~7
            spec_stats.stores_tracked += 1
            queue_append((word, word))
            by_final[word] = word
            counts[word] = counts_get(word, 0) + 1
            if len(queue) > window:
                old_final, _old_initial = queue_popleft()
                remaining = counts[old_final] - 1
                if remaining:
                    counts[old_final] = remaining
                else:
                    del counts[old_final]
                    del by_final[old_final]

    return load_ref, store_ref


def _make_general_backed_kernel(
    hierarchy,
    timing,
    speculator,
    load_latency,
    store_latency,
    forwarding_stats,
) -> tuple[Callable[..., None], Callable[..., None]]:
    """Kernel closures over the layered components (no fused inlining).

    Used when the hierarchy carries a miss path: the closures call
    ``hierarchy.access`` / ``timing.*`` exactly as
    ``Machine._load_general`` / ``_store_general`` do for an unforwarded
    in-range reference (and, with ``bare=True``, as the general
    ``Unforwarded_Read``/``Write`` sequence does), so direct runs,
    replay, and the general path all stay bit-identical.
    """
    execute = timing.execute
    access = hierarchy.access
    load_completes = timing.load_completes
    store_completes = timing.store_completes
    on_load = speculator.on_load if speculator is not None else None
    on_store = speculator.on_store if speculator is not None else None

    def load_ref(address: int, bare: bool = False) -> None:
        execute(1)
        start = timing.cycle
        result = access(address, False, start)
        load_completes(result.ready)
        if bare:
            return
        forwarding_stats.references += 1
        load_latency.count += 1
        load_latency.ordinary_cycles += result.ready - start
        if on_load is not None and on_load(address, address):
            timing.misspeculation_flush()

    def store_ref(address: int, bare: bool = False) -> None:
        execute(1)
        start = timing.cycle
        result = access(address, True, start)
        store_completes(result.ready)
        if bare:
            return
        forwarding_stats.references += 1
        store_latency.count += 1
        store_latency.ordinary_cycles += result.ready - start
        if on_store is not None:
            on_store(address, address)

    return load_ref, store_ref


def make_machine_ops(machine) -> tuple[Callable[..., int], Callable[..., None]]:
    """Build the ``machine.load`` / ``machine.store`` entry points.

    These close over the machine's memory arrays and its reference
    kernel so the common case -- no observer, in-range address,
    forwarding bit clear -- runs gate, cost kernel and data access
    without a single intermediate frame.  Every exception case falls
    back to ``Machine._load_general`` / ``_store_general`` before any
    state is touched.
    """
    memory = machine.memory
    words = memory._words
    fbits = memory._fbits
    nwords = memory._nwords
    read_data = memory.read_data
    write_data = memory.write_data
    kernel_load = machine._kernel_load
    kernel_store = machine._kernel_store
    load_general = machine._load_general
    store_general = machine._store_general

    def load(address: int, size: int = 8) -> int:
        """Forwarding-aware load of ``size`` bytes; returns the value."""
        if machine.observer is not None or not machine._fast_enabled:
            return load_general(address, size)
        index = address >> 3
        if index >= nwords or index < 0 or fbits[index]:
            return load_general(address, size)
        kernel_load(address)
        if size == 8 and not (address & 7):
            return words[index]
        return read_data(address, size)

    def store(address: int, value: int, size: int = 8) -> None:
        """Forwarding-aware store of ``size`` bytes."""
        if machine.observer is not None or not machine._fast_enabled:
            return store_general(address, value, size)
        index = address >> 3
        if index >= nwords or index < 0 or fbits[index]:
            return store_general(address, value, size)
        kernel_store(address)
        if size == 8 and not (address & 7):
            words[index] = value & 0xFFFFFFFFFFFFFFFF
            return None
        return write_data(address, value, size)

    return load, store
