"""Tagged physical memory: data words plus one forwarding bit per word.

This module models the storage layer of the paper's proposal (Section 2.1):
a conventional word-addressable memory in which every 64-bit word carries a
one-bit *forwarding tag*.  When the tag is set, the word holds a forwarding
(byte) address rather than data.  On a 64-bit machine the tag adds 1 bit per
64 bits of storage -- the 1.5% space overhead the paper reports.

The class below is purely the *state* of memory.  Forwarding-chain
dereferencing, timing, and cache behaviour live in higher layers
(:mod:`repro.core.forwarding`, :mod:`repro.core.machine`).  Keeping raw
storage separate makes the safety-net semantics easy to test in isolation.

Addresses are byte addresses.  The word size is fixed at 8 bytes, matching
the paper's 64-bit target architecture.  Sub-word (1/2/4-byte) accesses are
supported and little-endian, mirroring the MIPS configuration used in the
paper's simulator.
"""

from __future__ import annotations

from array import array

from repro.core.errors import AlignmentError, MemoryAccessError

#: Width of a machine word (and of a pointer) in bytes.  The paper fixes the
#: minimum relocation granularity to this size because a forwarding address
#: must fit in the space it replaces.
WORD_SIZE = 8

#: log2(WORD_SIZE), used to convert byte addresses to word indices.
WORD_SHIFT = 3

#: Mask of the byte offset within a word.
WORD_OFFSET_MASK = WORD_SIZE - 1

#: Maximum value storable in one word.
WORD_MASK = (1 << 64) - 1

_SIZE_MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF, 8: WORD_MASK}


class TaggedMemory:
    """A flat, word-granular memory with a forwarding bit per word.

    Parameters
    ----------
    size:
        Size of the simulated physical memory in bytes.  Rounded up to a
        whole number of words.

    Notes
    -----
    All methods here are *raw*: they neither follow forwarding chains nor
    charge simulated time.  They correspond to what the memory arrays
    themselves can do, i.e. the behaviour of ``Unforwarded_Read`` /
    ``Unforwarded_Write`` at the storage level.
    """

    __slots__ = ("_nwords", "size", "_words", "_fbits")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        nwords = (size + WORD_SIZE - 1) >> WORD_SHIFT
        self._nwords = nwords
        self.size = nwords << WORD_SHIFT
        # array('Q') rather than a list: a multi-megabyte list of int
        # pointers is scanned by every young-generation GC pass while it
        # ages (a measurable fraction of sweep runtime at 42 machines per
        # run), whereas an array holds raw 64-bit slots the collector
        # never visits, and zero-fill construction is a memset.  Every
        # writer masks values into [0, 2**64), matching the 'Q' range.
        self._words = array("Q", bytes(8 * nwords))
        self._fbits = bytearray(nwords)

    # ------------------------------------------------------------------
    # Bounds / alignment checks
    # ------------------------------------------------------------------
    def check_range(self, address: int, size: int) -> None:
        """Raise :class:`MemoryAccessError` unless [address, address+size) fits."""
        if address < 0 or size < 0 or address + size > self.size:
            raise MemoryAccessError(address, size, "out of range")

    def _word_index(self, address: int) -> int:
        if address < 0 or address + WORD_SIZE > self.size:
            raise MemoryAccessError(address, WORD_SIZE, "out of range")
        if address & WORD_OFFSET_MASK:
            raise AlignmentError(address, WORD_SIZE)
        return address >> WORD_SHIFT

    # ------------------------------------------------------------------
    # Word-granular raw access (storage level of the ISA extensions)
    # ------------------------------------------------------------------
    def read_word(self, address: int) -> int:
        """Read the 64-bit word at a word-aligned byte ``address``."""
        return self._words[self._word_index(address)]

    def write_word(self, address: int, value: int) -> None:
        """Write a 64-bit word at a word-aligned byte ``address``.

        The forwarding bit is left unchanged; use :meth:`write_word_tagged`
        for the atomic word+bit update that ``Unforwarded_Write`` requires.
        """
        self._words[self._word_index(address)] = value & WORD_MASK

    def read_fbit(self, address: int) -> int:
        """Return the forwarding bit (0 or 1) of the word at ``address``."""
        return self._fbits[self._word_index(address)]

    def write_word_tagged(self, address: int, value: int, fbit: int) -> None:
        """Atomically update a word and its forwarding bit.

        This is the storage-level effect of the paper's
        ``Unforwarded_Write`` instruction (Figure 3), which must change the
        word and its bit together to preserve consistency.
        """
        index = self._word_index(address)
        self._words[index] = value & WORD_MASK
        self._fbits[index] = 1 if fbit else 0

    # ------------------------------------------------------------------
    # Sub-word raw access
    # ------------------------------------------------------------------
    def read_data(self, address: int, size: int) -> int:
        """Read ``size`` bytes (1/2/4/8) at a naturally aligned address.

        Forwarding bits are ignored; the caller is responsible for having
        resolved the final address first.
        """
        mask = _SIZE_MASKS.get(size)
        if mask is None:
            raise ValueError(f"unsupported access size {size}")
        if address & (size - 1):
            raise AlignmentError(address, size)
        if size == WORD_SIZE:
            return self.read_word(address)
        word_address = address & ~WORD_OFFSET_MASK
        shift = (address & WORD_OFFSET_MASK) * 8
        word = self._words[self._word_index(word_address)]
        return (word >> shift) & mask

    def write_data(self, address: int, value: int, size: int) -> None:
        """Write ``size`` bytes (1/2/4/8) at a naturally aligned address."""
        mask = _SIZE_MASKS.get(size)
        if mask is None:
            raise ValueError(f"unsupported access size {size}")
        if address & (size - 1):
            raise AlignmentError(address, size)
        if size == WORD_SIZE:
            self.write_word(address, value)
            return
        word_address = address & ~WORD_OFFSET_MASK
        shift = (address & WORD_OFFSET_MASK) * 8
        index = self._word_index(word_address)
        word = self._words[index]
        self._words[index] = (word & ~(mask << shift)) | ((value & mask) << shift)

    # ------------------------------------------------------------------
    # Region initialisation
    # ------------------------------------------------------------------
    def clear_region(self, address: int, size: int) -> None:
        """Zero a word-aligned region and clear its forwarding bits.

        Section 3.3 of the paper: the operating system must perform
        ``Unforwarded_Write(0, 0)`` on every word of a region before handing
        it to an application, so a program never observes a stale
        forwarding bit in fresh memory.
        """
        if address & WORD_OFFSET_MASK or size & WORD_OFFSET_MASK:
            raise AlignmentError(address | size, WORD_SIZE)
        self.check_range(address, size)
        first = address >> WORD_SHIFT
        last = (address + size) >> WORD_SHIFT
        for index in range(first, last):
            self._words[index] = 0
            self._fbits[index] = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def word_count(self) -> int:
        """Number of words in the simulated memory."""
        return self._nwords

    def tag_overhead_bits(self) -> int:
        """Total bits of tag storage: one per word (the paper's 1.5%)."""
        return self._nwords

    def forwarded_word_count(self) -> int:
        """Number of words whose forwarding bit is currently set."""
        return sum(self._fbits)
