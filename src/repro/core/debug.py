"""Human-readable dumps of tagged memory (Figure 1's tables, as text).

The paper explains the mechanism with side-by-side pictures of memory
contents and forwarding bits before and after a relocation.  These
helpers render the same view from a live simulation, for examples,
debugging, and doctest-style documentation:

* :func:`dump_region` -- one row per word: address, forwarding bit, and
  either the data value or ``-> target`` for a forwarding stub;
* :func:`dump_chain` -- the full forwarding chain from an address;
* :func:`region_summary` -- counts of data vs forwarding words.

It also hosts the package's progress logging entry points
(:func:`get_logger`, :func:`enable_progress_logging`): experiment
drivers log per-run progress through here (to stderr) instead of
printing to stdout.  Since PR 9 the actual handler lives in
:mod:`repro.obs.logging` -- structured JSON lines written atomically,
so parallel sweep workers never interleave torn lines into the stream.
"""

from __future__ import annotations

import logging

from repro.core.forwarding import ForwardingEngine
from repro.core.memory import TaggedMemory, WORD_SIZE
from repro.obs.logging import ROOT_LOGGER_NAME, configure_logging


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or a child of it (``get_logger("sweep")``)."""
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def enable_progress_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach the structured stderr handler to ``repro`` (idempotent).

    Kept as the historical entry point; delegates to
    :func:`repro.obs.logging.configure_logging`, which emits one JSON
    object per line through a single atomic ``os.write`` -- safe under
    the process pool where plain ``StreamHandler`` lines tear.
    """
    return configure_logging(level)


def dump_region(memory: TaggedMemory, start: int, nwords: int, title: str = "") -> str:
    """Render ``nwords`` words from ``start`` as an address/fbit/value table."""
    if start % WORD_SIZE:
        raise ValueError(f"start must be word aligned, got {start:#x}")
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'address':>12}  {'fbit':>4}  value")
    lines.append("-" * 34)
    for index in range(nwords):
        address = start + index * WORD_SIZE
        fbit = memory.read_fbit(address)
        word = memory.read_word(address)
        if fbit:
            rendered = f"-> {word:#x}"
        else:
            rendered = f"{word:#x}" if word > 9 else str(word)
        lines.append(f"{address:#12x}  {fbit:>4}  {rendered}")
    return "\n".join(lines)


def dump_chain(memory: TaggedMemory, address: int) -> str:
    """Render the forwarding chain from ``address`` as ``a -> b -> c``."""
    engine = ForwardingEngine(memory)
    chain = engine.chain(address)
    return " -> ".join(f"{word:#x}" for word in chain)


def region_summary(memory: TaggedMemory, start: int, nwords: int) -> dict[str, int]:
    """Counts of data words vs forwarding stubs in a region."""
    forwarding = sum(
        memory.read_fbit(start + index * WORD_SIZE) for index in range(nwords)
    )
    return {
        "words": nwords,
        "forwarding": forwarding,
        "data": nwords - forwarding,
    }
