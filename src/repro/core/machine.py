"""The simulated machine: tagged memory, forwarding, caches, and timing.

:class:`Machine` is the facade every application and optimization in this
reproduction programs against.  Its data-reference methods implement the
paper's semantics end to end:

1. a reference presents an **initial address**;
2. the forwarding engine chases any chain to the **final address**, with
   each hop performing a real (timed, cache-polluting) memory access;
3. the final access goes through the two-level cache hierarchy;
4. the timing model attributes the latency to graduation-slot categories;
5. the dependence speculator checks for initial/final address collisions.

The paper's ISA extensions (Figure 3) -- ``Read_FBit``,
``Unforwarded_Read`` and ``Unforwarded_Write`` -- are methods here too, so
software such as ``relocate()`` pays its costs through the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Protocol

from repro.adapt.config import AdaptConfig
from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core.errors import DoubleFreeError, MemoryAccessError
from repro.core.forwarding import ForwardingEngine
from repro.core.hotpath import make_machine_ops, make_reference_kernel
from repro.core.memory import TaggedMemory, WORD_MASK, WORD_SIZE
from repro.core.stats import MachineStats, ReferenceLatencyStats, RelocationStats
from repro.cpu.prefetch import SoftwarePrefetcher
from repro.cpu.speculation import DependenceSpeculator
from repro.cpu.timing import TimingConfig, TimingModel
from repro.mem.allocator import HeapAllocator
from repro.mem.pool import RelocationPool

#: The simulated NULL pointer.
NULL = 0


@dataclass(frozen=True)
class ForwardingEvent:
    """Passed to a user-level trap handler when a reference is forwarded.

    Mirrors the lightweight user-level trap of Section 3.2: the handler
    learns which initial address was stale and where the data now lives,
    so it can profile the miss or repair the offending pointer.
    """

    initial_address: int
    final_address: int
    hops: int
    is_write: bool


#: Signature of a user-level forwarding trap handler.
TrapHandler = Callable[["Machine", ForwardingEvent], None]


class MachineObserver(Protocol):
    """Instrumentation hook receiving the machine's canonical event stream.

    An observer sees every architectural event an application (or the
    relocation runtime acting on its behalf) issues against the machine:
    data references, ISA extensions, allocation, pool carving, relocation
    bookkeeping, and trap-handler installation.  The stream is *complete*
    in the sense that replaying it against a fresh :class:`Machine` -- via
    :mod:`repro.trace` -- reproduces every counter of
    :meth:`Machine.stats` exactly.

    Observation is passive: installing an observer must not change the
    simulation's behaviour or timing.  Events for operations that can
    trigger nested machine activity (a forwarded load entering a user
    trap handler, say) are emitted *before* the operation executes, so
    nested events appear after their cause in the stream.
    """

    def on_load(self, address: int, size: int) -> None: ...
    def on_store(self, address: int, value: int, size: int) -> None: ...
    def on_execute(self, instructions: int) -> None: ...
    def on_prefetch(self, address: int, lines: int) -> None: ...
    def on_read_fbit(self, address: int) -> None: ...
    def on_unforwarded_read(self, address: int) -> None: ...
    def on_unforwarded_write(self, address: int, value: int, fbit: int) -> None: ...
    def on_malloc(self, nbytes: int, align: int, address: int) -> None: ...
    def on_free(self, address: int) -> None: ...
    def on_create_pool(self, index: int, size: int, name: str) -> None: ...
    def on_pool_alloc(
        self, index: int, nbytes: int, align: int, address: int
    ) -> None: ...
    def on_raw_write(self, address: int, value: int) -> None: ...
    def on_note_relocation(self, relocations: int, words: int) -> None: ...
    def on_note_optimizer(self) -> None: ...
    def on_set_trap(self, installed: bool) -> None: ...


@dataclass
class MachineConfig:
    """Configuration of the whole simulated system."""

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    #: Base of the application heap; low memory is reserved so NULL (0)
    #: never aliases a live object.
    heap_base: int = 0x10000
    heap_size: int = 24 << 20
    #: Region reserved for relocation pools, carved on demand.
    pool_region_size: int = 24 << 20
    hop_limit: int = 16
    #: Depth of the dependence-speculation store window (0 disables).
    speculation_window: int = 32
    #: Instruction cost of malloc bookkeeping (beyond per-byte clearing).
    malloc_base_cost: int = 16
    #: Instruction cost of the forwarding-aware free wrapper.
    free_base_cost: int = 8
    #: Largest block prefetch (lines) a single instruction may request.
    max_prefetch_block: int = 8
    #: Extra cycles charged to a user-level trap handler invocation.
    user_trap_cycles: float = 10.0
    #: Use the fused load/store fast path for unforwarded L1 hits.  The
    #: fast and general paths produce bit-identical statistics (enforced
    #: by the differential parity tests); this switch exists so those
    #: tests -- and any future debugging -- can force the general path.
    fast_path: bool = True
    #: Data references per timeline window; 0 (the default) disables the
    #: sampler entirely -- no wrapper closures, zero hot-path cost.
    timeline_interval: int = 0
    #: Capacity of the structured event ring; 0 (the default) disables
    #: event emission.  Enabling events forces the general reference
    #: path, because the fused kernels inline the cache internals some
    #: events come from (L2 inclusion victims).
    events_capacity: int = 0
    #: Heatmap region granularity (bytes, power of two) for the timeline
    #: sampler and the adaptive profile; the default matches the
    #: timeline's historical fixed 64 KB regions.
    heatmap_region_bytes: int = 64 * 1024
    #: Online adaptive relocation policy (:class:`repro.adapt.AdaptConfig`);
    #: ``None`` (the default) disables the engine entirely.  Configuring
    #: it implies a timeline (using ``adapt.interval`` as the window
    #: width when ``timeline_interval`` is 0) and forces the general
    #: reference path, mirroring the events gate.
    adapt: AdaptConfig | None = None

    def __post_init__(self) -> None:
        region = self.heatmap_region_bytes
        if region < 1 or region & (region - 1):
            raise ValueError(
                f"heatmap_region_bytes must be a power of two, got {region}"
            )

    @property
    def memory_size(self) -> int:
        return self.heap_base + self.heap_size + self.pool_region_size

    def with_line_size(self, line_size: int) -> "MachineConfig":
        """Copy of this config with a different cache line size."""
        return replace(self, hierarchy=replace(self.hierarchy, line_size=line_size))


class Machine:
    """A complete simulated system instance.

    Data references run through a **fused fast path**: ``load`` and
    ``store`` are per-instance closures (built by
    :func:`repro.core.hotpath.make_machine_ops`) that, when no observer
    is installed and the referenced word's forwarding bit is clear, run
    the fbit check, the whole cache/MSHR/timing cost path, and the data
    access in a single frame over hot state bound to locals.  Every
    exception case -- an observer, a set forwarding bit, an address out
    of range -- falls back to the general path
    (:meth:`_load_general` / :meth:`_store_general`), which remains the
    readable reference implementation.  The two paths produce
    bit-identical :class:`MachineStats`; the differential parity tests
    enforce that invariant across every application and variant.
    """

    __slots__ = (
        "load",
        "store",
        "config",
        "memory",
        "forwarding",
        "hierarchy",
        "timing",
        "heap",
        "prefetcher",
        "speculator",
        "pools",
        "trap_handler",
        "observer",
        "load_latency",
        "store_latency",
        "relocation_stats",
        "_pool_bump",
        "_pool_limit",
        "_pool_region_base",
        "_hop_cycles",
        "_fast_enabled",
        "_kernel_load",
        "_kernel_store",
        "_registry",
        "events",
        "timeline",
        "adapt",
    )

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig()
        cfg = self.config
        self.memory = TaggedMemory(cfg.memory_size)
        self.forwarding = ForwardingEngine(self.memory, cfg.hop_limit)
        self.hierarchy = MemoryHierarchy(cfg.hierarchy)
        self.timing = TimingModel(cfg.timing)
        self.heap = HeapAllocator(self.memory, cfg.heap_base, cfg.heap_size)
        self.prefetcher = SoftwarePrefetcher(self.hierarchy, cfg.max_prefetch_block)
        self.speculator = (
            DependenceSpeculator(cfg.speculation_window)
            if cfg.speculation_window > 0
            else None
        )
        self.pools: list[RelocationPool] = []
        self._pool_region_base = cfg.heap_base + cfg.heap_size
        self._pool_bump = self._pool_region_base
        self._pool_limit = self._pool_bump + cfg.pool_region_size
        self.trap_handler: TrapHandler | None = None
        #: Optional instrumentation hook (see :class:`MachineObserver`).
        self.observer: MachineObserver | None = None
        # Per-reference latency accounting (Figure 10(c,d)).
        self.load_latency = ReferenceLatencyStats()
        self.store_latency = ReferenceLatencyStats()
        self.relocation_stats = RelocationStats()
        # Scratch accumulator filled by the per-hop callback.
        self._hop_cycles = 0.0
        self._fast_enabled = cfg.fast_path
        # Fused per-reference cost kernel (see repro.core.hotpath): all
        # components it closes over are allocated exactly once above and
        # only mutated in place for the machine's lifetime.
        # Lazily built repro.obs registry (see the ``metrics`` property);
        # never touched by the reference hot paths.
        self._registry = None
        self._kernel_load, self._kernel_store = make_reference_kernel(
            self.hierarchy,
            self.timing,
            self.speculator,
            self.load_latency,
            self.store_latency,
            self.forwarding.stats,
        )
        self.load, self.store = make_machine_ops(self)
        # Observability side-channels (DESIGN.md 5d).  Both default off;
        # neither adds a single instruction to the reference hot path
        # when disabled (no wrapper closures, no per-call flag tests
        # beyond those the ops already perform).
        self.events = None
        if cfg.events_capacity > 0:
            from repro.obs.events import EventLog

            timing = self.timing
            self.events = EventLog(cfg.events_capacity, clock=lambda: timing.cycle)
            self.forwarding.events = self.events
            self.hierarchy.events = self.events
            # The fused kernels inline the L2 inclusion machinery that
            # cache.l2_victim events come from; force the (bit-identical)
            # general path so no event is lost.
            self._fast_enabled = False
        self.timeline = None
        self.adapt = None
        # The adaptive engine feeds off timeline windows: configuring it
        # implies a timeline (at ``adapt.interval`` when no explicit
        # ``timeline_interval`` is set).
        interval = cfg.timeline_interval
        if interval == 0 and cfg.adapt is not None:
            interval = cfg.adapt.interval
        if interval > 0:
            from repro.obs.timeline import Timeline

            timing = self.timing
            self.timeline = Timeline(
                interval,
                self.metrics,
                mshr=self.hierarchy.mshr,
                clock=lambda: timing.cycle,
                events=self.events,
                region_bytes=cfg.heatmap_region_bytes,
            )
            self._wrap_references_with_timeline()
        if cfg.adapt is not None:
            from repro.adapt.engine import AdaptEngine

            self.adapt = AdaptEngine(self, cfg.adapt)
            self.adapt.install()
            # Engine relocations interleave with application references;
            # stay on the (bit-identical) general path so every
            # forwarding corner case runs the reference implementation.
            self._fast_enabled = False

    def _wrap_references_with_timeline(self) -> None:
        """Interpose the timeline sampler on ``load``/``store``.

        Wrapping (rather than testing a flag inside the ops) keeps the
        disabled configuration byte-for-byte identical to PR 3's hot
        path.  The tick happens *after* the inner reference completes so
        a window boundary observes the reference's full cost -- and so a
        replayed trace, which ticks after dispatching each entry, lands
        its boundaries on exactly the same references.
        """
        timeline = self.timeline
        inner_load = self.load
        inner_store = self.store
        tick = timeline.tick

        def timed_load(address: int, size: int = WORD_SIZE) -> int:
            value = inner_load(address, size)
            tick(address)
            return value

        def timed_store(address: int, value: int, size: int = WORD_SIZE) -> None:
            inner_store(address, value, size)
            tick(address)

        self.load = timed_load
        self.store = timed_store

    # ------------------------------------------------------------------
    # Data references (forwarding-aware)
    # ------------------------------------------------------------------
    def _on_hop(self, word_address: int) -> None:
        """Timed cache access for one forwarding hop.

        The old location is genuinely touched, which is how forwarding
        pollutes the cache (the effect Figure 10(d) attributes latency to).
        """
        timing = self.timing
        start = timing.cycle
        result = self.hierarchy.access(word_address, False, start)
        timing.load_completes(result.ready, forwarding=True)
        self._hop_cycles += result.ready - start

    def _load_general(self, address: int, size: int = WORD_SIZE) -> int:
        """General (reference) load path: observers, forwarding, traps."""
        if self.observer is not None:
            self.observer.on_load(address, size)
        timing = self.timing
        timing.execute(1)
        self._hop_cycles = 0.0
        final, hops = self.forwarding.resolve(address, self._on_hop)
        start = timing.cycle
        result = self.hierarchy.access(final, False, start)
        timing.load_completes(result.ready, forwarding=hops > 0)
        latency = self.load_latency
        latency.count += 1
        latency.ordinary_cycles += result.ready - start
        if hops:
            latency.forwarded += 1
            latency.forwarding_cycles += self._hop_cycles + timing.forwarding_trap_cost(hops)
            timing.forwarding_trap(hops)
            if self.timeline is not None:
                self.timeline.note_forwarded(address)
            self._fire_trap(address, final, hops, is_write=False)
        if self.speculator is not None and self.speculator.on_load(address, final):
            timing.misspeculation_flush()
        return self.memory.read_data(final, size)

    def _store_general(self, address: int, value: int, size: int = WORD_SIZE) -> None:
        """General (reference) store path: observers, forwarding, traps."""
        if self.observer is not None:
            self.observer.on_store(address, value, size)
        timing = self.timing
        timing.execute(1)
        self._hop_cycles = 0.0
        final, hops = self.forwarding.resolve(address, self._on_hop)
        start = timing.cycle
        result = self.hierarchy.access(final, True, start)
        timing.store_completes(result.ready, forwarding=hops > 0)
        latency = self.store_latency
        latency.count += 1
        latency.ordinary_cycles += result.ready - start
        if hops:
            latency.forwarded += 1
            latency.forwarding_cycles += self._hop_cycles + timing.forwarding_trap_cost(hops)
            timing.forwarding_trap(hops)
            if self.timeline is not None:
                self.timeline.note_forwarded(address)
            self._fire_trap(address, final, hops, is_write=True)
        if self.speculator is not None:
            self.speculator.on_store(address, final)
        self.memory.write_data(final, value, size)

    def _fire_trap(self, initial: int, final: int, hops: int, is_write: bool) -> None:
        handler = self.trap_handler
        if handler is not None:
            self.timing.stall(self.config.user_trap_cycles, "inst")
            handler(self, ForwardingEvent(initial, final, hops, is_write))

    # ------------------------------------------------------------------
    # ISA extensions (Figure 3) -- forwarding mechanism disabled
    # ------------------------------------------------------------------
    def read_fbit(self, address: int) -> int:
        """``Read_FBit``: test whether a word holds a forwarding address.

        The bit travels with the line, so this is a timed cache access of
        the word itself (Section 3.2: the bit cannot be tested until the
        line reaches the primary cache).
        """
        word = address & ~7
        if self.observer is None and self._fast_enabled:
            memory = self.memory
            index = word >> 3
            if 0 <= index < memory._nwords:
                self._kernel_load(word, True)
                return memory._fbits[index]
        if self.observer is not None:
            self.observer.on_read_fbit(address)
        timing = self.timing
        timing.execute(1)
        result = self.hierarchy.access(word, False, timing.cycle)
        timing.load_completes(result.ready)
        return self.memory.read_fbit(word)

    def unforwarded_read(self, address: int) -> int:
        """``Unforwarded_Read``: read a word with forwarding disabled."""
        word = address & ~7
        if self.observer is None and self._fast_enabled:
            memory = self.memory
            index = word >> 3
            if 0 <= index < memory._nwords:
                self._kernel_load(word, True)
                return memory._words[index]
        if self.observer is not None:
            self.observer.on_unforwarded_read(address)
        timing = self.timing
        timing.execute(1)
        result = self.hierarchy.access(word, False, timing.cycle)
        timing.load_completes(result.ready)
        return self.memory.read_word(word)

    def unforwarded_write(self, address: int, value: int, fbit: int) -> None:
        """``Unforwarded_Write``: atomically set a word and its bit."""
        word = address & ~7
        if self.observer is None and self._fast_enabled:
            memory = self.memory
            index = word >> 3
            if 0 <= index < memory._nwords:
                self._kernel_store(word, True)
                memory._words[index] = value & WORD_MASK
                memory._fbits[index] = 1 if fbit else 0
                return
        if self.observer is not None:
            self.observer.on_unforwarded_write(address, value, fbit)
        timing = self.timing
        timing.execute(1)
        result = self.hierarchy.access(word, True, timing.cycle)
        timing.store_completes(result.ready)
        self.memory.write_word_tagged(word, value, fbit)

    # ------------------------------------------------------------------
    # Prefetch and plain computation
    # ------------------------------------------------------------------
    def prefetch(self, address: int, lines: int = 1) -> None:
        """Issue one (block) software prefetch instruction."""
        if self.observer is not None:
            self.observer.on_prefetch(address, lines)
        self.timing.execute(1)
        self.prefetcher.prefetch_block(address, lines, self.timing.cycle)

    def execute(self, instructions: int) -> None:
        """Account for ``instructions`` non-memory instructions."""
        if self.observer is not None:
            self.observer.on_execute(instructions)
        # TimingModel.execute, inlined (this is the hottest non-memory
        # call in the instrumented profiles).
        timing = self.timing
        timing.instructions += instructions
        timing.cycle += instructions * timing._ipc
        overhead = instructions * timing.config.inst_overhead
        timing.inst_stall_cycles += overhead
        timing.cycle += overhead

    def raw_write(self, address: int, value: int) -> None:
        """Untimed raw word write (no caches, no forwarding, no cost).

        This is the escape hatch for modelling *magical* memory updates --
        notably the perfect-forwarding pointer fixup of Figure 10's
        ``Perf`` bound, which repairs stale pointers for free.  It still
        goes through the machine (rather than ``memory.write_word``
        directly) so observers see the mutation and replays stay faithful.
        """
        if self.observer is not None:
            self.observer.on_raw_write(address, value)
        self.memory.write_word(address, value)

    # ------------------------------------------------------------------
    # Heap and pools
    # ------------------------------------------------------------------
    def malloc(self, nbytes: int, align: int = WORD_SIZE) -> int:
        """Allocate a heap block; charges allocator bookkeeping time."""
        self.timing.execute(self.config.malloc_base_cost + (nbytes >> 6))
        address = self.heap.allocate(nbytes, align)
        if self.observer is not None:
            self.observer.on_malloc(nbytes, align, address)
        return address

    def free(self, address: int) -> None:
        """Forwarding-aware deallocation wrapper (Section 3.3).

        Every heap block reachable along the forwarding chain of the
        object's first word is released, so relocated copies do not leak
        when the application frees the object by any of its addresses.
        """
        if self.observer is not None:
            self.observer.on_free(address)
        chain = self.forwarding.chain(address)
        if self.events is not None:
            self.events.emit("mem.free", address=address, chain=len(chain))
        self.timing.execute(self.config.free_base_cost + 2 * len(chain))
        freed_any = False
        in_pool = False
        for word_address in chain:
            if self.heap.owns(word_address):
                self.heap.release(word_address)
                freed_any = True
            elif self._pool_region_base <= word_address < self._pool_bump:
                # Pool (arena) memory is reclaimed wholesale, never block by
                # block; freeing a relocated copy by its pool address is a
                # no-op, and the original heap stub -- unreachable from here,
                # since chains only run old-to-new -- stays resident.  That
                # residue is exactly the paper's Table 1 "space overhead".
                in_pool = True
        if not freed_any and not in_pool:
            raise DoubleFreeError(address)

    def create_pool(self, size: int, name: str = "pool") -> RelocationPool:
        """Carve a contiguous relocation pool out of the pool region."""
        requested = size
        size = (size + WORD_SIZE - 1) & ~(WORD_SIZE - 1)
        if self._pool_bump + size > self._pool_limit:
            raise MemoryAccessError(self._pool_bump, size, "pool region exhausted")
        pool = RelocationPool(self._pool_bump, size, name)
        self._pool_bump += size
        index = len(self.pools)
        self.pools.append(pool)
        observer = self.observer
        events = self.events
        if observer is not None:
            observer.on_create_pool(index, requested, name)
        if events is not None:
            events.emit("pool.create", index=index, size=requested, name=name)
        if observer is not None or events is not None:
            # One composed callback so observers (trace capture) and the
            # event log both see every carve, in that order.
            def on_allocate(address: int, nbytes: int, align: int) -> None:
                if observer is not None:
                    observer.on_pool_alloc(index, nbytes, align, address)
                if events is not None:
                    events.emit(
                        "pool.alloc", index=index, address=address, nbytes=nbytes
                    )

            pool.on_allocate = on_allocate
        return pool

    # ------------------------------------------------------------------
    # User-level traps (Section 3.2)
    # ------------------------------------------------------------------
    def set_trap_handler(self, handler: TrapHandler | None) -> None:
        """Install (or clear) the user-level forwarding trap handler."""
        if self.observer is not None:
            self.observer.on_set_trap(handler is not None)
        self.trap_handler = handler

    # ------------------------------------------------------------------
    # Relocation bookkeeping (Table 1 counters)
    # ------------------------------------------------------------------
    def note_relocation(self, relocations: int = 1, words: int = 0) -> None:
        """Credit relocation activity to this machine's Table 1 counters.

        The relocation runtime (``relocate()`` and the optimizers built on
        it) calls this instead of mutating ``relocation_stats`` directly,
        so the bookkeeping is part of the observable event stream.
        """
        if self.observer is not None:
            self.observer.on_note_relocation(relocations, words)
        if self.events is not None:
            self.events.emit("reloc.move", count=relocations, words=words)
        stats = self.relocation_stats
        stats.relocations += relocations
        stats.words_relocated += words

    def note_optimizer_invocation(self) -> None:
        """Count one invocation of a higher-level layout optimization."""
        if self.observer is not None:
            self.observer.on_note_optimizer()
        if self.events is not None:
            self.events.emit("opt.invoke")
        self.relocation_stats.optimizer_invocations += 1

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> float:
        return self.timing.cycle

    def stats(self) -> MachineStats:
        """Snapshot every counter the experiments report."""
        return MachineStats.collect(
            timing=self.timing,
            hierarchy=self.hierarchy,
            loads=replace(self.load_latency),
            stores=replace(self.store_latency),
            speculator=self.speculator,
            prefetcher=self.prefetcher,
            forwarding_hops=self.forwarding.stats.total_hops,
            cycle_checks=self.forwarding.stats.cycle_check_invocations,
            forwarding_chain_hist=self.forwarding.stats.hop_histogram,
            relocation=replace(
                self.relocation_stats,
                pool_bytes=sum(pool.used_bytes for pool in self.pools),
            ),
            heap_high_water=self.heap.stats.high_water,
        )

    @property
    def metrics(self):
        """This machine's live ``repro.obs`` registry (built on first use).

        Every component's counters are *bound* -- read only at snapshot
        time -- so the fused reference kernels stay untouched-hot (the
        hot-path flush contract; see DESIGN.md §5c).  The canonical names
        match :meth:`MachineStats.to_snapshot`, with extra per-component
        detail (per-level hits, MSHR activity, traffic split by
        fill/writeback) available only on the live registry.
        """
        registry = self._registry
        if registry is None:
            from repro.obs.registry import GAUGE, Registry

            registry = Registry()
            self.timing.register_metrics(registry)
            self.hierarchy.register_metrics(registry)
            self.forwarding.stats.register_metrics(registry, "fwd")
            self.prefetcher.register_metrics(registry, "prefetch")
            if self.speculator is not None:
                self.speculator.register_metrics(registry, "spec")
            else:
                registry.bind(
                    "spec.misspeculations", lambda: self.timing.misspeculations
                )
            self.load_latency.register_metrics(registry, "ref.load")
            self.store_latency.register_metrics(registry, "ref.store")
            registry.bind("reloc.count", lambda: self.relocation_stats.relocations)
            registry.bind(
                "reloc.words", lambda: self.relocation_stats.words_relocated
            )
            registry.bind(
                "reloc.optimizer_invocations",
                lambda: self.relocation_stats.optimizer_invocations,
            )
            registry.bind(
                "reloc.pool_bytes",
                lambda: sum(pool.used_bytes for pool in self.pools),
            )
            registry.bind(
                "heap.high_water", lambda: self.heap.stats.high_water, kind=GAUGE
            )
            self._registry = registry
        return registry
