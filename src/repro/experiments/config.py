"""Canonical machine configurations for the paper's experiments.

One place defines the simulated machine every experiment runs on, so
Figure 5, Figure 6, Figure 7 and Figure 10 are all measured on the same
system -- as in the paper.  See DESIGN.md Section 5 for how this scaled
configuration corresponds to the paper's MIPS-class target.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cache.hierarchy import HierarchyConfig
from repro.core.machine import MachineConfig
from repro.cpu.timing import TimingConfig

#: L1 line sizes swept by Figures 5 and 6 for most applications.
DEFAULT_LINE_SIZES = (32, 64, 128)

#: BH's cells are ~72 B, so its sweep extends to 256 B lines (the paper
#: notes meaningful clustering needs 256 B or longer).
BH_LINE_SIZES = (64, 128, 256)

#: Line size used by the prefetching study (Figure 7).
FIGURE7_LINE_SIZE = 32

#: Per-application workload seeds (fixed so results are reproducible).
APP_SEEDS = {
    "health": 7,
    "mst": 3,
    "radiosity": 11,
    "vis": 5,
    "eqntott": 13,
    "bh": 17,
    "compress": 23,
    "smv": 29,
    # Phase-changing inputs for the adaptive experiment: same seeds as
    # their parents so the pre-flip workload is identical.
    "mst_phase": 3,
    "health_phase": 7,
}


def line_sizes_for(app: str) -> tuple[int, ...]:
    """The Figure 5 line-size sweep for one application."""
    return BH_LINE_SIZES if app == "bh" else DEFAULT_LINE_SIZES


def experiment_config(line_size: int = 32) -> MachineConfig:
    """The canonical experiment machine at a given L1 line size."""
    return MachineConfig(
        hierarchy=HierarchyConfig(line_size=line_size),
        timing=TimingConfig(),
    )


def config_without_speculation(line_size: int = 32) -> MachineConfig:
    """Ablation: data-dependence speculation disabled."""
    return replace(experiment_config(line_size), speculation_window=0)
