"""Experiment drivers reproducing every table and figure of the paper.

Each module regenerates one artifact:

==================  ====================================================
``table1``          Table 1 -- application/optimization inventory
``figure5``         Figure 5 -- execution-time breakdown, N vs L
``figure6``         Figure 6(a,b) -- miss counts and bandwidth
``figure7``         Figure 7 -- prefetching x locality at 32 B lines
``figure10``        Figure 10(a-d) -- SMV forwarding overhead
``ablations``       design-choice sweeps beyond the paper's figures
==================  ====================================================

Every module exposes ``run(runner, scale) -> result`` (with a
``render()`` method) and a ``main()`` CLI entry, e.g.::

    python -m repro.experiments.figure5
"""

from repro.experiments.config import (
    APP_SEEDS,
    BH_LINE_SIZES,
    DEFAULT_LINE_SIZES,
    FIGURE7_LINE_SIZE,
    experiment_config,
    line_sizes_for,
)
from repro.experiments.runner import ExperimentRunner, RunSpec

__all__ = [
    "APP_SEEDS",
    "BH_LINE_SIZES",
    "DEFAULT_LINE_SIZES",
    "FIGURE7_LINE_SIZE",
    "ExperimentRunner",
    "RunSpec",
    "experiment_config",
    "line_sizes_for",
]
