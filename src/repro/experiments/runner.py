"""Shared experiment runner: execute app variants on canonical machines.

Experiments describe *what* to run as a matrix of
``(application, variant, line size)``; this module executes the matrix,
memoising results so Figure 5 and Figure 6 (which share their runs, as
in the paper) simulate each configuration only once per process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import get_application
from repro.apps.base import AppResult, Variant
from repro.experiments.config import APP_SEEDS, experiment_config


@dataclass(frozen=True)
class RunSpec:
    """One simulation to perform."""

    app: str
    variant: Variant
    line_size: int
    scale: float = 1.0

    def seed(self) -> int:
        return APP_SEEDS.get(self.app, 1)


class ExperimentRunner:
    """Executes run specs with per-process memoisation.

    Parameters
    ----------
    scale:
        Workload scale applied to every run (tests use small values).
    verbose:
        Print one progress line per completed simulation.
    """

    def __init__(self, scale: float = 1.0, verbose: bool = False) -> None:
        self.scale = scale
        self.verbose = verbose
        self._cache: dict[RunSpec, AppResult] = {}

    def run(self, app: str, variant: Variant, line_size: int) -> AppResult:
        spec = RunSpec(app, variant, line_size, self.scale)
        result = self._cache.get(spec)
        if result is None:
            application = get_application(app, scale=self.scale, seed=spec.seed())
            result = application.run(variant, experiment_config(line_size))
            self._cache[spec] = result
            if self.verbose:
                print(
                    f"  ran {app:10s} {variant.value:4s} line={line_size:3d} "
                    f"cycles={result.stats.cycles:12.0f}"
                )
        return result

    def checksum_match(self, app: str, variants: list[Variant], line_size: int) -> bool:
        """True if every variant produced the same checksum (safety check)."""
        checksums = {
            self.run(app, variant, line_size).checksum for variant in variants
        }
        return len(checksums) == 1
