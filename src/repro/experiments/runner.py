"""Shared experiment runner: capture-once-replay-many over run specs.

Experiments describe *what* to run as a matrix of
``(application, variant, line size)``; this module executes the matrix.
Since the machine is trace-driven, each distinct reference stream is
**captured once** (a direct, recorded run) and every other cell sharing
that stream is **replayed** through its own config via
:mod:`repro.trace` -- skipping the application logic entirely while
reproducing direct-run statistics exactly.  Results are memoised
per-process, optionally persisted in an on-disk artifact store (so a
second invocation skips capture *and* replay), and batches can shard
across a process pool (:meth:`ExperimentRunner.prime`).

Progress reporting goes through :mod:`repro.core.debug` logging (to
stderr), never ``print``: parallel workers must not interleave garbage
into the rendered artifacts on stdout.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Iterable

from repro.adapt.config import DEFAULT_HEATMAP_REGION, AdaptConfig
from repro.apps.base import AppResult, Variant
from repro.core.debug import enable_progress_logging, get_logger
from repro.experiments.config import APP_SEEDS
from repro.obs import Registry
from repro.trace.batch import BatchCellError, group_by_trace, run_batch_group
from repro.trace.store import ArtifactStore
from repro.trace.sweep import (
    SweepError,
    SweepTask,
    batch_label,
    execute_sweep,
    log_progress,
    run_task,
)


@dataclass(frozen=True)
class RunSpec:
    """One simulation to perform.

    The seed is an explicit field (not derived on the fly) so the memo
    key -- and every cache key downstream of it -- stays correct even if
    per-app seeds are ever varied by the caller.
    """

    app: str
    variant: Variant
    line_size: int
    scale: float = 1.0
    seed: int = 1
    timeline_interval: int = 0
    events_capacity: int = 0
    #: L1 miss-path mechanism and sizing knobs (see
    #: :mod:`repro.cache.misspath`); machine config, like the timeline
    #: knobs above.
    mechanism: str = "none"
    vc_entries: int = 8
    mc_entries: int = 8
    sb_count: int = 4
    sb_depth: int = 4
    #: Adaptive relocation policy config (``None`` = no engine); flows
    #: into the cell's workload identity via the sweep task.
    adapt: AdaptConfig | None = None
    #: Heatmap region granularity (bytes) for timeline/adapt sampling.
    heatmap_region: int = DEFAULT_HEATMAP_REGION

    @classmethod
    def make(
        cls,
        app: str,
        variant: Variant,
        line_size: int,
        scale: float,
        timeline_interval: int = 0,
        events_capacity: int = 0,
        mechanism: str = "none",
        vc_entries: int = 8,
        mc_entries: int = 8,
        sb_count: int = 4,
        sb_depth: int = 4,
        adapt: AdaptConfig | None = None,
        heatmap_region: int = DEFAULT_HEATMAP_REGION,
    ) -> "RunSpec":
        """Build a spec with the app's canonical seed resolved."""
        return cls(
            app,
            variant,
            line_size,
            scale,
            APP_SEEDS.get(app, 1),
            timeline_interval,
            events_capacity,
            mechanism,
            vc_entries,
            mc_entries,
            sb_count,
            sb_depth,
            adapt,
            heatmap_region,
        )

    def task(self) -> SweepTask:
        return SweepTask(
            app=self.app,
            variant=self.variant.value,
            line_size=self.line_size,
            scale=self.scale,
            seed=self.seed,
            timeline_interval=self.timeline_interval,
            events_capacity=self.events_capacity,
            mechanism=self.mechanism,
            vc_entries=self.vc_entries,
            mc_entries=self.mc_entries,
            sb_count=self.sb_count,
            sb_depth=self.sb_depth,
            adapt=self.adapt,
            heatmap_region=self.heatmap_region,
        )

    @property
    def cell_id(self) -> str:
        """Human-readable cell identity used to key timeline sections."""
        base = f"{self.app}/{self.line_size}B/{self.variant.value}"
        if self.mechanism != "none":
            base = f"{base}/{self.mechanism}"
        if self.adapt is not None:
            base = f"{base}/{self.adapt.policy}"
        return base


class ExperimentRunner:
    """Executes run specs with memoisation, caching, and sharding.

    Parameters
    ----------
    scale:
        Workload scale applied to every run (tests use small values).
    verbose:
        Log one progress line per completed simulation (via the
        ``repro`` logger, on stderr).
    jobs:
        Process-pool width for :meth:`prime`; 1 (the default) runs
        everything in-process.
    trace_dir:
        Root of the on-disk artifact store.  ``None`` keeps traces
        in-memory only (nothing persists, but capture-once-replay-many
        still applies within the process).
    use_cache:
        When False, ignore and do not populate ``trace_dir`` -- every
        invocation starts cold.  Parallel priming then shards through a
        throwaway temporary store instead.
    batch:
        When True (the default), :meth:`prime` groups cells by trace key
        and runs each group through the batch replay engine
        (:mod:`repro.trace.batch`): one decode per trace, N configs
        through the shared stream, with the exec-specialized kernel
        where the config allows.  Results are bit-identical either way
        (the parity suites enforce it); False preserves the legacy
        per-cell pipeline.
    """

    def __init__(
        self,
        scale: float = 1.0,
        verbose: bool = False,
        jobs: int = 1,
        trace_dir: str | None = None,
        use_cache: bool = True,
        timeline_interval: int = 0,
        events_capacity: int = 0,
        mechanism: str = "none",
        vc_entries: int = 8,
        mc_entries: int = 8,
        sb_count: int = 4,
        sb_depth: int = 4,
        batch: bool = True,
        heatmap_region: int = DEFAULT_HEATMAP_REGION,
        adapt_policy: str | None = None,
    ) -> None:
        self.scale = scale
        self.verbose = verbose
        self.jobs = max(1, jobs)
        self.batch = batch
        #: Timeline sampling knobs applied to every run (0 = off).
        self.timeline_interval = timeline_interval
        self.events_capacity = events_capacity
        #: Heatmap region granularity applied to every run.
        self.heatmap_region = heatmap_region
        #: CLI narrowing for the adapt experiment (``None`` = full
        #: policy matrix); recorded in the manifest when set.  Explicit
        #: specs carry their own :class:`AdaptConfig` -- this is not a
        #: per-run override.
        self.adapt_policy = adapt_policy
        #: Miss-path mechanism applied to runs built via :meth:`run`
        #: ("none" = baseline hierarchy).  Explicit specs handed to
        #: :meth:`run_spec`/:meth:`prime` keep their own mechanism --
        #: the misspath experiment mixes baseline and mechanism cells in
        #: one runner.
        self.mechanism = mechanism
        self.vc_entries = vc_entries
        self.mc_entries = mc_entries
        self.sb_count = sb_count
        self.sb_depth = sb_depth
        #: Per-cell timeline payloads keyed by ``RunSpec.cell_id``.
        self.timelines: dict[str, dict] = {}
        #: Per-cell adaptive-engine payloads (decisions, ledger,
        #: counters) keyed by ``RunSpec.cell_id``.
        self.adapt_payloads: dict[str, dict] = {}
        self._log = get_logger("experiments")
        if verbose:
            enable_progress_logging()
        self.store = (
            ArtifactStore(trace_dir) if (trace_dir and use_cache) else None
        )
        self._scratch: tempfile.TemporaryDirectory | None = None
        self._cache: dict[RunSpec, AppResult] = {}
        self._traces: dict = {}
        #: Replay engine per completed cell (``RunSpec.cell_id`` ->
        #: label from :mod:`repro.trace.batch`); manifests annotate
        #: their cells with it.
        self.engines: dict[str, str] = {}
        #: Instrumentation registry: ``runs.*`` outcome counters, the
        #: merged metric tree of every simulation this runner performed,
        #: and the span log experiment drivers time themselves with.
        self.obs = Registry()

    # ------------------------------------------------------------------
    def _with_knobs(self, spec: RunSpec) -> RunSpec:
        """Apply this runner's timeline/events/heatmap knobs to a spec."""
        if (
            spec.timeline_interval == self.timeline_interval
            and spec.events_capacity == self.events_capacity
            and spec.heatmap_region == self.heatmap_region
        ):
            return spec
        from dataclasses import replace

        return replace(
            spec,
            timeline_interval=self.timeline_interval,
            events_capacity=self.events_capacity,
            heatmap_region=self.heatmap_region,
        )

    def _record(
        self, spec: RunSpec, result: AppResult, how: str, engine: str = "sequential"
    ) -> None:
        """Fold one completed simulation into the runner's registry."""
        self.obs.counter(f"runs.{how}").inc()
        self.obs.counter(f"runs.engine.{engine.replace('+', '_')}").inc()
        self.engines[spec.cell_id] = engine
        self.obs.absorb(result.stats.to_snapshot())
        if result.timeline is not None:
            self.timelines[spec.cell_id] = result.timeline
        adapt_payload = result.extras.get("adapt")
        if adapt_payload:
            # Adaptive cells surface their engine counters in the
            # manifest's metric tree under ``adapt.*`` (the /v3 schema
            # forbids new top-level sections); the full per-decision
            # audit trail rides the experiment's own cells/summary.
            for name, value in sorted(adapt_payload["counters"].items()):
                self.obs.counter(f"adapt.{name}").inc(value)
            self.adapt_payloads[spec.cell_id] = adapt_payload

    def run(self, app: str, variant: Variant, line_size: int) -> AppResult:
        return self.run_spec(
            RunSpec.make(
                app,
                variant,
                line_size,
                self.scale,
                self.timeline_interval,
                self.events_capacity,
                self.mechanism,
                self.vc_entries,
                self.mc_entries,
                self.sb_count,
                self.sb_depth,
            )
        )

    def run_spec(self, spec: RunSpec) -> AppResult:
        """Execute one explicit spec (memoised), keeping all its fields.

        Unlike :meth:`run` this does not substitute the runner's
        mechanism knobs, only its timeline knobs -- it is how the
        misspath experiment runs a mixed mechanism matrix through one
        memo/metric tree.
        """
        spec = self._with_knobs(spec)
        result = self._cache.get(spec)
        if result is None:
            result, how = run_task(spec.task(), self.store, self._traces)
            self._cache[spec] = result
            self._record(spec, result, how)
            if self.verbose:
                log_progress(spec.task(), result, how)
        else:
            # Memo hits are counted but not re-absorbed: the metric tree
            # reflects simulation work, and a memoized cell did none.
            self.obs.counter("runs.memoized").inc()
        return result

    def prime(self, specs: Iterable[RunSpec]) -> None:
        """Fill the memo for ``specs``, sharding across ``jobs`` workers.

        Figures then assemble their matrices through :meth:`run` at
        memo-hit speed.  In batch mode (the default) cells group by
        trace key so each stream is decoded once for all of its configs
        -- in-process when ``jobs == 1``, sharded by group otherwise.
        """
        todo = [
            spec
            for spec in dict.fromkeys(
                self._with_knobs(spec) for spec in specs
            )
            if spec not in self._cache
        ]
        if not todo:
            return
        by_task = {spec.task(): spec for spec in todo}
        if self.jobs <= 1 or len(todo) == 1:
            if not self.batch:
                for spec in todo:
                    self.run_spec(spec)
                return
            groups = group_by_trace(list(by_task))
            for key, group in groups.items():
                try:
                    outcomes = run_batch_group(group, self.store, self._traces)
                except BatchCellError as exc:
                    raise SweepError(exc.task, exc) from exc
                for outcome in outcomes:
                    spec = by_task[outcome.task]
                    self._cache[spec] = outcome.result
                    self._record(spec, outcome.result, outcome.how, outcome.engine)
                    if self.verbose:
                        log_progress(
                            outcome.task,
                            outcome.result,
                            outcome.how,
                            engine=outcome.engine,
                            batch=batch_label(key, group),
                        )
            return
        engines: dict = {}
        outcomes = execute_sweep(
            list(by_task),
            self._sweep_store(),
            jobs=self.jobs,
            verbose=self.verbose,
            batch=self.batch,
            engines=engines,
        )
        for task, (result, how) in outcomes.items():
            spec = by_task[task]
            self._cache[spec] = result
            self._record(spec, result, how, engines.get(task, "sequential"))

    def _sweep_store(self) -> ArtifactStore:
        """The persistent store, or a lazily created throwaway one."""
        if self.store is not None:
            return self.store
        if self._scratch is None:
            self._scratch = tempfile.TemporaryDirectory(prefix="repro-sweep-")
        return ArtifactStore(self._scratch.name)

    # ------------------------------------------------------------------
    def span(self, name: str):
        """Time a region (e.g. one artifact build) against the registry."""
        return self.obs.span(name)

    def trace_hashes(self) -> dict[str, str]:
        """Content hash of every trace this process touched, by trace key.

        Covers in-process captures and loads; cells simulated inside
        pool workers (parallel :meth:`prime`) coordinate through the
        artifact store and are not re-read here.
        """
        return {
            key: trace.content_hash for key, trace in sorted(self._traces.items())
        }

    def seeds(self) -> dict[str, int]:
        """Workload seed for every app this runner has simulated."""
        return {
            spec.app: spec.seed
            for spec in sorted(self._cache, key=lambda s: s.app)
        }

    def manifest(
        self,
        artifact: str,
        cells: Iterable[dict] = (),
        summary: dict | None = None,
    ) -> dict:
        """Schema-validated run manifest for ``artifact`` (see repro.obs).

        Carries this runner's full configuration, seeds, trace content
        hashes, span timeline, and merged metric tree; the caller supplies
        the artifact-specific cells and summary.
        """
        from repro.obs import build_manifest

        timeline_section = None
        events_section = None
        if self.timelines:
            timeline_cells: dict[str, dict] = {}
            event_cells: dict[str, dict] = {}
            for cell_id, payload in sorted(self.timelines.items()):
                timeline_cells[cell_id] = {
                    "sample_interval": payload["sample_interval"],
                    "window_count": payload["window_count"],
                    "windows": payload["windows"],
                    "heatmap": payload["heatmap"],
                }
                if payload.get("events"):
                    event_cells[cell_id] = payload["events"]
            timeline_section = {"cells": timeline_cells}
            if event_cells:
                events_section = {"cells": event_cells}
        run_section = {
            "scale": self.scale,
            "jobs": self.jobs,
            "cache": self.store is not None,
            "trace_dir": str(self.store.root) if self.store else None,
            "timeline_interval": self.timeline_interval,
            "events_capacity": self.events_capacity,
            "batch": self.batch,
        }
        if self.mechanism != "none":
            # Only mechanism-carrying runs grow the section, so baseline
            # manifests stay byte-identical to pre-misspath ones.
            run_section.update(
                mechanism=self.mechanism,
                vc_entries=self.vc_entries,
                mc_entries=self.mc_entries,
                sb_count=self.sb_count,
                sb_depth=self.sb_depth,
            )
        if self.heatmap_region != DEFAULT_HEATMAP_REGION:
            # Same gate style: default-region runs stay byte-identical.
            run_section["heatmap_region_bytes"] = self.heatmap_region
        if self.adapt_policy is not None:
            run_section["adapt_policy"] = self.adapt_policy
        return build_manifest(
            artifact,
            run=run_section,
            seeds=self.seeds(),
            metrics=self.obs.snapshot(),
            spans=self.obs.spans,
            cells=self._annotate_engines(cells),
            trace_hashes=self.trace_hashes(),
            summary=summary,
            timeline=timeline_section,
            events=events_section,
        )

    def _annotate_engines(self, cells: Iterable[dict]) -> list[dict]:
        """Label each manifest cell with the engine that produced it.

        Cells are matched by id against the runner's engine records
        (populated per simulated cell); unmatched cells -- derived rows,
        synthetic ids -- pass through untouched.  Caller dicts are
        copied, never mutated.
        """
        annotated = []
        for entry in cells:
            engine = self.engines.get(entry.get("id"))
            if engine is not None:
                entry = dict(entry)
                entry["labels"] = {**entry.get("labels", {}), "engine": engine}
            annotated.append(entry)
        return annotated

    # ------------------------------------------------------------------
    def checksum_match(self, app: str, variants: list[Variant], line_size: int) -> bool:
        """True if every variant produced the same checksum (safety check)."""
        checksums = {
            self.run(app, variant, line_size).checksum for variant in variants
        }
        return len(checksums) == 1


def specs_for_artifacts(
    artifacts: Iterable[str],
    scale: float,
    mechanism: str = "none",
    vc_entries: int = 8,
    mc_entries: int = 8,
    sb_count: int = 4,
    sb_depth: int = 4,
    adapt_policy: str | None = None,
) -> list[RunSpec]:
    """The union run matrix behind the named paper artifacts.

    Used by the CLI to prime the runner (in parallel, when ``--jobs`` is
    given) before the figure drivers assemble their tables from the memo.
    ``mechanism`` and the sizing knobs apply to every paper-artifact
    cell (the CLI's ``--mechanism`` semantics); the ``misspath``
    artifact instead expands its own mechanism matrix -- the full zoo,
    or ``("none", mechanism)`` when one was requested.
    """
    from repro.apps import FIGURE5_APPS
    from repro.adapt import experiment as adapt_experiment
    from repro.experiments import figure7, figure10, misspath, table1
    from repro.experiments.config import FIGURE7_LINE_SIZE, line_sizes_for

    knobs = dict(
        mechanism=mechanism,
        vc_entries=vc_entries,
        mc_entries=mc_entries,
        sb_count=sb_count,
        sb_depth=sb_depth,
    )
    specs: list[RunSpec] = []
    for artifact in artifacts:
        if artifact == "misspath":
            specs += misspath.specs(
                scale,
                mechanisms=misspath.mechanism_matrix(mechanism),
                vc_entries=vc_entries,
                mc_entries=mc_entries,
                sb_count=sb_count,
                sb_depth=sb_depth,
            )
        elif artifact == "adapt":
            specs += adapt_experiment.specs(
                scale,
                policies=adapt_experiment.policy_matrix(adapt_policy),
            )
        elif artifact == "table1":
            specs += [
                RunSpec.make(app, Variant.L, table1.LINE_SIZE, scale, **knobs)
                for app in table1.TABLE1_APPS
            ]
        elif artifact in ("figure5", "figure6"):
            specs += [
                RunSpec.make(app, variant, line_size, scale, **knobs)
                for app in FIGURE5_APPS
                for line_size in line_sizes_for(app)
                for variant in (Variant.N, Variant.L)
            ]
        elif artifact == "figure7":
            specs += [
                RunSpec.make(app, variant, FIGURE7_LINE_SIZE, scale, **knobs)
                for app in FIGURE5_APPS
                for variant in figure7.SCHEMES
            ]
        elif artifact == "figure10":
            specs += [
                RunSpec.make("smv", variant, figure10.LINE_SIZE, scale, **knobs)
                for variant in figure10.SCHEMES
            ]
    return list(dict.fromkeys(specs))
