"""Miss-path mechanism matrix: who absorbs the conflict misses?

The paper's layout optimizations reshuffle memory on purpose, which
changes *which* L1 misses occur -- and a question the paper could not
ask is whether a small victim cache, miss cache, or set of stream
buffers (:mod:`repro.cache.misspath`) would have absorbed the misses
the optimizations induce or remove.  This experiment runs the Figure 5
app x line-size x variant matrix once per mechanism and reports, per
cell:

* the fraction of that cell's own full misses a stage absorbed
  (``absorbed / full misses``), and
* cycles and below-L1 fill traffic normalized to the same
  ``(app, line size, variant)`` cell with no mechanism,

so the headline comparison reads directly: how much of the miss stream
each mechanism soaks up with forwarding-style layout optimization on
(``L``) versus off (``N``), and what that does to execution time.  The
``none`` rows are the exact baseline cells (normalized columns are
1.00 by construction) and share their traces -- and, in one runner,
their memo entries -- with Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.apps import FIGURE5_APPS
from repro.apps.base import Variant
from repro.cache.misspath import MECHANISMS
from repro.experiments.config import line_sizes_for
from repro.experiments.report import percent, render_table
from repro.experiments.runner import ExperimentRunner, RunSpec

#: Matrix order: baseline first so every later row normalizes against it.
DEFAULT_MECHANISMS = MECHANISMS


def mechanism_matrix(mechanism: str = "none") -> tuple[str, ...]:
    """The mechanism axis to sweep for a CLI ``--mechanism`` request.

    The full zoo by default; a specific request narrows the matrix to
    ``("none", mechanism)`` -- the baseline rows are always needed for
    normalization (this is also what keeps the CI smoke cell cheap).
    """
    if mechanism == "none":
        return DEFAULT_MECHANISMS
    return ("none", mechanism)


@dataclass
class MisspathCell:
    """One (mechanism, app, line size, variant) measurement."""

    mechanism: str
    app: str
    line_size: int
    variant: Variant
    cycles: float
    #: This cell's own L1 full misses (loads + stores).
    full_misses: int
    #: Full misses served by a miss-path stage instead of the L2.
    absorbed: int
    l2_misses: int
    #: Bytes filled into L1 from below (stage hits move no bus bytes).
    fill_bytes: int
    #: ``absorbed / full_misses`` (0 when there were no misses).
    absorption: float = 0.0
    #: Relative to the same (app, line, variant) cell with mechanism
    #: "none"; 1.0 for the baseline rows themselves.
    normalized_cycles: float = 1.0
    normalized_fills: float = 1.0


@dataclass
class MisspathResult:
    cells: list[MisspathCell] = field(default_factory=list)
    #: (mechanism, variant) -> mean absorption across apps/lines.
    mean_absorption: dict[tuple[str, str], float] = field(default_factory=dict)
    #: (mechanism, variant) -> mean normalized cycles across apps/lines.
    mean_normalized_cycles: dict[tuple[str, str], float] = field(
        default_factory=dict
    )

    def cell(
        self, mechanism: str, app: str, line_size: int, variant: Variant
    ) -> MisspathCell:
        for cell in self.cells:
            if (cell.mechanism, cell.app, cell.line_size, cell.variant) == (
                mechanism,
                app,
                line_size,
                variant,
            ):
                return cell
        raise KeyError((mechanism, app, line_size, variant))

    def render(self) -> str:
        rows = [
            (
                cell.mechanism,
                cell.app,
                cell.line_size,
                cell.variant.value,
                f"{cell.absorption:.3f}",
                f"{cell.normalized_cycles:.3f}",
                f"{cell.normalized_fills:.3f}",
                cell.full_misses,
                cell.l2_misses,
            )
            for cell in self.cells
        ]
        table = render_table(
            ["Mechanism", "App", "Line", "Case", "Absorbed",
             "Norm.time", "Norm.fills", "FullMiss", "L2Miss"],
            rows,
            title=(
                "Miss-path mechanisms: absorption and normalized results "
                "(vs mechanism=none)"
            ),
        )
        summary_rows = [
            (
                mechanism,
                variant,
                percent(self.mean_absorption[(mechanism, variant)]),
                f"{self.mean_normalized_cycles[(mechanism, variant)]:.3f}",
            )
            for (mechanism, variant) in sorted(self.mean_absorption)
        ]
        summary = render_table(
            ["Mechanism", "Case", "MeanAbsorbed", "MeanNorm.time"],
            summary_rows,
            title="Headline: conflict-miss absorption per mechanism, N vs L",
        )
        return f"{table}\n\n{summary}"


def specs(
    scale: float,
    mechanisms: tuple[str, ...] = DEFAULT_MECHANISMS,
    apps: tuple[str, ...] = FIGURE5_APPS,
    vc_entries: int = 8,
    mc_entries: int = 8,
    sb_count: int = 4,
    sb_depth: int = 4,
) -> list[RunSpec]:
    """The full run matrix (used by the CLI's parallel prime)."""
    out: list[RunSpec] = []
    for mechanism in mechanisms:
        for app in apps:
            for line_size in line_sizes_for(app):
                for variant in (Variant.N, Variant.L):
                    spec = RunSpec.make(app, variant, line_size, scale)
                    if mechanism != "none":
                        spec = replace(
                            spec,
                            mechanism=mechanism,
                            vc_entries=vc_entries,
                            mc_entries=mc_entries,
                            sb_count=sb_count,
                            sb_depth=sb_depth,
                        )
                    out.append(spec)
    return out


def run(
    runner: ExperimentRunner | None = None,
    scale: float = 1.0,
    apps: tuple[str, ...] = FIGURE5_APPS,
    mechanisms: tuple[str, ...] | None = None,
) -> MisspathResult:
    """Execute the matrix and assemble the normalized-results report.

    ``mechanisms`` defaults to the runner's ``--mechanism`` request via
    :func:`mechanism_matrix` (the full zoo when the runner is baseline).
    """
    runner = runner or ExperimentRunner(scale=scale)
    if mechanisms is None:
        mechanisms = mechanism_matrix(runner.mechanism)
    result = MisspathResult()
    baselines: dict[tuple[str, int, Variant], MisspathCell] = {}
    for mechanism in mechanisms:
        for spec in specs(
            runner.scale,
            mechanisms=(mechanism,),
            apps=apps,
            vc_entries=runner.vc_entries,
            mc_entries=runner.mc_entries,
            sb_count=runner.sb_count,
            sb_depth=runner.sb_depth,
        ):
            stats = runner.run_spec(spec).stats
            full = stats.l1_load_misses_full + stats.l1_store_misses_full
            cell = MisspathCell(
                mechanism=mechanism,
                app=spec.app,
                line_size=spec.line_size,
                variant=spec.variant,
                cycles=stats.cycles,
                full_misses=full,
                absorbed=stats.misspath.get("hits", 0),
                l2_misses=stats.l2_misses,
                fill_bytes=stats.l1_l2_bytes + stats.l2_mem_bytes,
                absorption=(
                    stats.misspath.get("hits", 0) / full if full else 0.0
                ),
            )
            key = (cell.app, cell.line_size, cell.variant)
            if mechanism == "none":
                baselines[key] = cell
            else:
                base = baselines.get(key)
                if base is not None:
                    if base.cycles:
                        cell.normalized_cycles = cell.cycles / base.cycles
                    if base.fill_bytes:
                        cell.normalized_fills = (
                            cell.fill_bytes / base.fill_bytes
                        )
            result.cells.append(cell)
    for mechanism in mechanisms:
        for variant in (Variant.N, Variant.L):
            group = [
                cell
                for cell in result.cells
                if cell.mechanism == mechanism and cell.variant is variant
            ]
            if not group:
                continue
            key = (mechanism, variant.value)
            result.mean_absorption[key] = sum(
                cell.absorption for cell in group
            ) / len(group)
            result.mean_normalized_cycles[key] = sum(
                cell.normalized_cycles for cell in group
            ) / len(group)
    return result


def manifest(result: MisspathResult, runner: ExperimentRunner) -> dict:
    """Schema-validated run manifest for the mechanism matrix."""
    from repro.obs import cell

    cells = [
        cell(
            f"{c.app}/{c.line_size}B/{c.variant.value}/{c.mechanism}",
            labels={
                "app": c.app,
                "line_size": c.line_size,
                "variant": c.variant.value,
                "mechanism": c.mechanism,
            },
            values={
                "cycles": c.cycles,
                "full_misses": c.full_misses,
                "absorbed": c.absorbed,
                "absorption": c.absorption,
                "l2_misses": c.l2_misses,
                "fill_bytes": c.fill_bytes,
                "normalized_cycles": c.normalized_cycles,
                "normalized_fills": c.normalized_fills,
            },
        )
        for c in result.cells
    ]
    summary: dict[str, float] = {}
    for (mechanism, variant), value in sorted(result.mean_absorption.items()):
        summary[f"absorption.{mechanism}.{variant}"] = value
    for (mechanism, variant), value in sorted(
        result.mean_normalized_cycles.items()
    ):
        summary[f"normalized_cycles.{mechanism}.{variant}"] = value
    return runner.manifest("misspath", cells, summary)


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner(verbose=True)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
