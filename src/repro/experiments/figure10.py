"""Figure 10: the impact of forwarding overhead (the SMV case study).

SMV is the one application whose relocation leaves stale pointers in hot
paths, so the forwarding safety net fires constantly.  Four panels:

* **(a)** execution time of ``N`` (no optimization), ``L`` (linearized,
  forwarding occurs) and ``Perf`` (linearized with free pointer fixup);
* **(b)** load and store D-cache miss counts per scheme;
* **(c)** fraction of loads and stores requiring forwarding hops
  (paper: 7.7% of loads, 1.7% of stores, one hop each);
* **(d)** average cycles to complete a load/store, split into
  *forwarding* and *ordinary* (hit/miss latency) time.

Paper shapes: L is slower than N (dereference cost + cache pollution
from touching old locations); Perf recovers and only marginally beats N
(the layout cannot favour hash-table and tree access patterns at once).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import Variant
from repro.experiments.report import render_table
from repro.experiments.runner import ExperimentRunner

LINE_SIZE = 32
SCHEMES = (Variant.N, Variant.L, Variant.PERF)


@dataclass
class Figure10Row:
    variant: Variant
    cycles: float
    load_misses: int
    store_misses: int
    loads_forwarded_fraction: float
    stores_forwarded_fraction: float
    avg_load_ordinary: float
    avg_load_forwarding: float
    avg_store_ordinary: float
    avg_store_forwarding: float


@dataclass
class Figure10Result:
    rows: list[Figure10Row] = field(default_factory=list)

    def row(self, variant: Variant) -> Figure10Row:
        for row in self.rows:
            if row.variant is variant:
                return row
        raise KeyError(variant)

    def render(self) -> str:
        time_rows = [
            (row.variant.value, f"{row.cycles:.0f}",
             f"{row.cycles / self.rows[0].cycles:.3f}")
            for row in self.rows
        ]
        miss_rows = [
            (row.variant.value, row.load_misses, row.store_misses)
            for row in self.rows
        ]
        fwd_rows = [
            (
                row.variant.value,
                f"{100 * row.loads_forwarded_fraction:.2f}%",
                f"{100 * row.stores_forwarded_fraction:.2f}%",
            )
            for row in self.rows
        ]
        latency_rows = [
            (
                row.variant.value,
                f"{row.avg_load_ordinary:.2f}",
                f"{row.avg_load_forwarding:.2f}",
                f"{row.avg_store_ordinary:.2f}",
                f"{row.avg_store_forwarding:.2f}",
            )
            for row in self.rows
        ]
        return "\n\n".join(
            [
                render_table(["Scheme", "Cycles", "Norm."], time_rows,
                             title="Figure 10(a): SMV execution time"),
                render_table(["Scheme", "Load misses", "Store misses"], miss_rows,
                             title="Figure 10(b): D-cache misses"),
                render_table(["Scheme", "Loads forwarded", "Stores forwarded"],
                             fwd_rows,
                             title="Figure 10(c): references requiring forwarding"),
                render_table(
                    ["Scheme", "Load ord.", "Load fwd.", "Store ord.", "Store fwd."],
                    latency_rows,
                    title="Figure 10(d): average cycles per reference",
                ),
            ]
        )


def run(runner: ExperimentRunner | None = None, scale: float = 1.0) -> Figure10Result:
    runner = runner or ExperimentRunner(scale=scale)
    result = Figure10Result()
    for variant in SCHEMES:
        stats = runner.run("smv", variant, LINE_SIZE).stats
        result.rows.append(
            Figure10Row(
                variant=variant,
                cycles=stats.cycles,
                load_misses=stats.load_misses,
                store_misses=stats.store_misses,
                loads_forwarded_fraction=stats.loads.forwarded_fraction,
                stores_forwarded_fraction=stats.stores.forwarded_fraction,
                avg_load_ordinary=stats.loads.avg_ordinary,
                avg_load_forwarding=stats.loads.avg_forwarding,
                avg_store_ordinary=stats.stores.avg_ordinary,
                avg_store_forwarding=stats.stores.avg_forwarding,
            )
        )
    return result


def manifest(result: Figure10Result, runner: ExperimentRunner) -> dict:
    """Schema-validated run manifest for this figure."""
    from repro.obs import cell

    baseline = result.rows[0].cycles
    cells = [
        cell(
            f"smv/{row.variant.value}",
            labels={"app": "smv", "variant": row.variant.value,
                    "line_size": LINE_SIZE},
            values={
                "cycles": row.cycles,
                "normalized": row.cycles / baseline if baseline else 0.0,
                "load_misses": row.load_misses,
                "store_misses": row.store_misses,
                "loads_forwarded_fraction": row.loads_forwarded_fraction,
                "stores_forwarded_fraction": row.stores_forwarded_fraction,
                "avg_load_ordinary": row.avg_load_ordinary,
                "avg_load_forwarding": row.avg_load_forwarding,
                "avg_store_ordinary": row.avg_store_ordinary,
                "avg_store_forwarding": row.avg_store_forwarding,
            },
        )
        for row in result.rows
    ]
    return runner.manifest("figure10", cells)


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner(verbose=True)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
