"""Figure 5: execution-time breakdown of the locality optimizations.

For each of the seven applications (SMV is held out for Figure 10, as in
the paper) and each line size, the unoptimized (``N``) and layout-
optimized (``L``) cases are simulated and their graduation slots broken
into *busy*, *load stall*, *store stall*, and *inst stall* -- the paper's
stacked bars -- with the speedup of L over N printed per pair.

Shapes to reproduce (Section 5.1):

* unoptimized performance generally degrades as lines get longer;
* L beats N at every line size for every application except Compress;
* speedups grow with line size, the largest gains at 128 B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import FIGURE5_APPS
from repro.apps.base import Variant
from repro.cpu.timing import SlotBreakdown
from repro.experiments.config import line_sizes_for
from repro.experiments.report import (
    percent,
    render_stacked_bar,
    render_table,
    speedup,
)
from repro.experiments.runner import ExperimentRunner


@dataclass
class Figure5Cell:
    """One bar of the figure."""

    app: str
    line_size: int
    variant: Variant
    slots: SlotBreakdown
    cycles: float
    #: Total normalised to this app's N case at its smallest line size.
    normalized_total: float = 0.0


@dataclass
class Figure5Result:
    cells: list[Figure5Cell] = field(default_factory=list)
    #: (app, line_size) -> speedup of L over N.
    speedups: dict[tuple[str, int], float] = field(default_factory=dict)

    def cell(self, app: str, line_size: int, variant: Variant) -> Figure5Cell:
        for cell in self.cells:
            if (cell.app, cell.line_size, cell.variant) == (app, line_size, variant):
                return cell
        raise KeyError((app, line_size, variant))

    def render(self) -> str:
        rows = []
        for cell in self.cells:
            slots = cell.slots
            pair = (cell.app, cell.line_size)
            rows.append(
                (
                    cell.app,
                    cell.line_size,
                    cell.variant.value,
                    f"{cell.normalized_total:.2f}",
                    f"{slots.busy:.0f}",
                    f"{slots.load_stall:.0f}",
                    f"{slots.store_stall:.0f}",
                    f"{slots.inst_stall:.0f}",
                    percent(self.speedups[pair] - 1.0)
                    if cell.variant is Variant.L
                    else "",
                )
            )
        return render_table(
            ["App", "Line", "Case", "Norm.time", "Busy", "LoadStall",
             "StoreStall", "InstStall", "Speedup"],
            rows,
            title="Figure 5: execution time breakdown (graduation slots), N vs L",
        )

    def render_bars(self, width: int = 48) -> str:
        """The figure as stacked text bars (busy=#, load==, store=+, inst=.),
        each app's bars scaled to its tallest one -- the paper's visual."""
        lines = ["Figure 5 (bars): busy='#'  load stall='='  store stall='+'  inst stall='.'"]
        by_app: dict[str, list[Figure5Cell]] = {}
        for cell in self.cells:
            by_app.setdefault(cell.app, []).append(cell)
        for app, cells in by_app.items():
            tallest = max(cell.slots.total for cell in cells)
            lines.append(f"\n{app}:")
            for cell in cells:
                slots = cell.slots
                bar = render_stacked_bar(
                    [
                        ("busy", slots.busy),
                        ("load", slots.load_stall),
                        ("store", slots.store_stall),
                        ("inst", slots.inst_stall),
                    ],
                    total_width=width,
                    scale_max=tallest,
                )
                lines.append(
                    f"  {cell.line_size:>4}B {cell.variant.value:>2} |{bar}"
                )
        return "\n".join(lines)


def run(runner: ExperimentRunner | None = None, scale: float = 1.0,
        apps: tuple[str, ...] = FIGURE5_APPS) -> Figure5Result:
    runner = runner or ExperimentRunner(scale=scale)
    result = Figure5Result()
    for app in apps:
        sizes = line_sizes_for(app)
        baseline_cycles = None
        for line_size in sizes:
            pair = {}
            for variant in (Variant.N, Variant.L):
                outcome = runner.run(app, variant, line_size)
                stats = outcome.stats
                if baseline_cycles is None:
                    baseline_cycles = stats.cycles  # N at smallest line
                cell = Figure5Cell(
                    app=app,
                    line_size=line_size,
                    variant=variant,
                    slots=stats.slots,
                    cycles=stats.cycles,
                    normalized_total=stats.cycles / baseline_cycles,
                )
                result.cells.append(cell)
                pair[variant] = stats.cycles
            result.speedups[(app, line_size)] = speedup(
                pair[Variant.N], pair[Variant.L]
            )
    return result


def manifest(result: Figure5Result, runner: ExperimentRunner) -> dict:
    """Schema-validated run manifest for this figure."""
    from repro.obs import cell

    cells = [
        cell(
            f"{c.app}/{c.line_size}B/{c.variant.value}",
            labels={
                "app": c.app,
                "line_size": c.line_size,
                "variant": c.variant.value,
            },
            values={
                "cycles": c.cycles,
                "normalized_total": c.normalized_total,
                "slots_busy": c.slots.busy,
                "slots_load_stall": c.slots.load_stall,
                "slots_store_stall": c.slots.store_stall,
                "slots_inst_stall": c.slots.inst_stall,
            },
        )
        for c in result.cells
    ]
    summary = {
        f"speedup.{app}.{line_size}": value
        for (app, line_size), value in sorted(result.speedups.items())
    }
    return runner.manifest("figure5", cells, summary)


def main() -> None:  # pragma: no cover - CLI entry
    result = run(ExperimentRunner(verbose=True))
    print(result.render())
    print()
    print(result.render_bars())


if __name__ == "__main__":  # pragma: no cover
    main()
