"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures to quantify the knobs its design
discussion argues about:

* **hop-limit sweep** -- Section 3.2's fast-counter limit: how often the
  accurate cycle check fires as the limit shrinks (it should be never,
  at any sane limit, for real workloads);
* **speculation on/off** -- Section 3.2's claim that data-dependence
  speculation makes delayed final-address generation harmless, and that
  misspeculation "almost never" occurs;
* **linearization-threshold sweep** -- Section 5.3's "arbitrarily set to
  50": how sensitive VIS is to the trigger threshold;
* **prefetch block-size sweep** -- Section 5.2 reports the best block
  size per case; this sweep regenerates that choice for Health.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.apps import get_application
from repro.apps.base import Variant
from repro.apps.health import Health
from repro.experiments.config import APP_SEEDS, experiment_config
from repro.experiments.report import render_table
from repro.obs import Registry


def _absorb(obs: Registry | None, stats) -> None:
    """Fold one study run's stats into the ablation registry (if any)."""
    if obs is not None:
        obs.counter("runs.captured").inc()
        obs.absorb(stats.to_snapshot())


@dataclass
class AblationResult:
    title: str
    headers: list[str]
    rows: list[tuple] = field(default_factory=list)

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)


def hop_limit_sweep(
    scale: float = 0.5,
    limits: tuple[int, ...] = (1, 2, 4, 16),
    obs: Registry | None = None,
) -> AblationResult:
    """How the fast hop-counter limit affects SMV's scheme L."""
    result = AblationResult(
        "Ablation: forwarding hop-limit (SMV, scheme L)",
        ["Hop limit", "Cycles", "Cycle checks", "Cycles detected"],
    )
    for limit in limits:
        config = replace(experiment_config(), hop_limit=limit)
        app = get_application("smv", scale=scale, seed=APP_SEEDS["smv"])
        outcome = app.run(Variant.L, config)
        _absorb(obs, outcome.stats)
        result.rows.append(
            (
                limit,
                f"{outcome.stats.cycles:.0f}",
                outcome.stats.cycle_checks,
                0,  # a detected cycle would have raised; reaching here means none
            )
        )
    return result


def speculation_ablation(
    scale: float = 0.5, obs: Registry | None = None
) -> AblationResult:
    """Dependence speculation on/off for the forwarding-heavy app (SMV)."""
    result = AblationResult(
        "Ablation: data-dependence speculation (SMV)",
        ["Scheme", "Speculation", "Cycles", "Loads checked", "Misspeculations"],
    )
    for variant in (Variant.N, Variant.L):
        for window in (32, 0):
            config = replace(experiment_config(), speculation_window=window)
            app = get_application("smv", scale=scale, seed=APP_SEEDS["smv"])
            outcome = app.run(variant, config)
            _absorb(obs, outcome.stats)
            result.rows.append(
                (
                    variant.value,
                    "on" if window else "off",
                    f"{outcome.stats.cycles:.0f}",
                    outcome.stats.speculation_loads_checked,
                    outcome.stats.misspeculations,
                )
            )
    return result


def linearize_threshold_sweep(
    scale: float = 0.5,
    thresholds: tuple[int, ...] = (10, 25, 50, 100, 400),
    obs: Registry | None = None,
) -> AblationResult:
    """Sensitivity of VIS to the in-library linearization threshold."""
    result = AblationResult(
        "Ablation: linearization threshold (VIS, scheme L)",
        ["Threshold", "Cycles", "Linearizations", "Pool bytes"],
    )
    for threshold in thresholds:
        app = get_application("vis", scale=scale, seed=APP_SEEDS["vis"])
        outcome = _run_vis_with_threshold(app, threshold)
        _absorb(obs, outcome.stats)
        result.rows.append(
            (
                threshold,
                f"{outcome.stats.cycles:.0f}",
                outcome.extras["linearizations"],
                outcome.stats.relocation.pool_bytes,
            )
        )
    return result


def _run_vis_with_threshold(app, threshold: int):
    """Run VIS's L variant with an explicit linearization threshold."""
    from repro.core.machine import Machine

    machine = Machine(experiment_config())
    # Reuse the app's workload but with a fixed threshold: patch the
    # scaled-threshold computation for this run only.
    original = app._scaled

    def patched(value, minimum=1):
        if value == 50:  # the threshold constant
            return max(1, threshold)
        return original(value, minimum)

    app._scaled = patched
    try:
        checksum, extras = app.execute(machine, Variant.L)
    finally:
        app._scaled = original
    from repro.apps.base import AppResult

    return AppResult("vis", Variant.L, checksum, machine.stats(), extras)


def prefetch_block_sweep(
    scale: float = 0.5,
    blocks: tuple[int, ...] = (1, 2, 4, 8),
    obs: Registry | None = None,
) -> AblationResult:
    """Best block-prefetch size for Health's LP scheme (Section 5.2)."""
    result = AblationResult(
        "Ablation: prefetch block size (Health, scheme LP)",
        ["Block lines", "Cycles", "PF instructions", "PF fills"],
    )
    saved = Health.PREFETCH_BLOCK
    try:
        for block in blocks:
            Health.PREFETCH_BLOCK = block
            app = get_application("health", scale=scale, seed=APP_SEEDS["health"])
            outcome = app.run(Variant.LP, experiment_config())
            _absorb(obs, outcome.stats)
            result.rows.append(
                (
                    block,
                    f"{outcome.stats.cycles:.0f}",
                    outcome.stats.prefetch_instructions,
                    outcome.stats.prefetch_fills,
                )
            )
    finally:
        Health.PREFETCH_BLOCK = saved
    return result


def pointer_compare_overhead(
    comparisons: int = 4000, relocated_fraction: float = 0.25
) -> AblationResult:
    """Cost of safe (final-address) pointer comparison (Section 2.1).

    The compiler must replace pointer comparisons that may involve
    relocated objects with explicit final-address lookups; the paper
    reports the resulting software overhead "does not present a
    problem".  This ablation measures it directly: a comparison-heavy
    loop run with raw equality versus ``ptr_eq``, over a pointer
    population of which some fraction is relocated.
    """
    from repro.core.machine import Machine
    from repro.core.pointer_ops import ptr_eq
    from repro.core.relocate import relocate
    from repro.runtime.rng import DeterministicRNG

    result = AblationResult(
        "Ablation: final-address pointer-comparison overhead",
        ["Comparison", "Cycles", "Overhead"],
    )
    cycles = {}
    for safe in (False, True):
        machine = Machine(experiment_config())
        rng = DeterministicRNG(2)
        pool = machine.create_pool(1 << 16)
        pointers = []
        for _ in range(64):
            obj = machine.malloc(16)
            if rng.random() < relocated_fraction:
                target = pool.allocate(16)
                relocate(machine, obj, target, 2)
            pointers.append(obj)
        start = machine.cycles
        matches = 0
        for _ in range(comparisons):
            left = pointers[rng.randint(len(pointers))]
            right = pointers[rng.randint(len(pointers))]
            if safe:
                matches += ptr_eq(machine, left, right)
            else:
                machine.execute(1)
                matches += left == right
        cycles["safe" if safe else "raw"] = machine.cycles - start
    overhead = cycles["safe"] / cycles["raw"] - 1.0
    result.rows.append(("raw ==", f"{cycles['raw']:.0f}", ""))
    result.rows.append(("ptr_eq (final address)", f"{cycles['safe']:.0f}",
                        f"+{100 * overhead:.1f}%"))
    return result


def run_all(
    scale: float = 0.5, obs: Registry | None = None
) -> list[AblationResult]:
    registry = obs if obs is not None else Registry()
    studies = (
        ("hop_limit", lambda: hop_limit_sweep(scale, obs=registry)),
        ("speculation", lambda: speculation_ablation(scale, obs=registry)),
        ("linearize_threshold",
         lambda: linearize_threshold_sweep(scale, obs=registry)),
        ("prefetch_block", lambda: prefetch_block_sweep(scale, obs=registry)),
        ("pointer_compare", lambda: pointer_compare_overhead()),
    )
    results = []
    for name, study in studies:
        with registry.span(f"ablations.{name}"):
            results.append(study())
    return results


_STUDY_SLUGS = {
    "Ablation: forwarding hop-limit (SMV, scheme L)": "hop_limit",
    "Ablation: data-dependence speculation (SMV)": "speculation",
    "Ablation: linearization threshold (VIS, scheme L)": "linearize_threshold",
    "Ablation: prefetch block size (Health, scheme LP)": "prefetch_block",
    "Ablation: final-address pointer-comparison overhead": "pointer_compare",
}


def manifest(
    results: list[AblationResult], scale: float, obs: Registry
) -> dict:
    """Schema-validated run manifest for the ablation suite."""
    from repro.experiments.config import APP_SEEDS
    from repro.obs import build_manifest, cell

    cells = []
    for result in results:
        slug = _STUDY_SLUGS.get(result.title, result.title)
        # Use as many leading columns as it takes to key rows uniquely
        # (the speculation study needs scheme AND on/off).
        width = 1
        while width < len(result.headers) and len(
            {tuple(map(str, row[:width])) for row in result.rows}
        ) < len(result.rows):
            width += 1
        for row in result.rows:
            values = {
                header.lower().replace(" ", "_"): value
                for header, value in zip(result.headers, row)
            }
            coords = "/".join(str(part) for part in row[:width])
            cells.append(cell(f"{slug}/{coords}", values=values))
    return build_manifest(
        "ablations",
        run={"scale": scale, "jobs": 1, "cache": False, "trace_dir": None},
        seeds=dict(APP_SEEDS),
        metrics=obs.snapshot(),
        spans=obs.spans,
        cells=cells,
    )


def main() -> None:  # pragma: no cover - CLI entry
    for ablation in run_all():
        print(ablation.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
