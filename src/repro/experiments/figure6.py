"""Figure 6: cache misses and memory-system bandwidth.

Shares its simulations with Figure 5 (pass the same runner).

* **Figure 6(a)** -- load D-cache misses, split into *partial* (combined
  with an outstanding miss) and *full* classes, normalised to each
  application's N case at its smallest line size.  Paper shape: the
  optimizations cut misses by >=35% in roughly half the (app, line)
  cases.
* **Figure 6(b)** -- bytes moved between L1 and L2 and between L2 and
  memory, same normalisation.  Paper shape: bandwidth consumption drops
  in nearly all cases, with >=2x reductions in a few.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import FIGURE5_APPS
from repro.apps.base import Variant
from repro.experiments.config import line_sizes_for
from repro.experiments.report import render_table
from repro.experiments.runner import ExperimentRunner


@dataclass
class MissCell:
    app: str
    line_size: int
    variant: Variant
    full: int
    partial: int
    normalized_total: float

    @property
    def total(self) -> int:
        return self.full + self.partial


@dataclass
class BandwidthCell:
    app: str
    line_size: int
    variant: Variant
    l1_l2_bytes: int
    l2_mem_bytes: int
    normalized_total: float

    @property
    def total(self) -> int:
        return self.l1_l2_bytes + self.l2_mem_bytes


@dataclass
class Figure6Result:
    misses: list[MissCell] = field(default_factory=list)
    bandwidth: list[BandwidthCell] = field(default_factory=list)

    def miss_cell(self, app: str, line_size: int, variant: Variant) -> MissCell:
        for cell in self.misses:
            if (cell.app, cell.line_size, cell.variant) == (app, line_size, variant):
                return cell
        raise KeyError((app, line_size, variant))

    def bandwidth_cell(self, app: str, line_size: int, variant: Variant) -> BandwidthCell:
        for cell in self.bandwidth:
            if (cell.app, cell.line_size, cell.variant) == (app, line_size, variant):
                return cell
        raise KeyError((app, line_size, variant))

    def miss_reduction(self, app: str, line_size: int) -> float:
        """Fractional load-miss reduction of L relative to N."""
        n = self.miss_cell(app, line_size, Variant.N).total
        opt = self.miss_cell(app, line_size, Variant.L).total
        return 1.0 - (opt / n) if n else 0.0

    def render(self) -> str:
        miss_rows = [
            (
                cell.app, cell.line_size, cell.variant.value,
                cell.full, cell.partial, cell.total,
                f"{cell.normalized_total:.2f}",
            )
            for cell in self.misses
        ]
        bw_rows = [
            (
                cell.app, cell.line_size, cell.variant.value,
                cell.l1_l2_bytes, cell.l2_mem_bytes,
                f"{cell.normalized_total:.2f}",
            )
            for cell in self.bandwidth
        ]
        return "\n\n".join(
            [
                render_table(
                    ["App", "Line", "Case", "Full", "Partial", "Total", "Norm."],
                    miss_rows,
                    title="Figure 6(a): load D-cache misses (full/partial)",
                ),
                render_table(
                    ["App", "Line", "Case", "L1<->L2 B", "L2<->Mem B", "Norm."],
                    bw_rows,
                    title="Figure 6(b): memory-system bandwidth consumption",
                ),
            ]
        )


def run(runner: ExperimentRunner | None = None, scale: float = 1.0,
        apps: tuple[str, ...] = FIGURE5_APPS) -> Figure6Result:
    runner = runner or ExperimentRunner(scale=scale)
    result = Figure6Result()
    for app in apps:
        sizes = line_sizes_for(app)
        baseline_misses = None
        baseline_bytes = None
        for line_size in sizes:
            for variant in (Variant.N, Variant.L):
                stats = runner.run(app, variant, line_size).stats
                if baseline_misses is None:
                    baseline_misses = max(1, stats.load_misses)
                    baseline_bytes = max(1, stats.total_bandwidth_bytes)
                result.misses.append(
                    MissCell(
                        app=app,
                        line_size=line_size,
                        variant=variant,
                        full=stats.l1_load_misses_full,
                        partial=stats.l1_load_misses_partial,
                        normalized_total=stats.load_misses / baseline_misses,
                    )
                )
                result.bandwidth.append(
                    BandwidthCell(
                        app=app,
                        line_size=line_size,
                        variant=variant,
                        l1_l2_bytes=stats.l1_l2_bytes,
                        l2_mem_bytes=stats.l2_mem_bytes,
                        normalized_total=(
                            stats.total_bandwidth_bytes / baseline_bytes
                        ),
                    )
                )
    return result


def manifest(result: Figure6Result, runner: ExperimentRunner) -> dict:
    """Schema-validated run manifest for this figure."""
    from repro.obs import cell

    cells = [
        cell(
            f"misses/{c.app}/{c.line_size}B/{c.variant.value}",
            labels={
                "panel": "a",
                "app": c.app,
                "line_size": c.line_size,
                "variant": c.variant.value,
            },
            values={
                "full": c.full,
                "partial": c.partial,
                "total": c.total,
                "normalized_total": c.normalized_total,
            },
        )
        for c in result.misses
    ] + [
        cell(
            f"bandwidth/{c.app}/{c.line_size}B/{c.variant.value}",
            labels={
                "panel": "b",
                "app": c.app,
                "line_size": c.line_size,
                "variant": c.variant.value,
            },
            values={
                "l1_l2_bytes": c.l1_l2_bytes,
                "l2_mem_bytes": c.l2_mem_bytes,
                "total": c.total,
                "normalized_total": c.normalized_total,
            },
        )
        for c in result.bandwidth
    ]
    summary = {
        f"miss_reduction.{c.app}.{c.line_size}": result.miss_reduction(
            c.app, c.line_size
        )
        for c in result.misses
        if c.variant is Variant.L
    }
    return runner.manifest("figure6", cells, summary)


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner(verbose=True)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
