"""Figure 7: interaction of locality optimizations with prefetching.

All four schemes at a fixed 32 B line size:

========  =====================================
``N``     original program
``L``     layout optimizations only
``NP``    software prefetching only
``LP``    layout optimizations + prefetching
========  =====================================

Shapes to reproduce (Section 5.2): layout optimization improves
prefetching effectiveness for the list-heavy applications (linearization
defeats the pointer-chasing problem), and for most applications where
locality improves, LP beats either technique alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import FIGURE5_APPS
from repro.apps.base import Variant
from repro.experiments.config import FIGURE7_LINE_SIZE
from repro.experiments.report import render_table, speedup
from repro.experiments.runner import ExperimentRunner

SCHEMES = (Variant.N, Variant.L, Variant.NP, Variant.LP)


@dataclass
class Figure7Cell:
    app: str
    variant: Variant
    cycles: float
    normalized: float
    prefetch_instructions: int
    prefetch_fills: int


@dataclass
class Figure7Result:
    cells: list[Figure7Cell] = field(default_factory=list)

    def cell(self, app: str, variant: Variant) -> Figure7Cell:
        for cell in self.cells:
            if (cell.app, cell.variant) == (app, variant):
                return cell
        raise KeyError((app, variant))

    def speedup_over_n(self, app: str, variant: Variant) -> float:
        return speedup(self.cell(app, Variant.N).cycles, self.cell(app, variant).cycles)

    def render(self) -> str:
        rows = [
            (
                cell.app,
                cell.variant.value,
                f"{cell.normalized:.2f}",
                f"{self.speedup_over_n(cell.app, cell.variant):.2f}x",
                cell.prefetch_instructions,
                cell.prefetch_fills,
            )
            for cell in self.cells
        ]
        return render_table(
            ["App", "Scheme", "Norm.time", "Speedup", "PF instr", "PF fills"],
            rows,
            title=f"Figure 7: prefetching x locality at {FIGURE7_LINE_SIZE}B lines",
        )


def run(runner: ExperimentRunner | None = None, scale: float = 1.0,
        apps: tuple[str, ...] = FIGURE5_APPS) -> Figure7Result:
    runner = runner or ExperimentRunner(scale=scale)
    result = Figure7Result()
    for app in apps:
        baseline = None
        for variant in SCHEMES:
            stats = runner.run(app, variant, FIGURE7_LINE_SIZE).stats
            if baseline is None:
                baseline = stats.cycles
            result.cells.append(
                Figure7Cell(
                    app=app,
                    variant=variant,
                    cycles=stats.cycles,
                    normalized=stats.cycles / baseline,
                    prefetch_instructions=stats.prefetch_instructions,
                    prefetch_fills=stats.prefetch_fills,
                )
            )
    return result


def manifest(result: Figure7Result, runner: ExperimentRunner) -> dict:
    """Schema-validated run manifest for this figure."""
    from repro.obs import cell

    cells = [
        cell(
            f"{c.app}/{c.variant.value}",
            labels={
                "app": c.app,
                "variant": c.variant.value,
                "line_size": FIGURE7_LINE_SIZE,
            },
            values={
                "cycles": c.cycles,
                "normalized": c.normalized,
                "speedup_over_n": result.speedup_over_n(c.app, c.variant),
                "prefetch_instructions": c.prefetch_instructions,
                "prefetch_fills": c.prefetch_fills,
            },
        )
        for c in result.cells
    ]
    return runner.manifest("figure7", cells)


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner(verbose=True)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
