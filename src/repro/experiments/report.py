"""Plain-text rendering of experiment results.

The paper's figures are stacked-bar charts; these helpers render the
same data as aligned ASCII tables (and simple text bars) so every
experiment's output is readable in a terminal and diffable in CI.
"""

from __future__ import annotations

from typing import Any, Iterable


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(headers: list[str], rows: Iterable[Iterable[Any]], title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    text_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_stacked_bar(
    sections: list[tuple[str, float]], total_width: int = 50, scale_max: float | None = None
) -> str:
    """One horizontal stacked bar, one character class per section."""
    total = sum(value for _, value in sections)
    reference = scale_max if scale_max else total
    if reference <= 0:
        return ""
    glyphs = "#=+.~o"
    parts = []
    for index, (_, value) in enumerate(sections):
        width = int(round(total_width * value / reference))
        parts.append(glyphs[index % len(glyphs)] * width)
    return "".join(parts)


def normalize(value: float, baseline: float) -> float:
    """Value as a fraction of a baseline (100% = 1.0); 0 if no baseline."""
    return value / baseline if baseline else 0.0


def speedup(baseline_cycles: float, optimized_cycles: float) -> float:
    """Execution-time speedup (>1 means the optimized case is faster)."""
    return baseline_cycles / optimized_cycles if optimized_cycles else 0.0


def percent(fraction: float) -> str:
    return f"{100.0 * fraction:+.1f}%"
