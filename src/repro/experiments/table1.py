"""Table 1: application inventory and relocation statistics.

The paper's Table 1 lists, for every application: a description, the
layout optimization applied, and the virtual-memory *space overhead* of
holding relocated copies.  This experiment regenerates those columns by
running each application's optimized variant and reading the relocation
counters, adding the relocation-invocation and words-moved columns the
text quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import APPLICATIONS, FIGURE5_APPS
from repro.apps.base import Variant
from repro.experiments.report import render_table
from repro.experiments.runner import ExperimentRunner

#: Line size at which the inventory run is performed.
LINE_SIZE = 32

#: The paper's Table 1 inventory: the seven Figure-5 applications plus
#: SMV.  Pinned explicitly (not ``sorted(APPLICATIONS)``) so registering
#: auxiliary workloads -- the phase-changing adapt inputs -- cannot
#: change the paper artifact.
TABLE1_APPS = tuple(sorted(FIGURE5_APPS + ("smv",)))


@dataclass
class Table1Row:
    app: str
    description: str
    optimization: str
    optimizer_invocations: int
    words_relocated: int
    space_overhead_bytes: int


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["App", "Optimization", "Invocations", "Words moved", "Space overhead"],
            [
                (
                    row.app,
                    row.optimization,
                    row.optimizer_invocations,
                    row.words_relocated,
                    f"{row.space_overhead_bytes / 1024:.1f}KB",
                )
                for row in self.rows
            ],
            title="Table 1: applications and their relocation activity",
        )


def run(runner: ExperimentRunner | None = None, scale: float = 1.0) -> Table1Result:
    runner = runner or ExperimentRunner(scale=scale)
    result = Table1Result()
    for name in TABLE1_APPS:
        app_cls = APPLICATIONS[name]
        outcome = runner.run(name, Variant.L, LINE_SIZE)
        reloc = outcome.stats.relocation
        result.rows.append(
            Table1Row(
                app=name,
                description=app_cls.description,
                optimization=app_cls.optimization,
                optimizer_invocations=reloc.optimizer_invocations,
                words_relocated=reloc.words_relocated,
                space_overhead_bytes=reloc.pool_bytes,
            )
        )
    return result


def manifest(result: Table1Result, runner: ExperimentRunner) -> dict:
    """Schema-validated run manifest for this table."""
    from repro.obs import cell

    cells = [
        cell(
            row.app,
            labels={
                "app": row.app,
                "optimization": row.optimization,
                "line_size": LINE_SIZE,
            },
            values={
                "optimizer_invocations": row.optimizer_invocations,
                "words_relocated": row.words_relocated,
                "space_overhead_bytes": row.space_overhead_bytes,
            },
        )
        for row in result.rows
    ]
    return runner.manifest("table1", cells)


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner(verbose=True)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
