"""Replay a captured trace against a different machine configuration.

The key observation (which is also why capture-once-replay-many is sound
at all) is that a reference stream splits cleanly into two halves:

* **Config-invariant state.**  Forwarding chains, allocator placement,
  memory contents, relocation bookkeeping -- all fully determined by the
  event stream itself, identical under every cache configuration the
  stream may legally be replayed against.
* **Config-dependent accounting.**  The cache hierarchy, the timing
  model, the prefetcher, and the dependence speculator -- the things a
  sweep actually varies and measures.

Replay therefore does *not* rebuild a full :class:`~repro.core.machine.
Machine`.  It decodes the trace's columnar chunks into *resolved
chunks* -- every load/store annotated with its forwarding resolution
(final address plus hop addresses), computed from a forwarding map fed
by the recorded ``Unforwarded_Write``/``raw_write`` events -- and
drives only the config-dependent components with them, mirroring
``Machine.load``/``store``/etc. cost-for-cost.  Config-invariant
counters (relocation activity, forwarding hop totals, heap footprint)
are copied from the capture's stats, which is exact by definition.

Decode is *streaming*: :func:`iter_resolved_chunks` yields one
:class:`ResolvedChunk` at a time (flat ``kinds``/``ops`` arrays plus a
sparse extras dict), so resident memory is O(chunk) rather than
O(trace), and a :class:`ReplaySession` consumes chunks incrementally --
which is what lets the batch engine decode each chunk once and drive
*every* config in a group over it before pulling the next.

For traces managed by an artifact store, the decoded chunks are also
cached on disk in a marshal *sidecar* next to the trace file (one
record per chunk, so it streams too); loading it is ~6x cheaper than
re-decoding columns.  The sidecar is a pure cache: the header is
validated against the interpreter/format versions and the trace's
stream digest (mismatch falls back to a silent re-decode that rewrites
it), and corruption discovered *mid-stream* -- after chunks were
already served -- raises :class:`SidecarError` so the driver can reset
its sessions and restart from the raw columns.

This is what makes a replay measurably cheaper than a direct run: the
application logic is gone *and* so are the tagged memory, the forwarding
walks, and the allocator.  The fidelity tests pin the mirroring by
asserting replayed stats equal direct-run stats exactly, app by app.
"""

from __future__ import annotations

import contextlib
import itertools
import marshal
import os
import sys
import time as _time
from array import array
from typing import Iterable, Iterator

from repro.apps.base import AppResult, Variant
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.forwarding import ForwardingStats
from repro.core.hotpath import make_reference_kernel
from repro.core.machine import MachineConfig
from repro.core.stats import MachineStats, ReferenceLatencyStats, RelocationStats
from repro.cpu.prefetch import SoftwarePrefetcher
from repro.cpu.speculation import DependenceSpeculator
from repro.cpu.timing import TimingModel
from repro.trace.format import (
    FORMAT_VERSION,
    Trace,
    TraceFormatError,
)


class TraceReplayError(Exception):
    """The trace cannot legally drive the requested configuration."""


class SidecarError(Exception):
    """A resolved-stream sidecar went bad *mid-stream*.

    Raised only after some chunks may already have been served to
    sessions -- the driver must reset its sessions, drop the sidecar,
    and restart from the raw columns (see :func:`drive_sessions`).
    """


# Resolved-stream entry kinds (the per-entry ``kinds`` byte).  LOAD and
# STORE here are the unforwarded common case; the _FWD variants carry
# the forwarding resolution in the extras dict.
_LOAD = 0
_STORE = 1
_EXEC = 2
_ACCESS_R = 3   # Read_FBit / Unforwarded_Read: timed read of one word
_ACCESS_W = 4   # Unforwarded_Write: timed write of one word
_LOAD_FWD = 5
_STORE_FWD = 6
_PREFETCH = 7
_MALLOC = 8     # carries nbytes (cost is config-dependent)
_FREE = 9       # carries forwarding-chain length (ditto)
_TRAP = 10      # trap handler installed / removed


class ResolvedChunk:
    """One decoded chunk in struct-of-arrays form.

    ``kinds[i]`` is the entry kind, ``ops[i]`` its primary integer
    operand (address, word, count, ...), and ``extras`` a sparse dict
    holding the rare multi-operand payloads: ``i -> lines`` for
    prefetches and ``i -> (final_address, hop_tuple)`` for forwarded
    references.  The flat layout is what the exec-specialized kernels
    index directly, with no per-entry tuple allocation.
    """

    __slots__ = ("n", "kinds", "ops", "extras")

    def __init__(self, kinds: bytes, ops: array, extras: dict) -> None:
        self.n = len(kinds)
        self.kinds = kinds
        self.ops = ops
        self.extras = extras

    def entries(self) -> Iterator[tuple]:
        """The legacy tuple view of this chunk (compat + tests)."""
        kinds = self.kinds
        ops = self.ops
        extras = self.extras
        for i in range(self.n):
            kind = kinds[i]
            if kind == _LOAD_FWD or kind == _STORE_FWD:
                final, hops = extras[i]
                yield (kind, ops[i], final, hops)
            elif kind == _PREFETCH:
                yield (kind, ops[i], extras[i])
            else:
                yield (kind, ops[i])


# ----------------------------------------------------------------------
# Resolved-chunk sidecar: a marshal *stream* (header, one record per
# chunk, has_forwarded trailer) kept next to the trace file by the
# artifact store.
# ----------------------------------------------------------------------
#: Bump on any change to the resolved-chunk record layout.  Version 1
#: was the monolithic whole-stream dump of trace format v2.
_SIDECAR_VERSION = 2

_sidecar_counter = itertools.count()


def _sidecar_tag() -> tuple:
    # marshal's wire format is interpreter-specific and array('q') bytes
    # are native-endian, so the tag pins the Python minor version,
    # marshal version, and byte order alongside our own format versions;
    # a different interpreter simply re-decodes.
    return (
        _SIDECAR_VERSION,
        FORMAT_VERSION,
        sys.version_info[0],
        sys.version_info[1],
        marshal.version,
        sys.byteorder,
    )


def _open_sidecar(trace: Trace, path):
    """Open + validate the sidecar header; a positioned handle, or None.

    Header mismatches (foreign trace, other interpreter, old layout,
    plain corruption) are silent -- the caller re-decodes, which
    rewrites the sidecar.
    """
    try:
        handle = open(path, "rb")
    except OSError:
        return None
    try:
        tag, digest, count = marshal.load(handle)
    except Exception:  # marshal raises a grab-bag on corrupt input
        handle.close()
        return None
    if (
        tag != _sidecar_tag()
        or count != len(trace.chunks)
        or digest != trace.stream_sha256
    ):
        handle.close()
        return None
    return handle


def _iter_sidecar_chunks(
    trace: Trace, handle, count: int
) -> Iterator[ResolvedChunk]:
    """Serve chunks from an already-validated sidecar handle.

    Anything wrong past the header raises :class:`SidecarError`: by then
    earlier chunks may already be live in sessions, so silent fallback
    is no longer an option.
    """
    with handle:
        for index in range(count):
            try:
                kinds, ops_bytes, extras = marshal.load(handle)
                if not (
                    isinstance(kinds, bytes)
                    and isinstance(ops_bytes, bytes)
                    and isinstance(extras, dict)
                ):
                    raise ValueError("bad sidecar record shape")
                ops = array("q")
                ops.frombytes(ops_bytes)
                if len(ops) != len(kinds):
                    raise ValueError("sidecar kinds/ops length mismatch")
            except SidecarError:
                raise
            except Exception as exc:
                raise SidecarError(
                    f"corrupt sidecar record {index}: {exc}"
                ) from exc
            yield ResolvedChunk(kinds, ops, extras)
        try:
            has_forwarded = marshal.load(handle)
        except Exception as exc:
            raise SidecarError(f"truncated sidecar trailer: {exc}") from exc
        trace.has_forwarded = bool(has_forwarded)


class _SidecarWriter:
    """Incremental, best-effort, atomic sidecar writer.

    Records are appended to a unique temp file as chunks decode and the
    temp is renamed over the target only on :meth:`commit` -- an
    abandoned decode (driver stopped pulling chunks) or any I/O error
    just discards the temp.  Same ``*.tmp*`` naming as the store's
    writes, so ``sweep_stale`` collects orphans.
    """

    def __init__(self, trace: Trace, path) -> None:
        self._path = path
        self._tmp = path.with_name(
            f"{path.name}.tmp{os.getpid()}-{next(_sidecar_counter)}"
        )
        try:
            self._handle = open(self._tmp, "wb")
            marshal.dump(
                (_sidecar_tag(), trace.stream_sha256, len(trace.chunks)),
                self._handle,
            )
        except OSError:
            self._discard()

    def _discard(self) -> None:
        if getattr(self, "_handle", None) is not None:
            with contextlib.suppress(OSError):
                self._handle.close()
        self._handle = None
        if self._tmp is not None:
            with contextlib.suppress(OSError):
                self._tmp.unlink()
        self._tmp = None

    def add(self, chunk: ResolvedChunk) -> None:
        if self._handle is None:
            return
        try:
            marshal.dump(
                (chunk.kinds, chunk.ops.tobytes(), chunk.extras),
                self._handle,
            )
        except (OSError, ValueError):
            self._discard()

    def commit(self, has_forwarded: bool) -> None:
        if self._handle is None:
            return
        try:
            marshal.dump(bool(has_forwarded), self._handle)
            self._handle.close()
            self._handle = None
            os.replace(self._tmp, self._path)
            self._tmp = None
        except OSError:
            self._discard()

    def abort(self) -> None:
        self._discard()


# ----------------------------------------------------------------------
# Decode: raw columns -> resolved chunks
# ----------------------------------------------------------------------
def _decode_chunks(trace: Trace, sidecar_path) -> Iterator[ResolvedChunk]:
    """Decode the trace's columns chunk by chunk, teeing to the sidecar.

    This pass simulates the config-invariant half exactly once: it keeps
    the forwarding map ``{word -> forwarding word value}`` up to date
    from the write events (carried *across* chunk boundaries, like the
    address register) and annotates every reference with the hop
    addresses and final address ``ForwardingEngine.resolve`` would walk.
    Entries with no config-dependent cost (pool bookkeeping, relocation
    counters, raw writes) are folded away entirely.
    """
    writer = _SidecarWriter(trace, sidecar_path) if sidecar_path else None
    committed = False
    try:
        fwd: dict[int, int] = {}
        last = 0
        total = 0
        has_forwarded = False
        for index, chunk in enumerate(trace.chunks):
            if chunk.start_address != last:
                raise TraceFormatError(
                    f"chunk {index} start address {chunk.start_address} "
                    f"does not continue the stream (register is {last})"
                )
            ops_raw, addr_raw, aux_raw = chunk.columns(index)
            if len(ops_raw) != chunk.event_count:
                raise TraceFormatError(
                    f"chunk {index}: {len(ops_raw)} opcodes, index says "
                    f"{chunk.event_count} events"
                )
            kinds = bytearray()
            ops = array("q")
            extras: dict = {}
            kind_append = kinds.append
            op_append = ops.append
            ai = 0
            xi = 0
            try:
                for op in ops_raw:
                    if op == 0 or op == 1:  # LOAD / STORE
                        b = addr_raw[ai]
                        ai += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = addr_raw[ai]
                            ai += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        last += (v >> 1) ^ -(v & 1)
                        if op == 1:  # skip the stored value (data plane)
                            b = aux_raw[xi]
                            xi += 1
                            while b >= 0x80:
                                b = aux_raw[xi]
                                xi += 1
                        b = aux_raw[xi]  # skip the size (word-granular)
                        xi += 1
                        while b >= 0x80:
                            b = aux_raw[xi]
                            xi += 1
                        word = last & ~7
                        if word not in fwd:
                            kind_append(op)
                            op_append(last)
                        else:
                            has_forwarded = True
                            hops = []
                            value = 0
                            while word in fwd:
                                hops.append(word)
                                value = fwd[word]
                                word = value & ~7
                            kind_append(
                                _LOAD_FWD if op == 0 else _STORE_FWD
                            )
                            extras[len(ops)] = (
                                value | (last & 7),
                                tuple(hops),
                            )
                            op_append(last)
                    elif op == 2:  # EXECUTE: instruction count
                        b = aux_raw[xi]
                        xi += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = aux_raw[xi]
                            xi += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        kind_append(_EXEC)
                        op_append(v)
                    elif op == 6:  # UNF_WRITE: address, value, fbit
                        b = addr_raw[ai]
                        ai += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = addr_raw[ai]
                            ai += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        last += (v >> 1) ^ -(v & 1)
                        b = aux_raw[xi]
                        xi += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = aux_raw[xi]
                            xi += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        value = (v >> 1) ^ -(v & 1)
                        b = aux_raw[xi]
                        xi += 1
                        fbit = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = aux_raw[xi]
                            xi += 1
                            fbit |= (b & 0x7F) << s
                            s += 7
                        word = last & ~7
                        kind_append(_ACCESS_W)
                        op_append(word)
                        if fbit:
                            fwd[word] = value
                        else:
                            fwd.pop(word, None)
                    elif op == 4 or op == 5:  # READ_FBIT / UNF_READ
                        b = addr_raw[ai]
                        ai += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = addr_raw[ai]
                            ai += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        last += (v >> 1) ^ -(v & 1)
                        kind_append(_ACCESS_R)
                        op_append(last & ~7)
                    elif op == 3:  # PREFETCH: address, line count
                        b = addr_raw[ai]
                        ai += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = addr_raw[ai]
                            ai += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        last += (v >> 1) ^ -(v & 1)
                        b = aux_raw[xi]
                        xi += 1
                        lines = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = aux_raw[xi]
                            xi += 1
                            lines |= (b & 0x7F) << s
                            s += 7
                        kind_append(_PREFETCH)
                        extras[len(ops)] = lines
                        op_append(last)
                    elif op == 7:  # MALLOC: nbytes, align, result address
                        b = aux_raw[xi]
                        xi += 1
                        nbytes = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = aux_raw[xi]
                            xi += 1
                            nbytes |= (b & 0x7F) << s
                            s += 7
                        b = aux_raw[xi]  # align: untimed
                        xi += 1
                        while b >= 0x80:
                            b = aux_raw[xi]
                            xi += 1
                        b = addr_raw[ai]
                        ai += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = addr_raw[ai]
                            ai += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        last += (v >> 1) ^ -(v & 1)
                        kind_append(_MALLOC)
                        op_append(nbytes)
                    elif op == 8:  # FREE: cost scales with chain length
                        b = addr_raw[ai]
                        ai += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = addr_raw[ai]
                            ai += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        last += (v >> 1) ^ -(v & 1)
                        word = last & ~7
                        chain = 1
                        while word in fwd:
                            word = fwd[word] & ~7
                            chain += 1
                        kind_append(_FREE)
                        op_append(chain)
                    elif op == 9:  # CREATE_POOL: untimed bookkeeping
                        b = aux_raw[xi]
                        xi += 1
                        while b >= 0x80:
                            b = aux_raw[xi]
                            xi += 1
                    elif op == 10:  # POOL_ALLOC: untimed bookkeeping
                        for _ in range(3):
                            b = aux_raw[xi]
                            xi += 1
                            while b >= 0x80:
                                b = aux_raw[xi]
                                xi += 1
                        b = addr_raw[ai]
                        ai += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = addr_raw[ai]
                            ai += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        last += (v >> 1) ^ -(v & 1)
                    elif op == 11:  # RAW_WRITE: may retarget a chain word
                        b = addr_raw[ai]
                        ai += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = addr_raw[ai]
                            ai += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        last += (v >> 1) ^ -(v & 1)
                        b = aux_raw[xi]
                        xi += 1
                        v = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = aux_raw[xi]
                            xi += 1
                            v |= (b & 0x7F) << s
                            s += 7
                        word = last & ~7
                        if word in fwd:
                            fwd[word] = (v >> 1) ^ -(v & 1)
                    elif op == 12:  # NOTE_RELOC: counters (from capture)
                        for _ in range(2):
                            b = aux_raw[xi]
                            xi += 1
                            while b >= 0x80:
                                b = aux_raw[xi]
                                xi += 1
                    elif op == 13:  # NOTE_OPT: counter only
                        pass
                    elif op == 14:  # SET_TRAP: installed flag
                        b = aux_raw[xi]
                        xi += 1
                        flag = b & 0x7F
                        s = 7
                        while b >= 0x80:
                            b = aux_raw[xi]
                            xi += 1
                            flag |= (b & 0x7F) << s
                            s += 7
                        kind_append(_TRAP)
                        op_append(flag)
                    else:
                        raise TraceFormatError(
                            f"unknown opcode {op} in chunk {index}"
                        )
            except IndexError:
                raise TraceFormatError(
                    f"truncated varint in chunk {index} columns"
                ) from None
            if ai != len(addr_raw) or xi != len(aux_raw):
                raise TraceFormatError(
                    f"trailing bytes in chunk {index} columns "
                    f"(addr {len(addr_raw) - ai}, aux {len(aux_raw) - xi})"
                )
            total += len(ops_raw)
            resolved = ResolvedChunk(bytes(kinds), ops, extras)
            if writer is not None:
                writer.add(resolved)
            yield resolved
        if total != trace.event_count:
            raise TraceFormatError(
                f"event count mismatch: decoded {total}, "
                f"header says {trace.event_count}"
            )
        trace.has_forwarded = has_forwarded
        if writer is not None:
            writer.commit(has_forwarded)
        committed = True
    finally:
        if writer is not None and not committed:
            writer.abort()


def iter_resolved_chunks(trace: Trace) -> Iterator[ResolvedChunk]:
    """Yield the trace's resolved chunks, one at a time.

    Serves from the on-disk sidecar when the trace came through an
    artifact store and the sidecar validates; otherwise decodes the raw
    columns (rewriting the sidecar as it goes).  May raise
    :class:`SidecarError` mid-iteration -- drive sessions through
    :func:`drive_sessions` unless you handle the reset yourself.
    """
    sidecar = getattr(trace, "_resolved_path", None)
    if sidecar is not None:
        handle = _open_sidecar(trace, sidecar)
        if handle is not None:
            yield from _iter_sidecar_chunks(trace, handle, len(trace.chunks))
            return
    yield from _decode_chunks(trace, sidecar)


def drive_sessions(trace: Trace, sessions: Iterable, on_chunk=None) -> None:
    """Feed every resolved chunk to every session, in stream order.

    Each chunk is decoded (or sidecar-served) exactly once however many
    sessions ride along -- this is the batch engine's decode-once loop.
    A sidecar that goes bad mid-stream is unlinked, every session is
    reset, and the whole stream re-runs from the raw columns (the
    ``on_chunk`` hook restarts at index 0 with the sessions).

    ``on_chunk(index, entries, seconds)``, when given, is called after
    each chunk has been run through every session -- the tracing layer's
    per-chunk replay spans.  ``None`` (the default) adds nothing to the
    loop.
    """
    sessions = list(sessions)
    try:
        if on_chunk is None:
            for chunk in iter_resolved_chunks(trace):
                for session in sessions:
                    session.run_chunk(chunk)
        else:
            for index, chunk in enumerate(iter_resolved_chunks(trace)):
                started = _time.perf_counter()
                for session in sessions:
                    session.run_chunk(chunk)
                on_chunk(index, chunk.n, _time.perf_counter() - started)
    except SidecarError:
        path = getattr(trace, "_resolved_path", None)
        if path is not None:
            with contextlib.suppress(OSError):
                path.unlink()
        for session in sessions:
            session.reset()
        if on_chunk is None:
            for chunk in _decode_chunks(trace, path):
                for session in sessions:
                    session.run_chunk(chunk)
        else:
            for index, chunk in enumerate(_decode_chunks(trace, path)):
                started = _time.perf_counter()
                for session in sessions:
                    session.run_chunk(chunk)
                on_chunk(index, chunk.n, _time.perf_counter() - started)


def resolved_stream(trace: Trace) -> list[tuple]:
    """The whole resolved stream as one tuple list (compat shim).

    Materialises every chunk -- O(trace) memory, exactly what the
    chunked pipeline exists to avoid.  Kept for tests, tooling, and the
    ``REPRO_BATCH_MATERIALIZE`` benchmark arm; the replay paths all
    stream via :func:`iter_resolved_chunks` instead.
    """
    out: list[tuple] = []
    try:
        for chunk in iter_resolved_chunks(trace):
            out.extend(chunk.entries())
    except SidecarError:
        path = getattr(trace, "_resolved_path", None)
        if path is not None:
            with contextlib.suppress(OSError):
                path.unlink()
        out = []
        for chunk in _decode_chunks(trace, path):
            out.extend(chunk.entries())
    return out


#: Backwards-compatible alias (the function predates the batch engine).
_resolved_stream = resolved_stream


def has_forwarded_entries(trace: Trace) -> bool:
    """True iff ``trace``'s stream has any forwarded data reference.

    Known at capture time and carried in the v3 footer; the scan only
    runs for hand-assembled traces that never went through either.
    """
    if trace.has_forwarded is None:
        trace.has_forwarded = trace._scan_has_forwarded()
    return trace.has_forwarded


def check_line_size(trace: Trace, config: MachineConfig) -> None:
    """Reject replays a line-size-sensitive trace cannot legally serve.

    Shared by the general path here and the specialized kernels in
    :mod:`repro.trace.kernels`, so both refuse exactly the same
    (trace, config) pairs with the same message.
    """
    if trace.line_size_sensitive:
        line_size = config.hierarchy.line_size
        if line_size != trace.line_size:
            raise TraceReplayError(
                f"trace of line-size-sensitive app {trace.app!r} was "
                f"captured at {trace.line_size}B lines; cannot replay at "
                f"{line_size}B"
            )


class ReplaySession:
    """One config's replay state, consuming resolved chunks incrementally.

    Construction builds the config-dependent components (hierarchy,
    timing, prefetcher, speculator, latency stats); :meth:`run_chunk`
    advances them over one chunk; :meth:`finish` folds in the capture's
    config-invariant counters and returns the :class:`AppResult`.
    :meth:`reset` rebuilds everything from scratch -- the recovery hook
    for a sidecar that went bad after chunks were already consumed.
    """

    def __init__(
        self,
        trace: Trace,
        config: MachineConfig,
        *,
        on_window=None,
    ) -> None:
        check_line_size(trace, config)
        self.trace = trace
        self.config = config
        #: Live streaming hook handed to the session's Timeline (see
        #: :attr:`repro.obs.timeline.Timeline.on_window`); inert unless
        #: the config samples a timeline.
        self.on_window = on_window
        self._build()

    def reset(self) -> None:
        self._build()

    def _build(self) -> None:
        config = self.config
        self.hierarchy = hierarchy = MemoryHierarchy(config.hierarchy)
        self.timing = timing = TimingModel(config.timing)
        self.prefetcher = prefetcher = SoftwarePrefetcher(
            hierarchy, config.max_prefetch_block
        )
        self.speculator = speculator = (
            DependenceSpeculator(config.speculation_window)
            if config.speculation_window > 0
            else None
        )
        self.load_latency = load_latency = ReferenceLatencyStats()
        self.store_latency = store_latency = ReferenceLatencyStats()
        malloc_base = config.malloc_base_cost
        free_base = config.free_base_cost
        user_trap_cycles = config.user_trap_cycles
        # Closures below both read and write this, so it lives in a cell
        # rather than an attribute lookup on the hot path.
        trap_cell = [False]

        access = hierarchy.access
        execute = timing.execute
        load_completes = timing.load_completes
        store_completes = timing.store_completes

        # The unforwarded load/store kinds dominate every stream; they
        # are costed by the same fused kernel Machine's fast path uses,
        # with a throwaway ForwardingStats (replay takes forwarding
        # totals from the capture, so reference counting is discarded).
        kernel_load, kernel_store = make_reference_kernel(
            hierarchy, timing, speculator, load_latency, store_latency,
            ForwardingStats(),
        )
        self._kernel_load = kernel_load
        self._kernel_store = kernel_store

        # Cold-entry handlers, indexed by the entry kind, called as
        # ``handler(op, extra)``.  Each mirrors the corresponding
        # Machine method cost-for-cost (machine.py is the reference; the
        # integration tests assert exact stats equality against it),
        # minus the config-invariant work.  Kinds 0 and 1 are handled
        # inline in run_chunk and never reach this table.
        def _handle_exec(n, _extra):  # plain computation
            execute(n)

        def _handle_access_r(word, _extra):  # Read_FBit / Unf_Read
            kernel_load(word, True)

        def _handle_access_w(word, _extra):  # Unforwarded_Write
            kernel_store(word, True)

        def _forwarded(address, extra, is_store):
            final, hops = extra
            execute(1)
            hop_cycles = 0.0
            for word in hops:  # each hop touches the old location
                start = timing.cycle
                result = access(word, False, start)
                load_completes(result.ready, True)
                hop_cycles += result.ready - start
            start = timing.cycle
            result = access(final, is_store, start)
            latency = store_latency if is_store else load_latency
            if is_store:
                store_completes(result.ready, True)
            else:
                load_completes(result.ready, True)
            latency.count += 1
            latency.ordinary_cycles += result.ready - start
            latency.forwarded += 1
            nhops = len(hops)
            latency.forwarding_cycles += (
                hop_cycles + timing.forwarding_trap_cost(nhops)
            )
            timing.forwarding_trap(nhops)
            if trap_cell[0]:
                # The handler's own machine activity was recorded as
                # ordinary events; only its invocation cost remains.
                timing.stall(user_trap_cycles, "inst")
            if is_store:
                if speculator is not None:
                    speculator.on_store(address, final)
            elif speculator is not None and speculator.on_load(address, final):
                timing.misspeculation_flush()

        def _handle_load_fwd(address, extra):
            _forwarded(address, extra, False)

        def _handle_store_fwd(address, extra):
            _forwarded(address, extra, True)

        def _handle_prefetch(address, lines):  # software prefetch
            execute(1)
            prefetcher.prefetch_block(address, lines, timing.cycle)

        def _handle_malloc(nbytes, _extra):  # malloc bookkeeping cost
            execute(malloc_base + (nbytes >> 6))

        def _handle_free(chain, _extra):  # forwarding-aware free cost
            execute(free_base + 2 * chain)

        def _handle_trap(flag, _extra):
            trap_cell[0] = bool(flag)

        self._handlers = (
            None,  # _LOAD: inline
            None,  # _STORE: inline
            _handle_exec,
            _handle_access_r,
            _handle_access_w,
            _handle_load_fwd,
            _handle_store_fwd,
            _handle_prefetch,
            _handle_malloc,
            _handle_free,
            _handle_trap,
        )

        # Timeline sampling mirrors the direct run's wrapper: tick once
        # per data reference, after its cost lands, at the *initial*
        # address.  The sampler reads only config-dependent counters
        # (which replay maintains bit-exactly), so a replayed run's
        # window series is identical to the direct run's.
        self.timeline = None
        # Adaptive configs imply a timeline at adapt.interval (mirroring
        # Machine.__init__): the engine's references are already baked
        # into the captured stream, so replay only reproduces the window
        # series -- same boundaries, because the stream preserves tick
        # order.
        interval = config.timeline_interval
        if interval == 0 and config.adapt is not None:
            interval = config.adapt.interval
        if interval > 0:
            from repro.obs.registry import Registry
            from repro.obs.timeline import Timeline

            registry = Registry()
            timing.register_metrics(registry)
            hierarchy.register_metrics(registry)
            load_latency.register_metrics(registry, "ref.load")
            store_latency.register_metrics(registry, "ref.store")
            self.timeline = Timeline(
                interval,
                registry,
                mshr=hierarchy.mshr,
                clock=lambda: timing.cycle,
                region_bytes=config.heatmap_region_bytes,
            )
            self.timeline.on_window = self.on_window

    def run_chunk(self, chunk: ResolvedChunk) -> None:
        kinds = chunk.kinds
        ops = chunk.ops
        extras = chunk.extras
        get_extra = extras.get
        kernel_load = self._kernel_load
        kernel_store = self._kernel_store
        handlers = self._handlers
        timeline = self.timeline
        if timeline is None:
            for i in range(chunk.n):
                kind = kinds[i]
                if kind == 0:  # unforwarded load (final == initial)
                    kernel_load(ops[i])
                elif kind == 1:  # unforwarded store
                    kernel_store(ops[i])
                else:
                    handlers[kind](ops[i], get_extra(i))
        else:
            tick = timeline.tick
            note_forwarded = timeline.note_forwarded
            for i in range(chunk.n):
                kind = kinds[i]
                if kind == 0:
                    kernel_load(ops[i])
                    tick(ops[i])
                elif kind == 1:
                    kernel_store(ops[i])
                    tick(ops[i])
                else:
                    handlers[kind](ops[i], get_extra(i))
                    if kind == 5 or kind == 6:  # forwarded load / store
                        note_forwarded(ops[i])
                        tick(ops[i])

    def finish(self) -> AppResult:
        if self.timeline is not None:
            self.timeline.finish()
        trace = self.trace
        captured = trace.captured_stats
        stats = MachineStats.collect(
            timing=self.timing,
            hierarchy=self.hierarchy,
            loads=self.load_latency,
            stores=self.store_latency,
            speculator=self.speculator,
            prefetcher=self.prefetcher,
            forwarding_hops=captured["forwarding_hops"],
            cycle_checks=captured["cycle_checks"],
            forwarding_chain_hist={
                int(hops): count
                for hops, count in captured.get(
                    "forwarding_chain_hist", {}
                ).items()
            },
            relocation=RelocationStats(**captured["relocation"]),
            heap_high_water=captured["heap_high_water"],
        )
        return AppResult(
            app=trace.app,
            variant=Variant(trace.variant),
            checksum=trace.checksum,
            stats=stats,
            extras=dict(trace.extras),
            timeline=(
                self.timeline.to_payload() if self.timeline is not None else None
            ),
        )


#: Per-replay cap on chunk spans recorded into a tracer, so a large
#: trace doesn't flood the manifest; the ``replay.chunks`` summary span
#: always carries the full totals.
MAX_CHUNK_SPANS = 32


def replay_trace(
    trace: Trace,
    config: MachineConfig,
    *,
    tracer=None,
    on_window=None,
) -> AppResult:
    """Replay ``trace`` against ``config``; stats match a direct run.

    Returns an :class:`AppResult` whose config-dependent stats come from
    driving ``config``'s hierarchy/timing/speculator with the resolved
    chunks, whose config-invariant stats come from the capture, and
    whose checksum/extras come from the captured application run.

    ``tracer`` (a :class:`repro.obs.tracing.Tracer`) records one span
    per resolved chunk (capped at :data:`MAX_CHUNK_SPANS`) plus a
    summary span; ``on_window`` streams the timeline sampler's
    per-window deltas while the replay runs.  Both default to ``None``
    and add nothing to the replay loop when absent.
    """
    session = ReplaySession(trace, config, on_window=on_window)
    if tracer is None:
        drive_sessions(trace, [session])
    else:
        totals = [0, 0, 0.0]  # chunks, entries, seconds

        def _on_chunk(index: int, entries: int, seconds: float) -> None:
            totals[0] += 1
            totals[1] += entries
            totals[2] += seconds
            if totals[0] <= MAX_CHUNK_SPANS:
                tracer.record(
                    f"replay.chunk[{index}]",
                    seconds,
                    metrics={"entries": entries},
                )

        drive_sessions(trace, [session], on_chunk=_on_chunk)
        tracer.record(
            "replay.chunks",
            totals[2],
            metrics={"chunks": totals[0], "entries": totals[1]},
        )
    return session.finish()
