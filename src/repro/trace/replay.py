"""Replay a captured trace against a different machine configuration.

The key observation (which is also why capture-once-replay-many is sound
at all) is that a reference stream splits cleanly into two halves:

* **Config-invariant state.**  Forwarding chains, allocator placement,
  memory contents, relocation bookkeeping -- all fully determined by the
  event stream itself, identical under every cache configuration the
  stream may legally be replayed against.
* **Config-dependent accounting.**  The cache hierarchy, the timing
  model, the prefetcher, and the dependence speculator -- the things a
  sweep actually varies and measures.

Replay therefore does *not* rebuild a full :class:`~repro.core.machine.
Machine`.  It decodes the payload once per trace into a *resolved
stream* -- every load/store annotated with its forwarding resolution
(final address plus hop addresses), computed from a forwarding map fed
by the recorded ``Unforwarded_Write``/``raw_write`` events -- and then
drives only the config-dependent components with it, mirroring
``Machine.load``/``store``/etc. cost-for-cost.  Config-invariant
counters (relocation activity, forwarding hop totals, heap footprint)
are copied from the capture's stats, which is exact by definition.
The resolved stream is cached on the :class:`~repro.trace.format.Trace`
object, so replaying one trace at several line sizes decodes it once.

This is what makes a replay measurably cheaper than a direct run: the
application logic is gone *and* so are the tagged memory, the forwarding
walks, and the allocator.  The fidelity tests pin the mirroring by
asserting replayed stats equal direct-run stats exactly, app by app.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import marshal
import os
import sys

from repro.apps.base import AppResult, Variant
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.forwarding import ForwardingStats
from repro.core.hotpath import make_reference_kernel
from repro.core.machine import MachineConfig
from repro.core.stats import MachineStats, ReferenceLatencyStats, RelocationStats
from repro.cpu.prefetch import SoftwarePrefetcher
from repro.cpu.speculation import DependenceSpeculator
from repro.cpu.timing import TimingModel
from repro.trace.format import (
    FORMAT_VERSION,
    Trace,
    TraceFormatError,
    read_uvarint,
    unzigzag,
)


class TraceReplayError(Exception):
    """The trace cannot legally drive the requested configuration."""


# Resolved-stream entry kinds (first tuple element).  LOAD/STORE here are
# the unforwarded common case; the _FWD variants carry the resolution.
_LOAD = 0
_STORE = 1
_EXEC = 2
_ACCESS_R = 3   # Read_FBit / Unforwarded_Read: timed read of one word
_ACCESS_W = 4   # Unforwarded_Write: timed write of one word
_LOAD_FWD = 5
_STORE_FWD = 6
_PREFETCH = 7
_MALLOC = 8     # carries nbytes (cost is config-dependent)
_FREE = 9       # carries forwarding-chain length (ditto)
_TRAP = 10      # trap handler installed / removed


# ----------------------------------------------------------------------
# Resolved-stream sidecar: a marshal dump of the decoded stream, kept
# next to the trace file by the artifact store.  Loading it is ~6x
# cheaper than re-decoding the payload, which matters when many sweep
# processes each decode the same warm trace.  The sidecar is a pure
# cache: every load is validated against the interpreter/format version
# and the trace's payload digest, and any mismatch or read error falls
# back to a silent re-decode (which then rewrites the sidecar).
# ----------------------------------------------------------------------
#: Bump on any change to the resolved-stream entry layout.
_SIDECAR_VERSION = 1

_sidecar_counter = itertools.count()


def _sidecar_tag() -> tuple:
    # marshal's wire format is interpreter-specific, so the tag pins the
    # Python minor version and marshal version alongside our own format
    # versions; a different interpreter simply re-decodes.
    return (
        _SIDECAR_VERSION,
        FORMAT_VERSION,
        sys.version_info[0],
        sys.version_info[1],
        marshal.version,
    )


def _load_resolved_sidecar(trace: Trace, path) -> list | None:
    """Return the sidecar's stream if it matches ``trace``, else None."""
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    try:
        tag, digest, count, has_forwarded, stream = marshal.loads(blob)
    except Exception:  # marshal raises a grab-bag on corrupt input
        return None
    if (
        tag != _sidecar_tag()
        or count != trace.event_count
        or not isinstance(stream, list)
        or digest != hashlib.sha256(trace.payload).hexdigest()
    ):
        return None
    trace._has_forwarded = bool(has_forwarded)
    return stream


def _write_resolved_sidecar(
    trace: Trace, path, stream: list, has_forwarded: bool
) -> None:
    """Best-effort atomic sidecar write (failures are silent)."""
    blob = marshal.dumps((
        _sidecar_tag(),
        hashlib.sha256(trace.payload).hexdigest(),
        trace.event_count,
        has_forwarded,
        stream,
    ))
    # Same unique-temp + replace discipline as the store's writes, and
    # the same ``*.tmp*`` naming, so ``sweep_stale`` collects orphans.
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}-{next(_sidecar_counter)}")
    try:
        tmp.write_bytes(blob)
        os.replace(tmp, path)
    except OSError:
        with contextlib.suppress(OSError):
            tmp.unlink()


def resolved_stream(trace: Trace) -> list[tuple]:
    """Decode ``trace`` into its resolved stream (cached on the trace).

    This pass simulates the config-invariant half exactly once: it keeps
    the forwarding map ``{word -> forwarding word value}`` up to date
    from the write events and annotates every reference with the hop
    addresses and final address ``ForwardingEngine.resolve`` would walk.
    Entries with no config-dependent cost (pool bookkeeping, relocation
    counters, raw writes) are folded away entirely.

    Two caches shortcut the decode: the in-memory memo on the trace
    object itself, and -- for traces that came through an artifact store
    -- the on-disk sidecar described above.
    """
    cached = getattr(trace, "_resolved", None)
    if cached is not None:
        return cached
    sidecar = getattr(trace, "_resolved_path", None)
    if sidecar is not None:
        stream = _load_resolved_sidecar(trace, sidecar)
        if stream is not None:
            trace._resolved = stream
            return stream
    fwd: dict[int, int] = {}
    out: list[tuple] = []
    append = out.append
    has_forwarded = False
    data = trace.payload
    length = len(data)
    i = 0
    last = 0
    count = 0
    try:
        while i < length:
            op = data[i]
            i += 1
            if op == 0 or op == 1:  # LOAD / STORE: address, [value,] size
                b = data[i]
                i += 1
                v = b & 0x7F
                s = 7
                while b >= 0x80:
                    b = data[i]
                    i += 1
                    v |= (b & 0x7F) << s
                    s += 7
                last += (v >> 1) ^ -(v & 1)
                if op == 1:  # skip the stored value (data plane only)
                    b = data[i]
                    i += 1
                    while b >= 0x80:
                        b = data[i]
                        i += 1
                b = data[i]  # skip the size (hierarchy is word-granular)
                i += 1
                while b >= 0x80:
                    b = data[i]
                    i += 1
                word = last & ~7
                if word not in fwd:
                    append((op, last))
                else:
                    has_forwarded = True
                    hops = []
                    value = 0
                    while word in fwd:
                        hops.append(word)
                        value = fwd[word]
                        word = value & ~7
                    append((
                        _LOAD_FWD if op == 0 else _STORE_FWD,
                        last,
                        value | (last & 7),
                        tuple(hops),
                    ))
            elif op == 2:  # EXECUTE: instruction count
                b = data[i]
                i += 1
                v = b & 0x7F
                s = 7
                while b >= 0x80:
                    b = data[i]
                    i += 1
                    v |= (b & 0x7F) << s
                    s += 7
                append((_EXEC, v))
            elif op == 6:  # UNF_WRITE: address, value, fbit
                b = data[i]
                i += 1
                v = b & 0x7F
                s = 7
                while b >= 0x80:
                    b = data[i]
                    i += 1
                    v |= (b & 0x7F) << s
                    s += 7
                last += (v >> 1) ^ -(v & 1)
                b = data[i]
                i += 1
                v = b & 0x7F
                s = 7
                while b >= 0x80:
                    b = data[i]
                    i += 1
                    v |= (b & 0x7F) << s
                    s += 7
                value = (v >> 1) ^ -(v & 1)
                fbit = data[i]
                i += 1
                word = last & ~7
                append((_ACCESS_W, word))
                if fbit:
                    fwd[word] = value
                else:
                    fwd.pop(word, None)
            elif op == 4 or op == 5:  # READ_FBIT / UNF_READ: address
                b = data[i]
                i += 1
                v = b & 0x7F
                s = 7
                while b >= 0x80:
                    b = data[i]
                    i += 1
                    v |= (b & 0x7F) << s
                    s += 7
                last += (v >> 1) ^ -(v & 1)
                append((_ACCESS_R, last & ~7))
            elif op == 3:  # PREFETCH: address, line count
                delta, i = read_uvarint(data, i)
                lines, i = read_uvarint(data, i)
                last += unzigzag(delta)
                append((_PREFETCH, last, lines))
            elif op == 7:  # MALLOC: nbytes, align, resulting address
                nbytes, i = read_uvarint(data, i)
                _align, i = read_uvarint(data, i)
                delta, i = read_uvarint(data, i)
                last += unzigzag(delta)
                append((_MALLOC, nbytes))
            elif op == 8:  # FREE: address; cost scales with chain length
                delta, i = read_uvarint(data, i)
                last += unzigzag(delta)
                word = last & ~7
                chain = 1
                while word in fwd:
                    word = fwd[word] & ~7
                    chain += 1
                append((_FREE, chain))
            elif op == 9:  # CREATE_POOL: untimed bookkeeping
                _size, i = read_uvarint(data, i)
            elif op == 10:  # POOL_ALLOC: untimed bookkeeping
                _index, i = read_uvarint(data, i)
                _nbytes, i = read_uvarint(data, i)
                _align, i = read_uvarint(data, i)
                delta, i = read_uvarint(data, i)
                last += unzigzag(delta)
            elif op == 11:  # RAW_WRITE: untimed, may retarget a chain word
                delta, i = read_uvarint(data, i)
                value, i = read_uvarint(data, i)
                last += unzigzag(delta)
                word = last & ~7
                if word in fwd:
                    fwd[word] = unzigzag(value)
            elif op == 12:  # NOTE_RELOC: counters only (copied from capture)
                _relocations, i = read_uvarint(data, i)
                _words, i = read_uvarint(data, i)
            elif op == 13:  # NOTE_OPT: counter only
                pass
            elif op == 14:  # SET_TRAP: installed flag
                flag, i = read_uvarint(data, i)
                append((_TRAP, flag))
            else:
                raise TraceFormatError(
                    f"unknown opcode {op} at payload offset {i - 1}"
                )
            count += 1
    except IndexError:
        raise TraceFormatError("truncated varint in trace payload") from None
    if count != trace.event_count:
        raise TraceFormatError(
            f"event count mismatch: decoded {count}, "
            f"header says {trace.event_count}"
        )
    trace._resolved = out
    trace._has_forwarded = has_forwarded
    if sidecar is not None:
        _write_resolved_sidecar(trace, sidecar, out, has_forwarded)
    return out


#: Backwards-compatible alias (the function predates the batch engine).
_resolved_stream = resolved_stream


def has_forwarded_entries(trace: Trace) -> bool:
    """True iff ``trace``'s resolved stream has any forwarded reference.

    Populated for free during decode; the defensive rescan only runs if
    ``_resolved`` was installed by some path that skipped the flag.
    """
    flag = getattr(trace, "_has_forwarded", None)
    if flag is None:
        flag = any(e[0] == 5 or e[0] == 6 for e in resolved_stream(trace))
        trace._has_forwarded = flag
    return flag


def check_line_size(trace: Trace, config: MachineConfig) -> None:
    """Reject replays a line-size-sensitive trace cannot legally serve.

    Shared by the general path here and the specialized kernels in
    :mod:`repro.trace.kernels`, so both refuse exactly the same
    (trace, config) pairs with the same message.
    """
    if trace.line_size_sensitive:
        line_size = config.hierarchy.line_size
        if line_size != trace.line_size:
            raise TraceReplayError(
                f"trace of line-size-sensitive app {trace.app!r} was "
                f"captured at {trace.line_size}B lines; cannot replay at "
                f"{line_size}B"
            )


def replay_trace(trace: Trace, config: MachineConfig) -> AppResult:
    """Replay ``trace`` against ``config``; stats match a direct run.

    Returns an :class:`AppResult` whose config-dependent stats come from
    driving ``config``'s hierarchy/timing/speculator with the resolved
    stream, whose config-invariant stats come from the capture, and
    whose checksum/extras come from the captured application run.
    """
    check_line_size(trace, config)
    stream = resolved_stream(trace)

    hierarchy = MemoryHierarchy(config.hierarchy)
    timing = TimingModel(config.timing)
    prefetcher = SoftwarePrefetcher(hierarchy, config.max_prefetch_block)
    speculator = (
        DependenceSpeculator(config.speculation_window)
        if config.speculation_window > 0
        else None
    )
    load_latency = ReferenceLatencyStats()
    store_latency = ReferenceLatencyStats()
    malloc_base = config.malloc_base_cost
    free_base = config.free_base_cost
    user_trap_cycles = config.user_trap_cycles
    # Closures below both read and write this, so it lives in a cell
    # rather than a loop local.
    trap_cell = [False]

    access = hierarchy.access
    execute = timing.execute
    load_completes = timing.load_completes
    store_completes = timing.store_completes

    # The unforwarded load/store kinds dominate every stream; they are
    # costed by the same fused kernel Machine's fast path uses, with a
    # throwaway ForwardingStats (replay takes forwarding totals from the
    # capture, so the kernel's reference counting is discarded).
    kernel_load, kernel_store = make_reference_kernel(
        hierarchy, timing, speculator, load_latency, store_latency,
        ForwardingStats(),
    )

    # Cold-entry handlers, indexed by the stream's integer opcode.  Each
    # mirrors the corresponding Machine method cost-for-cost (machine.py
    # is the reference; the integration tests assert exact stats equality
    # against it), minus the config-invariant work.  Kinds 0 and 1 are
    # handled inline in the loop and never reach this table.
    def _handle_exec(entry: tuple) -> None:  # plain computation
        execute(entry[1])

    def _handle_access_r(entry: tuple) -> None:  # Read_FBit / Unf_Read
        kernel_load(entry[1], True)

    def _handle_access_w(entry: tuple) -> None:  # Unforwarded_Write
        kernel_store(entry[1], True)

    def _handle_forwarded(entry: tuple) -> None:  # forwarded load / store
        address = entry[1]
        final = entry[2]
        hops = entry[3]
        is_store = entry[0] == 6
        execute(1)
        hop_cycles = 0.0
        for word in hops:  # each hop touches the old location
            start = timing.cycle
            result = access(word, False, start)
            load_completes(result.ready, True)
            hop_cycles += result.ready - start
        start = timing.cycle
        result = access(final, is_store, start)
        latency = store_latency if is_store else load_latency
        if is_store:
            store_completes(result.ready, True)
        else:
            load_completes(result.ready, True)
        latency.count += 1
        latency.ordinary_cycles += result.ready - start
        latency.forwarded += 1
        nhops = len(hops)
        latency.forwarding_cycles += (
            hop_cycles + timing.forwarding_trap_cost(nhops)
        )
        timing.forwarding_trap(nhops)
        if trap_cell[0]:
            # The handler's own machine activity was recorded as
            # ordinary events; only its invocation cost remains.
            timing.stall(user_trap_cycles, "inst")
        if is_store:
            if speculator is not None:
                speculator.on_store(address, final)
        elif speculator is not None and speculator.on_load(address, final):
            timing.misspeculation_flush()

    def _handle_prefetch(entry: tuple) -> None:  # software prefetch
        execute(1)
        prefetcher.prefetch_block(entry[1], entry[2], timing.cycle)

    def _handle_malloc(entry: tuple) -> None:  # malloc bookkeeping cost
        execute(malloc_base + (entry[1] >> 6))

    def _handle_free(entry: tuple) -> None:  # forwarding-aware free cost
        execute(free_base + 2 * entry[1])

    def _handle_trap(entry: tuple) -> None:
        trap_cell[0] = bool(entry[1])

    handlers = (
        None,  # _LOAD: inline
        None,  # _STORE: inline
        _handle_exec,
        _handle_access_r,
        _handle_access_w,
        _handle_forwarded,  # _LOAD_FWD
        _handle_forwarded,  # _STORE_FWD
        _handle_prefetch,
        _handle_malloc,
        _handle_free,
        _handle_trap,
    )

    # Timeline sampling mirrors the direct run's wrapper: tick once per
    # data reference, after its cost lands, at the *initial* address.
    # The sampler reads only config-dependent counters (which replay
    # maintains bit-exactly), so a replayed run's window series is
    # identical to the direct run's -- the parity tests pin this.
    timeline = None
    if config.timeline_interval > 0:
        from repro.obs.registry import Registry
        from repro.obs.timeline import Timeline

        registry = Registry()
        timing.register_metrics(registry)
        hierarchy.register_metrics(registry)
        load_latency.register_metrics(registry, "ref.load")
        store_latency.register_metrics(registry, "ref.store")
        timeline = Timeline(
            config.timeline_interval,
            registry,
            mshr=hierarchy.mshr,
            clock=lambda: timing.cycle,
        )

    if timeline is None:
        for entry in stream:
            kind = entry[0]
            if kind == 0:  # unforwarded load (final == initial)
                kernel_load(entry[1])
            elif kind == 1:  # unforwarded store
                kernel_store(entry[1])
            else:
                handlers[kind](entry)
    else:
        tick = timeline.tick
        note_forwarded = timeline.note_forwarded
        for entry in stream:
            kind = entry[0]
            if kind == 0:
                kernel_load(entry[1])
                tick(entry[1])
            elif kind == 1:
                kernel_store(entry[1])
                tick(entry[1])
            else:
                handlers[kind](entry)
                if kind == 5 or kind == 6:  # forwarded load / store
                    note_forwarded(entry[1])
                    tick(entry[1])
        timeline.finish()

    captured = trace.captured_stats
    stats = MachineStats.collect(
        timing=timing,
        hierarchy=hierarchy,
        loads=load_latency,
        stores=store_latency,
        speculator=speculator,
        prefetcher=prefetcher,
        forwarding_hops=captured["forwarding_hops"],
        cycle_checks=captured["cycle_checks"],
        forwarding_chain_hist={
            int(hops): count
            for hops, count in captured.get("forwarding_chain_hist", {}).items()
        },
        relocation=RelocationStats(**captured["relocation"]),
        heap_high_water=captured["heap_high_water"],
    )
    return AppResult(
        app=trace.app,
        variant=Variant(trace.variant),
        checksum=trace.checksum,
        stats=stats,
        extras=dict(trace.extras),
        timeline=timeline.to_payload() if timeline is not None else None,
    )
