"""The binary trace format: chunked columnar encoding, index, integrity.

Format **v3** applies the paper's layout lesson to our own data: a trace
is split into fixed-reference-count *chunks*, and each chunk is stored
**column-wise** -- a struct-of-arrays transposition of the v2 event
stream::

    magic "RTRC" | version u8 | uvarint header_len | header JSON
    | chunk 0: ops || addr || aux        (each column zlib-compressed)
    | chunk 1: ...
    | footer JSON | footer_len u32 LE | footer magic "RTRF"

* the ``ops`` column holds one opcode byte per event;
* the ``addr`` column holds the zigzag-varint address *deltas* of every
  address-bearing event, against a running register that is **never
  reset** -- so the concatenated column bytes are independent of where
  the chunk boundaries fall, and each chunk records the register value
  on entry (``start_address``) so it can be decoded on its own;
* the ``aux`` column holds every remaining operand (sizes, stored
  values, instruction counts, ...) varint-encoded in event order.

The footer is a random-access index: per chunk it records the offset
into the chunk region, the event count, the entry address register, and
each column's compressed length, raw length, and SHA-256 (of the *raw*
bytes, so integrity is independent of the compressor).  A fixed-size
trailer (footer length + footer magic) lets a reader load header and
footer with two reads and no chunk data at all -- see
:func:`load_index` -- and replay can stream chunks one at a time
without ever materialising the whole trace.

The header carries the trace's identity (app, variant, scale, seed,
capturing line size, line-size sensitivity) and the run's semantic
outputs; the footer carries the stream shape (event count, whether any
reference is forwarded, the stream digest).  Corruption anywhere is
detected at load time and named precisely: a flipped byte in a column
fails with the chunk index and column name.

Format v2 (one monolithic varint payload) stays loadable: ``from_bytes``
dispatches on the version byte and converts v2 payloads to chunks on the
fly; :func:`encode_v2` emits v2 bytes for migration round-trip tests.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.trace import events as ev

MAGIC = b"RTRC"
FOOTER_MAGIC = b"RTRF"
#: Bump on any incompatible change to the header, footer, or column
#: encoding -- or to the captured-stats contract (version 2 added the
#: forwarding chain-length histogram; version 3 is the chunked columnar
#: layout).
FORMAT_VERSION = 3
#: The monolithic varint-payload format this module can still read.
V2_FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (V2_FORMAT_VERSION, FORMAT_VERSION)

#: Events per sealed chunk.  Small enough that one decoded chunk's
#: resolved arrays stay well under a megabyte, large enough that the
#: per-chunk overhead (zlib headers, kernel re-entry, index rows)
#: disappears into the decode cost.
CHUNK_EVENTS = 65536
COLUMN_NAMES = ("ops", "addr", "aux")
#: Chunks seal on the capture hot path, so speed beats ratio; integrity
#: hashes cover the raw bytes, so the level is not part of identity.
_COMPRESS_LEVEL = 1
_TRAILER = struct.Struct("<I4s")


class TraceFormatError(Exception):
    """A trace file or byte string could not be decoded.

    ``path`` (when the failure came through :meth:`Trace.load` or
    :func:`load_index`) and ``version`` (when a version byte was read
    before the failure) identify the offending file precisely -- the CLI
    maps this error to its one-line-stderr + exit-2 contract.
    """

    def __init__(
        self,
        message: str,
        path: Any = None,
        version: int | None = None,
    ) -> None:
        super().__init__(message)
        self.path = str(path) if path is not None else None
        self.version = version

    def __str__(self) -> str:
        message = self.args[0] if self.args else ""
        if self.path is not None:
            return f"{self.path}: {message}"
        return message


# ----------------------------------------------------------------------
# Varint primitives (unsigned LEB128 + zigzag for signed deltas)
# ----------------------------------------------------------------------
def append_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def append_svarint(out: bytearray, value: int) -> None:
    """Append a signed integer, zigzag-mapped then LEB128."""
    append_uvarint(out, zigzag(value))


def zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one (0,-1,1,-2 -> 0,1,2,3)."""
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return value >> 1 if (value & 1) == 0 else -((value + 1) >> 1)


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one LEB128 varint at ``offset``; returns ``(value, next)``."""
    result = 0
    shift = 0
    length = len(data)
    while True:
        if offset >= length:
            raise TraceFormatError("truncated varint in trace column")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


# ----------------------------------------------------------------------
# Chunks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Chunk:
    """One sealed run of events, stored as three compressed columns."""

    #: Events encoded in this chunk.
    event_count: int
    #: Address delta register on entry, so the chunk decodes standalone.
    start_address: int
    #: Compressed column bytes, in :data:`COLUMN_NAMES` order.
    data: tuple[bytes, bytes, bytes]
    #: Uncompressed column lengths, same order.
    raw_lens: tuple[int, int, int]
    #: SHA-256 hex digests of the *uncompressed* columns, same order.
    shas: tuple[str, str, str]

    def columns(self, index: int, path: Any = None) -> tuple[bytes, bytes, bytes]:
        """Decompress and verify all three columns.

        Corruption fails with the chunk index and column name -- the
        error granularity the corpus tooling and tests rely on.
        """
        out = []
        for name, blob, raw_len, sha in zip(
            COLUMN_NAMES, self.data, self.raw_lens, self.shas
        ):
            where = f"chunk {index} column {name!r}"
            try:
                raw = zlib.decompress(blob)
            except zlib.error as exc:
                raise TraceFormatError(
                    f"corrupt {where}: {exc}", path=path
                ) from exc
            if len(raw) != raw_len:
                raise TraceFormatError(
                    f"corrupt {where}: {len(raw)} raw bytes, index says "
                    f"{raw_len}",
                    path=path,
                )
            if hashlib.sha256(raw).hexdigest() != sha:
                raise TraceFormatError(
                    f"corrupt {where}: content hash mismatch", path=path
                )
            out.append(raw)
        return tuple(out)


def make_chunk(
    raws: tuple[bytes, bytes, bytes], event_count: int, start_address: int
) -> Chunk:
    """Seal raw column bytes into a compressed, hashed :class:`Chunk`."""
    return Chunk(
        event_count=event_count,
        start_address=start_address,
        data=tuple(zlib.compress(raw, _COMPRESS_LEVEL) for raw in raws),
        raw_lens=tuple(len(raw) for raw in raws),
        shas=tuple(hashlib.sha256(raw).hexdigest() for raw in raws),
    )


def finish_stream_digest(col_shas, event_count: int) -> str:
    """Combine per-column running digests into the stream digest.

    The running digests are fed the *raw* column bytes in chunk order;
    since the address register never resets, the concatenated columns --
    and therefore this digest -- are independent of where the chunk
    boundaries fall.
    """
    digest = hashlib.sha256()
    for sha in col_shas:
        digest.update(sha.digest())
    digest.update(str(event_count).encode("ascii"))
    return digest.hexdigest()


#: Events whose payload carries exactly one address operand; maps the
#: opcode to the index of that operand in the event tuple.
_ADDR_POSITION = {
    ev.LOAD: 1,
    ev.STORE: 1,
    ev.PREFETCH: 1,
    ev.READ_FBIT: 1,
    ev.UNF_READ: 1,
    ev.UNF_WRITE: 1,
    ev.MALLOC: 3,
    ev.FREE: 1,
    ev.POOL_ALLOC: 4,
    ev.RAW_WRITE: 1,
}

#: Operands carrying signed values (zigzag in the aux column).
_SIGNED_AUX = {
    ev.STORE: (2,),
    ev.UNF_WRITE: (2,),
    ev.RAW_WRITE: (2,),
}


class ChunkWriter:
    """Streaming chunk/column encoder fed absolute-address event tuples.

    This is the *reference* encoder: :class:`~repro.trace.recorder.
    TraceRecorder` inlines the same encoding into its observer callbacks
    for speed, and the hypothesis round-trip suite pins the two to each
    other.  The v2 reader uses it to convert monolithic payloads into
    chunks, tracking the forwarding-membership set as it goes so the
    converted trace knows ``has_forwarded`` without a separate decode.
    """

    def __init__(self, chunk_events: int = CHUNK_EVENTS) -> None:
        if chunk_events < 1:
            raise ValueError("chunk_events must be >= 1")
        self.chunk_events = chunk_events
        self.chunks: list[Chunk] = []
        self.event_count = 0
        self.has_forwarded = False
        self._ops = bytearray()
        self._addr = bytearray()
        self._aux = bytearray()
        self._pending = 0
        self._last = 0
        self._chunk_start = 0
        self._fwd: set[int] = set()
        self._col_shas = [hashlib.sha256() for _ in COLUMN_NAMES]

    def add(self, event: tuple) -> None:
        """Encode one event tuple (opcode first, addresses absolute)."""
        op = event[0]
        if not 0 <= op <= ev.MAX_OPCODE:
            raise ValueError(f"unknown opcode {op}")
        self._ops.append(op)
        addr_pos = _ADDR_POSITION.get(op)
        signed = _SIGNED_AUX.get(op, ())
        for pos in range(1, len(event)):
            if pos == addr_pos:
                address = event[pos]
                append_svarint(self._addr, address - self._last)
                self._last = address
            elif pos in signed:
                append_svarint(self._aux, event[pos])
            else:
                append_uvarint(self._aux, event[pos])
        # Forwarding-membership tracking mirrors the resolver's map: only
        # Unforwarded_Write changes membership (raw_write merely retargets
        # existing chain words), and only data references probe it.
        if op == ev.LOAD or op == ev.STORE:
            if not self.has_forwarded and (event[1] & ~7) in self._fwd:
                self.has_forwarded = True
        elif op == ev.UNF_WRITE:
            word = event[1] & ~7
            if event[3]:
                self._fwd.add(word)
            else:
                self._fwd.discard(word)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self.seal()

    def seal(self) -> None:
        """Close the open chunk (no-op when it is empty)."""
        if not self._pending:
            return
        raws = (bytes(self._ops), bytes(self._addr), bytes(self._aux))
        for sha, raw in zip(self._col_shas, raws):
            sha.update(raw)
        self.chunks.append(make_chunk(raws, self._pending, self._chunk_start))
        self._ops.clear()
        self._addr.clear()
        self._aux.clear()
        self._pending = 0
        self._chunk_start = self._last

    def finish(self) -> tuple[tuple[Chunk, ...], int, bool, str]:
        """Seal the final partial chunk; returns
        ``(chunks, event_count, has_forwarded, stream_sha256)``."""
        self.seal()
        return (
            tuple(self.chunks),
            self.event_count,
            self.has_forwarded,
            finish_stream_digest(self._col_shas, self.event_count),
        )


# ----------------------------------------------------------------------
# The trace object
# ----------------------------------------------------------------------
@dataclass
class Trace:
    """One captured reference stream plus its identity and outputs."""

    app: str
    variant: str
    scale: float
    seed: int
    #: Line size of the capturing machine config.
    line_size: int
    #: True if the stream is only valid at exactly ``line_size``.
    line_size_sensitive: bool
    #: Semantic output of the captured run (variant-invariant).
    checksum: int
    extras: dict[str, Any] = field(default_factory=dict)
    #: Full :meth:`~repro.core.stats.MachineStats.dump` of the capturing
    #: run.  Replay recomputes every config-dependent counter but copies
    #: the config-*invariant* ones (relocation activity, forwarding hop
    #: totals, heap footprint) from here -- they are properties of the
    #: event stream, not of the cache the stream is replayed against.
    captured_stats: dict[str, Any] = field(default_factory=dict)
    #: Pool names, in ``create_pool`` order (events carry only indices).
    pool_names: list[str] = field(default_factory=list)
    event_count: int = 0
    #: The sealed chunks, in stream order.
    chunks: tuple[Chunk, ...] = ()
    #: Whether any data reference in the stream is forwarded.  Known at
    #: capture time (the recorder tracks the forwarding-membership set)
    #: and carried in the footer, so the specialized kernels can pick
    #: their speculation mode without decoding anything.  ``None`` only
    #: for hand-assembled traces; derived on demand then.  Excluded from
    #: equality so a scanned and an unscanned copy still compare equal.
    has_forwarded: bool | None = field(default=None, compare=False)
    #: Memoised stream digest (fully derived from ``chunks``).
    _stream_sha: str | None = field(
        default=None, repr=False, compare=False,
    )
    #: Where a decoded-stream sidecar for this trace may live on disk
    #: (attached by :class:`repro.trace.store.ArtifactStore` when it
    #: loads or saves the trace; ``None`` for traces with no store).
    #: :func:`repro.trace.replay.iter_resolved_chunks` reads/writes it.
    _resolved_path: Any = field(
        default=None, repr=False, compare=False,
    )

    # ------------------------------------------------------------------
    def header_dict(self) -> dict[str, Any]:
        """The identity/output header (stream shape lives in the footer)."""
        return {
            "app": self.app,
            "variant": self.variant,
            "scale": self.scale,
            "seed": self.seed,
            "line_size": self.line_size,
            "line_size_sensitive": self.line_size_sensitive,
            "checksum": self.checksum,
            "extras": self.extras,
            "captured_stats": self.captured_stats,
            "pool_names": self.pool_names,
            "event_count": self.event_count,
        }

    @property
    def stream_sha256(self) -> str:
        """Digest of the raw (uncompressed) column stream.

        Chunking-independent (see :func:`finish_stream_digest`): the
        same logical stream hashes identically whatever chunk size it
        was sealed with, so dedup and sidecar validation survive
        re-chunking.
        """
        if self._stream_sha is None:
            shas = [hashlib.sha256() for _ in COLUMN_NAMES]
            for index, chunk in enumerate(self.chunks):
                for sha, raw in zip(shas, chunk.columns(index)):
                    sha.update(raw)
            self._stream_sha = finish_stream_digest(shas, self.event_count)
        return self._stream_sha

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical identity (header + stream digest).

        This is the identity the artifact store keys replayed results by
        -- and dedups trace files by: it changes whenever the stream, the
        workload identity, or the format version changes.
        """
        digest = hashlib.sha256()
        digest.update(MAGIC)
        digest.update(bytes([FORMAT_VERSION]))
        digest.update(
            json.dumps(self.header_dict(), sort_keys=True).encode("utf-8")
        )
        digest.update(self.stream_sha256.encode("ascii"))
        return digest.hexdigest()

    def _scan_has_forwarded(self) -> bool:
        """Derive ``has_forwarded`` by replaying membership over events."""
        fwd: set[int] = set()
        for event in self.events():
            op = event[0]
            if op == ev.LOAD or op == ev.STORE:
                if fwd and (event[1] & ~7) in fwd:
                    return True
            elif op == ev.UNF_WRITE:
                word = event[1] & ~7
                if event[3]:
                    fwd.add(word)
                else:
                    fwd.discard(word)
        return False

    def footer_dict(self) -> dict[str, Any]:
        """The index footer (chunk directory + stream shape)."""
        if self.has_forwarded is None:
            self.has_forwarded = self._scan_has_forwarded()
        index = []
        offset = 0
        for chunk in self.chunks:
            columns = [
                [len(blob), raw_len, sha]
                for blob, raw_len, sha in zip(
                    chunk.data, chunk.raw_lens, chunk.shas
                )
            ]
            index.append(
                [offset, chunk.event_count, chunk.start_address, columns]
            )
            offset += sum(len(blob) for blob in chunk.data)
        return {
            "event_count": self.event_count,
            "has_forwarded": self.has_forwarded,
            "stream_sha256": self.stream_sha256,
            "chunks": index,
        }

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        header = json.dumps(self.header_dict(), sort_keys=True).encode("utf-8")
        footer = json.dumps(self.footer_dict(), sort_keys=True).encode("utf-8")
        out = bytearray()
        out += MAGIC
        out.append(FORMAT_VERSION)
        append_uvarint(out, len(header))
        out += header
        for chunk in self.chunks:
            for blob in chunk.data:
                out += blob
        out += footer
        out += _TRAILER.pack(len(footer), FOOTER_MAGIC)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Trace":
        if len(data) < len(MAGIC) + 1 or data[: len(MAGIC)] != MAGIC:
            raise TraceFormatError("not a trace: bad magic")
        version = data[len(MAGIC)]
        if version == FORMAT_VERSION:
            return cls._from_bytes_v3(data)
        if version == V2_FORMAT_VERSION:
            return cls._from_bytes_v2(data)
        raise TraceFormatError(
            f"unsupported trace format version {version} "
            f"(can read {', '.join(str(v) for v in SUPPORTED_VERSIONS)})",
            version=version,
        )

    @classmethod
    def _from_bytes_v3(cls, data: bytes) -> "Trace":
        header, chunk_start = _parse_header(data)
        footer, footer_start = _parse_footer(data, chunk_start)
        try:
            chunks = _parse_chunks(data, chunk_start, footer_start, footer)
            event_count = footer["event_count"]
            has_forwarded = footer["has_forwarded"]
            stream_sha = footer["stream_sha256"]
        except TraceFormatError:
            raise
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"corrupt trace footer: {type(exc).__name__}: {exc}"
            ) from exc
        if header["event_count"] != event_count:
            raise TraceFormatError(
                f"event count mismatch: header says {header['event_count']}, "
                f"footer says {event_count}"
            )
        # Full verification pass: decompress every column once, checking
        # the per-column digests (corruption names chunk + column) and
        # accumulating the stream digest.
        shas = [hashlib.sha256() for _ in COLUMN_NAMES]
        decoded_events = 0
        for index, chunk in enumerate(chunks):
            for sha, raw in zip(shas, chunk.columns(index)):
                sha.update(raw)
            decoded_events += chunk.event_count
        if decoded_events != event_count:
            raise TraceFormatError(
                f"event count mismatch: chunks carry {decoded_events}, "
                f"footer says {event_count}"
            )
        if finish_stream_digest(shas, event_count) != stream_sha:
            raise TraceFormatError(
                "trace stream hash mismatch (corrupt or tampered)"
            )
        return cls(
            app=header["app"],
            variant=header["variant"],
            scale=header["scale"],
            seed=header["seed"],
            line_size=header["line_size"],
            line_size_sensitive=header["line_size_sensitive"],
            checksum=header["checksum"],
            extras=header["extras"],
            captured_stats=header["captured_stats"],
            pool_names=list(header["pool_names"]),
            event_count=event_count,
            chunks=chunks,
            has_forwarded=bool(has_forwarded),
            _stream_sha=stream_sha,
        )

    @classmethod
    def _from_bytes_v2(cls, data: bytes) -> "Trace":
        """Read a monolithic v2 trace, converting its payload to chunks."""
        header, payload_start = _parse_header(data)
        payload = data[payload_start:]
        required = ("event_count", "payload_len", "payload_sha256")
        missing = [key for key in required if key not in header]
        if missing:
            raise TraceFormatError(f"trace header missing fields {missing}")
        if len(payload) != header["payload_len"]:
            raise TraceFormatError(
                f"truncated trace payload: have {len(payload)} bytes, "
                f"header says {header['payload_len']}"
            )
        if hashlib.sha256(payload).hexdigest() != header["payload_sha256"]:
            raise TraceFormatError(
                "trace payload hash mismatch (corrupt or tampered)"
            )
        writer = ChunkWriter()
        for event in iter_v2_payload(payload):
            writer.add(event)
        chunks, event_count, has_forwarded, stream_sha = writer.finish()
        if event_count != header["event_count"]:
            raise TraceFormatError(
                f"event count mismatch: decoded {event_count}, "
                f"header says {header['event_count']}"
            )
        return cls(
            app=header["app"],
            variant=header["variant"],
            scale=header["scale"],
            seed=header["seed"],
            line_size=header["line_size"],
            line_size_sensitive=header["line_size_sensitive"],
            checksum=header["checksum"],
            extras=header["extras"],
            captured_stats=header["captured_stats"],
            pool_names=list(header["pool_names"]),
            event_count=event_count,
            chunks=chunks,
            has_forwarded=has_forwarded,
            _stream_sha=stream_sha,
        )

    def save(self, path) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path, "rb") as handle:
            data = handle.read()
        try:
            return cls.from_bytes(data)
        except TraceFormatError as exc:
            if exc.path is None:
                exc.path = str(path)
            raise

    # ------------------------------------------------------------------
    def events(self) -> Iterator[tuple]:
        """Decode the chunks, yielding one operand tuple per event.

        The first element of each tuple is the opcode (see
        :mod:`repro.trace.events`); addresses are already de-delta'd to
        absolute values.  Chunks are decoded one at a time -- resident
        raw data never exceeds one chunk's columns.
        """
        last = 0
        total = 0
        for index, chunk in enumerate(self.chunks):
            if chunk.start_address != last:
                raise TraceFormatError(
                    f"chunk {index} start address {chunk.start_address} "
                    f"does not continue the stream (register is {last})"
                )
            ops_raw, addr_raw, aux_raw = chunk.columns(index)
            ai = 0
            xi = 0
            read = read_uvarint
            for op in ops_raw:
                if op == ev.LOAD:
                    delta, ai = read(addr_raw, ai)
                    size, xi = read(aux_raw, xi)
                    last += unzigzag(delta)
                    yield (op, last, size)
                elif op == ev.STORE:
                    delta, ai = read(addr_raw, ai)
                    value, xi = read(aux_raw, xi)
                    size, xi = read(aux_raw, xi)
                    last += unzigzag(delta)
                    yield (op, last, unzigzag(value), size)
                elif op == ev.EXECUTE:
                    n, xi = read(aux_raw, xi)
                    yield (op, n)
                elif op == ev.PREFETCH:
                    delta, ai = read(addr_raw, ai)
                    lines, xi = read(aux_raw, xi)
                    last += unzigzag(delta)
                    yield (op, last, lines)
                elif op in (ev.READ_FBIT, ev.UNF_READ, ev.FREE):
                    delta, ai = read(addr_raw, ai)
                    last += unzigzag(delta)
                    yield (op, last)
                elif op == ev.UNF_WRITE:
                    delta, ai = read(addr_raw, ai)
                    value, xi = read(aux_raw, xi)
                    fbit, xi = read(aux_raw, xi)
                    last += unzigzag(delta)
                    yield (op, last, unzigzag(value), fbit)
                elif op == ev.MALLOC:
                    nbytes, xi = read(aux_raw, xi)
                    align, xi = read(aux_raw, xi)
                    delta, ai = read(addr_raw, ai)
                    last += unzigzag(delta)
                    yield (op, nbytes, align, last)
                elif op == ev.CREATE_POOL:
                    size, xi = read(aux_raw, xi)
                    yield (op, size)
                elif op == ev.POOL_ALLOC:
                    pool, xi = read(aux_raw, xi)
                    nbytes, xi = read(aux_raw, xi)
                    align, xi = read(aux_raw, xi)
                    delta, ai = read(addr_raw, ai)
                    last += unzigzag(delta)
                    yield (op, pool, nbytes, align, last)
                elif op == ev.RAW_WRITE:
                    delta, ai = read(addr_raw, ai)
                    value, xi = read(aux_raw, xi)
                    last += unzigzag(delta)
                    yield (op, last, unzigzag(value))
                elif op == ev.NOTE_RELOC:
                    relocations, xi = read(aux_raw, xi)
                    words, xi = read(aux_raw, xi)
                    yield (op, relocations, words)
                elif op == ev.NOTE_OPT:
                    yield (op,)
                elif op == ev.SET_TRAP:
                    flag, xi = read(aux_raw, xi)
                    yield (op, flag)
                else:
                    raise TraceFormatError(
                        f"unknown opcode {op} in chunk {index}"
                    )
            if ai != len(addr_raw) or xi != len(aux_raw):
                raise TraceFormatError(
                    f"trailing bytes in chunk {index} columns "
                    f"(addr {len(addr_raw) - ai}, aux {len(aux_raw) - xi})"
                )
            total += len(ops_raw)
        if total != self.event_count:
            raise TraceFormatError(
                f"event count mismatch: decoded {total}, "
                f"header says {self.event_count}"
            )


# ----------------------------------------------------------------------
# v3 parsing helpers
# ----------------------------------------------------------------------
_REQUIRED_HEADER = (
    "app", "variant", "scale", "seed", "line_size",
    "line_size_sensitive", "checksum", "extras", "captured_stats",
    "pool_names", "event_count",
)
_REQUIRED_FOOTER = ("event_count", "has_forwarded", "stream_sha256", "chunks")


def _parse_header(data: bytes) -> tuple[dict, int]:
    """Parse magic/version/header; returns ``(header, body_offset)``."""
    header_len, offset = read_uvarint(data, len(MAGIC) + 1)
    if offset + header_len > len(data):
        raise TraceFormatError("truncated trace header")
    try:
        header = json.loads(data[offset : offset + header_len])
    except ValueError as exc:
        raise TraceFormatError(f"corrupt trace header: {exc}") from exc
    if not isinstance(header, dict):
        raise TraceFormatError("corrupt trace header: not a JSON object")
    missing = [key for key in _REQUIRED_HEADER if key not in header]
    if missing:
        raise TraceFormatError(f"trace header missing fields {missing}")
    return header, offset + header_len


def _parse_footer(data: bytes, chunk_start: int) -> tuple[dict, int]:
    """Parse the trailer + footer; returns ``(footer, footer_offset)``."""
    if len(data) < chunk_start + _TRAILER.size:
        raise TraceFormatError("truncated trace: missing footer trailer")
    footer_len, footer_magic = _TRAILER.unpack_from(
        data, len(data) - _TRAILER.size
    )
    if footer_magic != FOOTER_MAGIC:
        raise TraceFormatError("corrupt trace: bad footer magic")
    footer_start = len(data) - _TRAILER.size - footer_len
    if footer_start < chunk_start:
        raise TraceFormatError("corrupt trace: footer overlaps chunk region")
    try:
        footer = json.loads(data[footer_start : footer_start + footer_len])
    except ValueError as exc:
        raise TraceFormatError(f"corrupt trace footer: {exc}") from exc
    if not isinstance(footer, dict):
        raise TraceFormatError("corrupt trace footer: not a JSON object")
    missing = [key for key in _REQUIRED_FOOTER if key not in footer]
    if missing:
        raise TraceFormatError(f"trace footer missing fields {missing}")
    return footer, footer_start


def _chunk_from_index(
    entry, blob_reader, chunk_region_len: int, index: int
) -> Chunk:
    """Build one :class:`Chunk` from its footer row.

    ``blob_reader(region_offset, length)`` supplies compressed bytes;
    bounds are validated against the chunk region's extent first so a
    truncated file fails cleanly rather than slicing short.
    """
    offset, events, start_address, columns = entry
    if len(columns) != len(COLUMN_NAMES):
        raise TraceFormatError(
            f"chunk {index}: expected {len(COLUMN_NAMES)} columns, "
            f"footer lists {len(columns)}"
        )
    blobs = []
    raw_lens = []
    shas = []
    cursor = int(offset)
    for name, (comp_len, raw_len, sha) in zip(COLUMN_NAMES, columns):
        if cursor + comp_len > chunk_region_len:
            raise TraceFormatError(
                f"truncated chunk {index} column {name!r}: needs "
                f"{comp_len} bytes at region offset {cursor}"
            )
        blobs.append(blob_reader(cursor, int(comp_len)))
        raw_lens.append(int(raw_len))
        shas.append(sha)
        cursor += comp_len
    return Chunk(
        event_count=int(events),
        start_address=int(start_address),
        data=tuple(blobs),
        raw_lens=tuple(raw_lens),
        shas=tuple(shas),
    )


def _parse_chunks(
    data: bytes, chunk_start: int, footer_start: int, footer: dict
) -> tuple[Chunk, ...]:
    region_len = footer_start - chunk_start
    reader = lambda off, n: data[chunk_start + off : chunk_start + off + n]  # noqa: E731
    return tuple(
        _chunk_from_index(entry, reader, region_len, i)
        for i, entry in enumerate(footer["chunks"])
    )


# ----------------------------------------------------------------------
# Random access: header + footer without the chunk region
# ----------------------------------------------------------------------
@dataclass
class TraceIndex:
    """Header + footer of a v3 trace file, loaded with two seeks.

    Enough to answer identity/shape questions (``corpus ls``/``stat``,
    the serve tier's warm probes via the manifest fallback) without
    reading a single chunk -- and to fetch individual chunks by index.
    """

    path: str
    header: dict
    footer: dict
    chunk_region_offset: int

    @property
    def event_count(self) -> int:
        return self.footer["event_count"]

    @property
    def has_forwarded(self) -> bool:
        return bool(self.footer["has_forwarded"])

    @property
    def stream_sha256(self) -> str:
        return self.footer["stream_sha256"]

    @property
    def chunk_count(self) -> int:
        return len(self.footer["chunks"])

    @property
    def content_hash(self) -> str:
        digest = hashlib.sha256()
        digest.update(MAGIC)
        digest.update(bytes([FORMAT_VERSION]))
        digest.update(json.dumps(self.header, sort_keys=True).encode("utf-8"))
        digest.update(self.stream_sha256.encode("ascii"))
        return digest.hexdigest()

    def read_chunk(self, index: int) -> Chunk:
        """Random-access read of one chunk (verified on decode)."""
        try:
            entry = self.footer["chunks"][index]
        except IndexError:
            raise TraceFormatError(
                f"chunk {index} out of range (trace has {self.chunk_count})",
                path=self.path,
            ) from None
        with open(self.path, "rb") as handle:
            region_end = handle.seek(0, 2)

            def reader(off: int, n: int) -> bytes:
                handle.seek(self.chunk_region_offset + off)
                return handle.read(n)

            try:
                return _chunk_from_index(
                    entry, reader, region_end - self.chunk_region_offset, index
                )
            except (TypeError, ValueError, IndexError) as exc:
                raise TraceFormatError(
                    f"corrupt footer entry for chunk {index}: {exc}",
                    path=self.path,
                ) from exc


def load_index(path) -> TraceIndex:
    """Load a v3 trace's header and footer without its chunks.

    Raises :class:`TraceFormatError` (with ``path`` and, for version
    mismatches, ``version`` attached) for v2 or unknown files -- callers
    that must handle v2 fall back to :meth:`Trace.load`.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(MAGIC) + 1)
            if len(head) < len(MAGIC) + 1 or head[: len(MAGIC)] != MAGIC:
                raise TraceFormatError("not a trace: bad magic", path=path)
            version = head[len(MAGIC)]
            if version != FORMAT_VERSION:
                raise TraceFormatError(
                    f"no random-access index in format version {version} "
                    f"(requires {FORMAT_VERSION})",
                    path=path,
                    version=version,
                )
            header_len = 0
            shift = 0
            while True:
                byte = handle.read(1)
                if not byte:
                    raise TraceFormatError("truncated trace header", path=path)
                header_len |= (byte[0] & 0x7F) << shift
                if not byte[0] & 0x80:
                    break
                shift += 7
            header_blob = handle.read(header_len)
            if len(header_blob) < header_len:
                raise TraceFormatError("truncated trace header", path=path)
            chunk_region_offset = handle.tell()
            file_size = handle.seek(0, 2)
            if file_size < chunk_region_offset + _TRAILER.size:
                raise TraceFormatError(
                    "truncated trace: missing footer trailer", path=path
                )
            handle.seek(file_size - _TRAILER.size)
            footer_len, footer_magic = _TRAILER.unpack(
                handle.read(_TRAILER.size)
            )
            if footer_magic != FOOTER_MAGIC:
                raise TraceFormatError(
                    "corrupt trace: bad footer magic", path=path
                )
            footer_start = file_size - _TRAILER.size - footer_len
            if footer_start < chunk_region_offset:
                raise TraceFormatError(
                    "corrupt trace: footer overlaps chunk region", path=path
                )
            handle.seek(footer_start)
            footer_blob = handle.read(footer_len)
    except OSError as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise TraceFormatError(f"unreadable trace: {exc}", path=path) from exc
    try:
        header = json.loads(header_blob)
        footer = json.loads(footer_blob)
    except ValueError as exc:
        raise TraceFormatError(
            f"corrupt trace header/footer: {exc}", path=path
        ) from exc
    if not isinstance(header, dict) or not isinstance(footer, dict):
        raise TraceFormatError(
            "corrupt trace header/footer: not JSON objects", path=path
        )
    missing = [key for key in _REQUIRED_HEADER if key not in header]
    missing += [key for key in _REQUIRED_FOOTER if key not in footer]
    if missing:
        raise TraceFormatError(
            f"trace header/footer missing fields {missing}", path=path
        )
    return TraceIndex(
        path=str(path),
        header=header,
        footer=footer,
        chunk_region_offset=chunk_region_offset,
    )


def peek_version(path) -> int:
    """Read just the magic + version byte of a trace file."""
    with open(path, "rb") as handle:
        head = handle.read(len(MAGIC) + 1)
    if len(head) < len(MAGIC) + 1 or head[: len(MAGIC)] != MAGIC:
        raise TraceFormatError("not a trace: bad magic", path=path)
    return head[len(MAGIC)]


# ----------------------------------------------------------------------
# v2 interop: decode the monolithic payload / re-encode a trace as v2
# ----------------------------------------------------------------------
def iter_v2_payload(payload: bytes) -> Iterator[tuple]:
    """Decode a v2 monolithic varint payload into event tuples."""
    length = len(payload)
    offset = 0
    last = 0
    read = read_uvarint
    while offset < length:
        op = payload[offset]
        offset += 1
        if op == ev.LOAD:
            delta, offset = read(payload, offset)
            size, offset = read(payload, offset)
            last += unzigzag(delta)
            yield (op, last, size)
        elif op == ev.STORE:
            delta, offset = read(payload, offset)
            value, offset = read(payload, offset)
            size, offset = read(payload, offset)
            last += unzigzag(delta)
            yield (op, last, unzigzag(value), size)
        elif op == ev.EXECUTE:
            n, offset = read(payload, offset)
            yield (op, n)
        elif op == ev.PREFETCH:
            delta, offset = read(payload, offset)
            lines, offset = read(payload, offset)
            last += unzigzag(delta)
            yield (op, last, lines)
        elif op in (ev.READ_FBIT, ev.UNF_READ, ev.FREE):
            delta, offset = read(payload, offset)
            last += unzigzag(delta)
            yield (op, last)
        elif op == ev.UNF_WRITE:
            delta, offset = read(payload, offset)
            value, offset = read(payload, offset)
            fbit, offset = read(payload, offset)
            last += unzigzag(delta)
            yield (op, last, unzigzag(value), fbit)
        elif op == ev.MALLOC:
            nbytes, offset = read(payload, offset)
            align, offset = read(payload, offset)
            delta, offset = read(payload, offset)
            last += unzigzag(delta)
            yield (op, nbytes, align, last)
        elif op == ev.CREATE_POOL:
            size, offset = read(payload, offset)
            yield (op, size)
        elif op == ev.POOL_ALLOC:
            index, offset = read(payload, offset)
            nbytes, offset = read(payload, offset)
            align, offset = read(payload, offset)
            delta, offset = read(payload, offset)
            last += unzigzag(delta)
            yield (op, index, nbytes, align, last)
        elif op == ev.RAW_WRITE:
            delta, offset = read(payload, offset)
            value, offset = read(payload, offset)
            last += unzigzag(delta)
            yield (op, last, unzigzag(value))
        elif op == ev.NOTE_RELOC:
            relocations, offset = read(payload, offset)
            words, offset = read(payload, offset)
            yield (op, relocations, words)
        elif op == ev.NOTE_OPT:
            yield (op,)
        elif op == ev.SET_TRAP:
            flag, offset = read(payload, offset)
            yield (op, flag)
        else:
            raise TraceFormatError(
                f"unknown opcode {op} at payload offset {offset - 1}"
            )


def encode_v2(trace: Trace) -> bytes:
    """Serialise ``trace`` in the legacy v2 monolithic layout.

    Exists for the migration round-trip tests and the CI corpus-smoke
    job: a v2 file produced here, loaded through the version-dispatched
    reader, must replay bit-exactly against its v3 sibling.
    """
    payload = bytearray()
    last = 0
    for event in trace.events():
        op = event[0]
        payload.append(op)
        addr_pos = _ADDR_POSITION.get(op)
        signed = _SIGNED_AUX.get(op, ())
        for pos in range(1, len(event)):
            if pos == addr_pos:
                append_svarint(payload, event[pos] - last)
                last = event[pos]
            elif pos in signed:
                append_svarint(payload, event[pos])
            else:
                append_uvarint(payload, event[pos])
    header = dict(trace.header_dict())
    header["payload_len"] = len(payload)
    header["payload_sha256"] = hashlib.sha256(bytes(payload)).hexdigest()
    header_blob = json.dumps(header, sort_keys=True).encode("utf-8")
    out = bytearray()
    out += MAGIC
    out.append(V2_FORMAT_VERSION)
    append_uvarint(out, len(header_blob))
    out += header_blob
    out += payload
    return bytes(out)
