"""The binary trace format: varint/delta encoding, header, integrity.

A trace file is::

    magic "RTRC" | version u8 | uvarint header_len | header JSON | payload

The header carries the trace's identity (app, variant, scale, seed,
capturing line size, line-size sensitivity), the run's semantic outputs
(checksum, extras), pool names in creation order, the event count, and
the payload's length and SHA-256 -- so truncation and corruption are both
detected at load time, before a single event is decoded.

The payload is the event stream described in :mod:`repro.trace.events`:
one opcode byte per event followed by varint operands, with addresses
delta-encoded against a running register.  Encoding is streaming (the
recorder appends to the payload as events arrive) and decoding is a
generator, so neither side ever materialises an event-tuple list.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.trace import events as ev

MAGIC = b"RTRC"
#: Bump on any incompatible change to the header or payload encoding --
#: or to the captured-stats contract (version 2 added the forwarding
#: chain-length histogram to ``captured_stats``, which replay consumes).
FORMAT_VERSION = 2


class TraceFormatError(Exception):
    """A trace file or byte string could not be decoded."""


# ----------------------------------------------------------------------
# Varint primitives (unsigned LEB128 + zigzag for signed deltas)
# ----------------------------------------------------------------------
def append_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def append_svarint(out: bytearray, value: int) -> None:
    """Append a signed integer, zigzag-mapped then LEB128."""
    append_uvarint(out, zigzag(value))


def zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one (0,-1,1,-2 -> 0,1,2,3)."""
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return value >> 1 if (value & 1) == 0 else -((value + 1) >> 1)


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one LEB128 varint at ``offset``; returns ``(value, next)``."""
    result = 0
    shift = 0
    length = len(data)
    while True:
        if offset >= length:
            raise TraceFormatError("truncated varint in trace payload")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


# ----------------------------------------------------------------------
# The trace object
# ----------------------------------------------------------------------
@dataclass
class Trace:
    """One captured reference stream plus its identity and outputs."""

    app: str
    variant: str
    scale: float
    seed: int
    #: Line size of the capturing machine config.
    line_size: int
    #: True if the stream is only valid at exactly ``line_size``.
    line_size_sensitive: bool
    #: Semantic output of the captured run (variant-invariant).
    checksum: int
    extras: dict[str, Any] = field(default_factory=dict)
    #: Full :meth:`~repro.core.stats.MachineStats.dump` of the capturing
    #: run.  Replay recomputes every config-dependent counter but copies
    #: the config-*invariant* ones (relocation activity, forwarding hop
    #: totals, heap footprint) from here -- they are properties of the
    #: event stream, not of the cache the stream is replayed against.
    captured_stats: dict[str, Any] = field(default_factory=dict)
    #: Pool names, in ``create_pool`` order (events carry only indices).
    pool_names: list[str] = field(default_factory=list)
    event_count: int = 0
    payload: bytes = b""
    #: Decode-once cache: the resolved event stream, populated lazily by
    #: :func:`repro.trace.replay.resolved_stream`.  Derived state, not
    #: identity -- excluded from equality, repr, and the header, so two
    #: traces compare equal whether or not either has been decoded, and
    #: a round-trip through ``to_bytes``/``from_bytes`` starts cold.
    _resolved: list | None = field(
        default=None, repr=False, compare=False,
    )
    #: Whether the resolved stream contains any forwarded reference;
    #: populated alongside ``_resolved``.  The specialized kernels use
    #: it to pick the counters-only speculation mode (see
    #: :mod:`repro.trace.kernels`).  Derived state, like ``_resolved``.
    _has_forwarded: bool | None = field(
        default=None, repr=False, compare=False,
    )
    #: Where a decoded-stream sidecar for this trace may live on disk
    #: (attached by :class:`repro.trace.store.ArtifactStore` when it
    #: loads or saves the trace; ``None`` for traces with no store).
    #: :func:`repro.trace.replay.resolved_stream` reads and writes it.
    #: Derived state, like ``_resolved``.
    _resolved_path: Any = field(
        default=None, repr=False, compare=False,
    )

    # ------------------------------------------------------------------
    def header_dict(self) -> dict[str, Any]:
        """The JSON header (includes payload length and digest)."""
        return {
            "app": self.app,
            "variant": self.variant,
            "scale": self.scale,
            "seed": self.seed,
            "line_size": self.line_size,
            "line_size_sensitive": self.line_size_sensitive,
            "checksum": self.checksum,
            "extras": self.extras,
            "captured_stats": self.captured_stats,
            "pool_names": self.pool_names,
            "event_count": self.event_count,
            "payload_len": len(self.payload),
            "payload_sha256": hashlib.sha256(self.payload).hexdigest(),
        }

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical serialisation (header + payload).

        This is the identity the artifact store keys replayed results by:
        it changes whenever the stream, the workload identity, or the
        format version changes.
        """
        digest = hashlib.sha256()
        digest.update(MAGIC)
        digest.update(bytes([FORMAT_VERSION]))
        digest.update(
            json.dumps(self.header_dict(), sort_keys=True).encode("utf-8")
        )
        digest.update(self.payload)
        return digest.hexdigest()

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        header = json.dumps(self.header_dict(), sort_keys=True).encode("utf-8")
        out = bytearray()
        out += MAGIC
        out.append(FORMAT_VERSION)
        append_uvarint(out, len(header))
        out += header
        out += self.payload
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Trace":
        if len(data) < len(MAGIC) + 1 or data[: len(MAGIC)] != MAGIC:
            raise TraceFormatError("not a trace: bad magic")
        version = data[len(MAGIC)]
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        header_len, offset = read_uvarint(data, len(MAGIC) + 1)
        if offset + header_len > len(data):
            raise TraceFormatError("truncated trace header")
        try:
            header = json.loads(data[offset : offset + header_len])
        except ValueError as exc:
            raise TraceFormatError(f"corrupt trace header: {exc}") from exc
        payload = data[offset + header_len :]
        required = (
            "app", "variant", "scale", "seed", "line_size",
            "line_size_sensitive", "checksum", "extras", "captured_stats",
            "pool_names", "event_count", "payload_len", "payload_sha256",
        )
        missing = [key for key in required if key not in header]
        if missing:
            raise TraceFormatError(f"trace header missing fields {missing}")
        if len(payload) != header["payload_len"]:
            raise TraceFormatError(
                f"truncated trace payload: have {len(payload)} bytes, "
                f"header says {header['payload_len']}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header["payload_sha256"]:
            raise TraceFormatError(
                "trace payload hash mismatch (corrupt or tampered)"
            )
        return cls(
            app=header["app"],
            variant=header["variant"],
            scale=header["scale"],
            seed=header["seed"],
            line_size=header["line_size"],
            line_size_sensitive=header["line_size_sensitive"],
            checksum=header["checksum"],
            extras=header["extras"],
            captured_stats=header["captured_stats"],
            pool_names=list(header["pool_names"]),
            event_count=header["event_count"],
            payload=payload,
        )

    def save(self, path) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())

    # ------------------------------------------------------------------
    def events(self) -> Iterator[tuple]:
        """Decode the payload, yielding one operand tuple per event.

        The first element of each tuple is the opcode (see
        :mod:`repro.trace.events`); addresses are already de-delta'd to
        absolute values.
        """
        data = self.payload
        length = len(data)
        offset = 0
        last = 0
        count = 0
        read = read_uvarint
        while offset < length:
            op = data[offset]
            offset += 1
            if op == ev.LOAD:
                delta, offset = read(data, offset)
                size, offset = read(data, offset)
                last += unzigzag(delta)
                yield (op, last, size)
            elif op == ev.STORE:
                delta, offset = read(data, offset)
                value, offset = read(data, offset)
                size, offset = read(data, offset)
                last += unzigzag(delta)
                yield (op, last, unzigzag(value), size)
            elif op == ev.EXECUTE:
                n, offset = read(data, offset)
                yield (op, n)
            elif op == ev.PREFETCH:
                delta, offset = read(data, offset)
                lines, offset = read(data, offset)
                last += unzigzag(delta)
                yield (op, last, lines)
            elif op in (ev.READ_FBIT, ev.UNF_READ, ev.FREE):
                delta, offset = read(data, offset)
                last += unzigzag(delta)
                yield (op, last)
            elif op == ev.UNF_WRITE:
                delta, offset = read(data, offset)
                value, offset = read(data, offset)
                fbit, offset = read(data, offset)
                last += unzigzag(delta)
                yield (op, last, unzigzag(value), fbit)
            elif op == ev.MALLOC:
                nbytes, offset = read(data, offset)
                align, offset = read(data, offset)
                delta, offset = read(data, offset)
                last += unzigzag(delta)
                yield (op, nbytes, align, last)
            elif op == ev.CREATE_POOL:
                size, offset = read(data, offset)
                yield (op, size)
            elif op == ev.POOL_ALLOC:
                index, offset = read(data, offset)
                nbytes, offset = read(data, offset)
                align, offset = read(data, offset)
                delta, offset = read(data, offset)
                last += unzigzag(delta)
                yield (op, index, nbytes, align, last)
            elif op == ev.RAW_WRITE:
                delta, offset = read(data, offset)
                value, offset = read(data, offset)
                last += unzigzag(delta)
                yield (op, last, unzigzag(value))
            elif op == ev.NOTE_RELOC:
                relocations, offset = read(data, offset)
                words, offset = read(data, offset)
                yield (op, relocations, words)
            elif op == ev.NOTE_OPT:
                yield (op,)
            elif op == ev.SET_TRAP:
                flag, offset = read(data, offset)
                yield (op, flag)
            else:
                raise TraceFormatError(
                    f"unknown opcode {op} at payload offset {offset - 1}"
                )
            count += 1
        if count != self.event_count:
            raise TraceFormatError(
                f"event count mismatch: decoded {count}, "
                f"header says {self.event_count}"
            )
