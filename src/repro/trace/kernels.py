"""Exec-specialized replay kernels: one compiled loop per machine shape.

:func:`replay_specialized` does what :func:`repro.trace.replay.
replay_trace` does -- drive one config's hierarchy/timing/speculator with
a trace's resolved chunks -- but through a **generated** replay loop
compiled with :func:`exec` against that config's constants.  The loop
consumes one :class:`~repro.trace.replay.ResolvedChunk` per call,
indexing its flat ``kinds`` bytes / ``ops`` array directly (no
per-entry tuple allocation); cross-chunk machine state rides in the
component objects (the kernel reloads its hot locals on entry and
spills them on exit), and the trap flag is threaded through the call
as an argument/return value.  Constants baked in:

* line size, set masks, associativities, latencies, MSHR capacity,
  store-buffer depth, IPC, per-instruction overhead and the malloc/free
  cost model are baked in as literals (floats via :func:`repr`, which
  round-trips exactly, so every float operation happens on the same
  values as the general path);
* the replacement policy is specialized at generation time -- the LRU
  promote-on-hit shift is emitted only for LRU caches, the xorshift
  victim picker only for random ones, so FIFO/random kernels carry no
  dead branches;
* the hot counters (cycle, stall buckets, hit/miss counters, traffic,
  latency sums) are promoted to loop locals and written back to the
  component objects only at the end of the run and around the rare
  entry kinds (forwarded references, software prefetches) that must run
  against the layered components.

On top of the literal-folding, the generated loop applies a set of
transformations that are *provably* state-equivalent to the fused kernel
in :mod:`repro.core.hotpath` (each argued in comments/docstrings below):

* **MSHR probe elision.**  A local upper bound on the latest in-flight
  fill completion skips the per-reference MSHR dictionary probe whenever
  every entry has provably expired.  Expired entries are then deleted a
  little later than the general path deletes them -- but always before
  any observation: the allocate-path floor scan (which runs whenever an
  expired entry exists, because the floor is below it) removes every
  expired entry before ``len``/``min`` are consulted.
* **Sentinel tag probes.**  :class:`repro.cache.cache.Cache` keeps the
  ``-1`` sentinel in every vacant tag slot (see its docstring), so the
  kernel probes way 0 -- the hit position for the overwhelming majority
  of references under LRU -- with a single compare and no occupancy
  fetch, and scans the remaining ways to the constant associativity
  bound (vacant slots can never match).
* **Hit-arm completion inlining.**  The dominant way-0 load hit
  completes in place instead of falling through the shared staging/tail:
  and when the config's hit latency sits inside the OoO window with half
  a cycle of margin, the residual check is dropped entirely (it is
  provably negative for any start cycle below ``2**49``; a run-time
  guard in :func:`replay_specialized` re-runs the general path in the
  absurd case that bound is ever reached).  See :func:`_load_tail` and
  :func:`_elides_residual` for the exactness argument.
* **Speculation counter derivation.**  ``loads_checked`` increments in
  lockstep with ``ref.load.count`` (and ``stores_tracked`` with
  ``ref.store.count``) on every path through the kernel, so the
  per-reference speculator counter increments are dropped and the totals
  are recovered from the latency counts at spill time.
* **Counters-only speculation.**  When the trace contains no forwarded
  reference at all (known at decode time), a misspeculation is
  impossible: every store queue entry has initial == final, so the
  collision test ``store_initial != load_word`` can never pass, and the
  queue/map/count structures are observable only through that test and
  the stats.  The kernel then skips the store-queue bookkeeping and the
  per-load map probe entirely.

The generated bodies are otherwise a transcription of the fused hotpath
kernel (itself a pinned transcription of the layered general path), so
every float operation happens in the same order on the same values and
the resulting :class:`~repro.core.stats.MachineStats` are
**bit-identical** to ``replay_trace``'s.  ``tests/integration/
test_batch_parity.py`` and the hypothesis suite in ``tests/property/
test_batch_properties.py`` enforce that contract.

Supported-feature matrix (see DESIGN.md Section 5g): a config is
:func:`specializable` iff it uses no timeline sampling, no event log,
and no L1 miss-path mechanism.  Everything else -- all replacement
policies, speculation on or off, any geometry/latency/cost values --
is covered.  Callers (the batch engine) gate on :func:`specializable`
and fall back to the general ``replay_trace`` path otherwise.
"""

from __future__ import annotations

from string import Template
from typing import Callable

from repro.apps.base import AppResult, Variant
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.machine import MachineConfig
from repro.core.stats import MachineStats, ReferenceLatencyStats, RelocationStats
from repro.cpu.prefetch import SoftwarePrefetcher
from repro.cpu.speculation import DependenceSpeculator
from repro.cpu.timing import TimingModel
from repro.trace.format import Trace
from repro.trace.replay import (
    check_line_size,
    drive_sessions,
    has_forwarded_entries,
    replay_trace,
)

#: Replacement-mode constants, mirrored from repro.cache.cache.
_LRU = 0
_RANDOM = 2

#: Speculation modes of the generated kernel.
SPEC_OFF = 0        #: speculation_window == 0: no speculator at all.
SPEC_FULL = 1       #: trace has forwarded references: full bookkeeping.
SPEC_COUNTERS = 2   #: no forwarded references: counters only (see above).


class SpecializationError(Exception):
    """The config uses a feature the specializer does not cover."""


def specializable(config: MachineConfig) -> bool:
    """True iff ``config`` is covered by the specialized kernel.

    The exclusions are exactly the features whose accounting lives
    outside the fused reference kernel: timeline sampling (per
    reference tick hooks), the discrete event log (events cells run
    direct anyway -- replay cannot reproduce the event stream), the
    L1 miss-path mechanisms (the fused kernel itself gates off to the
    layered path for those), and adaptive relocation (which implies a
    timeline and runs the general path by design).
    """
    return (
        config.timeline_interval == 0
        and config.events_capacity == 0
        and config.hierarchy.mechanism == "none"
        and config.adapt is None
    )


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------

def _emit(lines: list[str], level: int, block: str) -> None:
    """Append ``block`` (written at indent 0) at ``level`` * 4 spaces."""
    pad = "    " * level
    for line in block.strip("\n").split("\n"):
        lines.append(pad + line if line else "")


def _load_tail(c: dict, counted: bool, arm: str) -> str:
    """The load-completion accounting for one hit/merge arm.

    ``arm`` picks what is statically known about ``ready``:

    * ``"hit"`` -- ``ready`` is ``start + hit_latency`` with ``start ==
      cycle`` untouched so far.  When :func:`_elides_residual` holds for
      the config, the OoO-window check is dropped (the residual is
      provably negative, see there) and ``start``/``ready`` are never
      materialized; the latency sum still performs the identical
      ``(cycle + hit) - cycle`` float operations the general path does.
    * ``"merge"`` -- ``start`` and ``ready`` are already bound (``ready``
      came from an in-flight fill): the full residual check plus latency
      accounting, exactly the general path's shared tail.
    """
    if arm == "hit":
        if _elides_residual(c):
            if not counted:
                return "pass"
            return "load_ord += (cycle + $L1_HIT_LATENCY) - cycle"
        # The residual can stall here (hit latency ~ window), so stage
        # start before cycle mutates, exactly like the general path.
        body = """\
start = cycle
ready = start + $L1_HIT_LATENCY
residual = ready - start - $OOO_WINDOW
if residual > 0.0:
    load_stall += residual
    cycle += residual"""
    else:
        body = """\
residual = ready - start - $OOO_WINDOW
if residual > 0.0:
    load_stall += residual
    cycle += residual"""
    if counted:
        body += "\nload_ord += ready - start"
    return body


def _elides_residual(c: dict) -> bool:
    """True when an L1-hit load provably never stalls the OoO window.

    The computed ``ready - start`` for a hit is ``fl(start + h) - start``
    with ``h = hit_latency``; by Sterbenz the subtraction is exact, so
    the value is ``h`` plus the rounding error of the addition, at most
    ``2**-53 * (start + h) < 0.5`` for ``start < 2**49`` (the run-time
    guard in :func:`replay_specialized`).  With half a cycle of margin on
    the window the residual is then provably negative and the check --
    and with it the entire ``ready`` staging -- can be dropped from the
    hit arm.
    """
    return c["L1_HIT_LATENCY"] + 0.5 <= c["OOO_WINDOW"]


def _ref_body(c: dict, spec: int, store: bool, counted: bool) -> str:
    """Generate one reference body (hotpath ``load_ref``/``store_ref``).

    ``store`` picks the store variant (dirty fills, store-buffer
    retirement, on_store bookkeeping); ``counted`` distinguishes a full
    data reference from the ``bare`` word-granular access kinds.
    """
    out: list[str] = []
    e = lambda level, block: _emit(out, level, block)  # noqa: E731
    hits = "l1_sh" if store else "l1_lh"
    misses = "l1_sm" if store else "l1_lm"
    partial = "mc_sp" if store else "mc_lp"
    full = "mc_sf" if store else "mc_lf"
    fill_dirty = "1" if store else "0"

    # TimingModel.execute(1), inlined.  The two cycle adds fold into one
    # left-associated expression -- same operations, same order, same
    # rounding -- and 1 * ipc == ipc exactly, so the multiply is gone.
    # The way-0 probe leans on the Cache tag-sentinel invariant (vacant
    # slots hold -1, which no line address equals), so the occupancy
    # count is only fetched on the slower arms.
    e(0, """\
instructions += 1
cycle = cycle + $IPC + $INST_OVERHEAD
inst_stall += $INST_OVERHEAD
line = address >> $LINE_SHIFT
base = (line & $SET_MASK) * $ASSOC
if tags[base] == line:""")
    # Way-0 hit, the dominant case: the LRU promote is a no-op there, so
    # the whole reference reduces to the hit counter plus the MSHR
    # combine check -- no ``hit`` flag, no staging variable.  The MSHR
    # probe itself is elided when every in-flight fill has provably
    # completed: ``mshr_max`` is a sound upper bound on the latest ready
    # time, and expired entries then linger until the next allocate-path
    # floor scan, which runs before any len()/min() observation (an
    # expired entry pins the floor at or below ``start``).
    if store:
        e(1, "dirty[base] = 1")
    e(1, f"{hits} += 1")
    # Stores thread ``ready`` into the store-buffer retirement below, and
    # full-bookkeeping speculation threads every counted load through the
    # shared on_load probe, so those variants keep the shared
    # staging/tail structure.  Everything else completes in place: each
    # arm carries its own tail, and the no-pending arms skip the staging
    # the shared tail would recompute (same float ops, same order -- see
    # _load_tail).
    inline_tails = not store and not (spec == SPEC_FULL and counted)
    # When a probe finds its entry expired, deleting it may empty the
    # MSHR entirely; dropping ``mshr_max`` to 0.0 then lets every
    # subsequent hit skip the probe until the next allocate raises it
    # again.  Exact: with no in-flight entry, a probe cannot find
    # anything, so skipping it is the same observable behaviour.
    if not inline_tails:
        e(1, """\
start = cycle
if mshr_max > start:
    pending = inflight_get(line << $LINE_SHIFT)
    if pending is not None and pending > start:
        ready = pending
        ms_comb += 1
        PARTIAL += 1
    else:
        if pending is not None:
            del inflight[line << $LINE_SHIFT]
            if not inflight:
                mshr_max = 0.0
        ready = start + $L1_HIT_LATENCY
else:
    ready = start + $L1_HIT_LATENCY""".replace("PARTIAL", partial))
    else:
        if counted:
            e(1, "load_count += 1")
        e(1, """\
if mshr_max > cycle:
    start = cycle
    pending = inflight_get(line << $LINE_SHIFT)
    if pending is not None and pending > start:
        ready = pending
        ms_comb += 1
        PARTIAL += 1""".replace("PARTIAL", partial))
        e(3, _load_tail(c, counted, "merge"))
        e(2, """\
else:
    if pending is not None:
        del inflight[line << $LINE_SHIFT]
        if not inflight:
            mshr_max = 0.0""")
        e(3, _load_tail(c, counted, "hit"))
        e(1, "else:")
        e(2, _load_tail(c, counted, "hit"))
    e(0, "else:")
    e(1, "start = cycle")
    e(1, "set_index = line & $SET_MASK")
    # Deeper ways: the sentinel makes a constant-bound scan safe (vacant
    # slots never match), so the occupancy count is not consulted here
    # either.  The way-1 probe is unrolled; deeper ways only exist for
    # associativity > 2.
    e(1, "hit = -1")
    if c["ASSOC"] > 1:
        probe = ["""\
if tags[base + 1] == line:
    hit = base + 1"""]
        if c["ASSOC"] > 2:
            probe.append("""\
else:
    for slot in range(base + 2, base + $ASSOC):
        if tags[slot] == line:
            hit = slot
            break""")
        probe.append("""\
if hit >= 0:""")
        e(1, "\n".join(probe))
        # Deeper hit: hit > base is guaranteed here, so the promote runs
        # unconditionally for LRU (exactly the original's hit != base
        # arm).
        if c["L1_MODE"] == _LRU:
            e(2, """\
d = dirty[hit]
slot = hit
while slot > base:
    tags[slot] = tags[slot - 1]
    dirty[slot] = dirty[slot - 1]
    slot -= 1
tags[base] = line
dirty[base] = d""")
            if store:
                e(2, "hit = base")
        if store:
            e(2, "dirty[hit] = 1")
        e(2, f"{hits} += 1")
    e(1, """\
pending = None
if mshr_max > start:
    line_addr = line << $LINE_SHIFT
    pending = inflight_get(line_addr)
    if pending is not None and pending <= start:
        del inflight[line_addr]
        if not inflight:
            mshr_max = 0.0
        pending = None
if pending is not None:
    ready = pending
    ms_comb += 1
    if hit < 0:
        MISSES += 1
    PARTIAL += 1
elif hit >= 0:
    ready = start + $L1_HIT_LATENCY
else:
    line_addr = line << $LINE_SHIFT""".replace(
        "MISSES", misses).replace("PARTIAL", partial))
    e(2, f"{misses} += 1")
    e(2, f"{full} += 1")
    # MemoryHierarchy._fill_from_below: single L2 probe.
    e(2, """\
l2_line = line_addr >> $L2_SHIFT
l2_set = l2_line & $L2_SET_MASK
l2_base = l2_set * $L2_ASSOC
n2 = l2_set_len[l2_set]
l2_hit = -1
if n2:
    if l2_tags[l2_base] == l2_line:
        l2_hit = l2_base
    elif n2 > 1:
        if l2_tags[l2_base + 1] == l2_line:
            l2_hit = l2_base + 1
        else:
            for slot in range(l2_base + 2, l2_base + n2):
                if l2_tags[slot] == l2_line:
                    l2_hit = slot
                    break
if l2_hit >= 0:""")
    if c["L2_MODE"] == _LRU:
        e(3, """\
if l2_hit != l2_base:
    d = l2_dirty[l2_hit]
    slot = l2_hit
    while slot > l2_base:
        l2_tags[slot] = l2_tags[slot - 1]
        l2_dirty[slot] = l2_dirty[slot - 1]
        slot -= 1
    l2_tags[l2_base] = l2_line
    l2_dirty[l2_base] = d""")
    # Fills probe the L2 as reads regardless of demand access type.
    e(3, """\
l2_stats.load_hits += 1
latency = $L2_FILL_LATENCY""")
    e(2, """\
else:
    l2_stats.load_misses += 1
    latency = $FULL_MISS_LATENCY
    t2mf += $L2_LINE_SIZE
    if n2 >= $L2_ASSOC:""")
    if c["L2_MODE"] == _RANDOM:
        e(4, """\
state = l2._rng_state
state ^= (state << 13) & 0xFFFFFFFF
state ^= state >> 17
state ^= (state << 5) & 0xFFFFFFFF
l2._rng_state = state
victim = l2_base + state % n2""")
    else:
        e(4, "victim = l2_base + n2 - 1")
    e(4, """\
victim_dirty = l2_dirty[victim]
l2_stats.evictions += 1
if victim_dirty:
    l2_stats.dirty_evictions += 1
ev_first = l2_tags[victim] << $L2_SHIFT >> $LINE_SHIFT
slot = victim
while slot > l2_base:
    l2_tags[slot] = l2_tags[slot - 1]
    l2_dirty[slot] = l2_dirty[slot - 1]
    slot -= 1
l2_tags[l2_base] = l2_line
l2_dirty[l2_base] = 0
for inv_line in range(ev_first, ev_first + $INCLUSION_COUNT):
    inv_set = inv_line & $SET_MASK
    inv_base = inv_set * $ASSOC
    inv_n = set_len[inv_set]
    for slot in range(inv_base, inv_base + inv_n):
        if tags[slot] == inv_line:
            end = inv_base + inv_n - 1
            while slot < end:
                tags[slot] = tags[slot + 1]
                dirty[slot] = dirty[slot + 1]
                slot += 1
            tags[end] = -1
            set_len[inv_set] = inv_n - 1
            break
if victim_dirty:
    t2mw += $L2_LINE_SIZE""")
    e(2, """\
    else:
        slot = l2_base + n2
        while slot > l2_base:
            l2_tags[slot] = l2_tags[slot - 1]
            l2_dirty[slot] = l2_dirty[slot - 1]
            slot -= 1
        l2_set_len[l2_set] = n2 + 1
        l2_tags[l2_base] = l2_line
        l2_dirty[l2_base] = 0
t12f += $LINE_SIZE
n = set_len[set_index]
if n >= $ASSOC:""")
    if c["L1_MODE"] == _RANDOM:
        e(3, """\
state = l1._rng_state
state ^= (state << 13) & 0xFFFFFFFF
state ^= state >> 17
state ^= (state << 5) & 0xFFFFFFFF
l1._rng_state = state
victim = base + state % n""")
    else:
        e(3, "victim = base + n - 1")
    e(3, f"""\
victim_dirty = dirty[victim]
l1_ev += 1
if victim_dirty:
    l1_dev += 1
ev_addr = tags[victim] << $LINE_SHIFT
slot = victim
while slot > base:
    tags[slot] = tags[slot - 1]
    dirty[slot] = dirty[slot - 1]
    slot -= 1
tags[base] = line
dirty[base] = {fill_dirty}
if victim_dirty:
    t12w += $LINE_SIZE
    l2_fill(ev_addr, True)""")
    e(2, f"""\
else:
    slot = base + n
    while slot > base:
        tags[slot] = tags[slot - 1]
        dirty[slot] = dirty[slot - 1]
        slot -= 1
    set_len[set_index] = n + 1
    tags[base] = line
    dirty[base] = {fill_dirty}""")
    # MSHRFile.allocate, inlined (floor bound skips the expiry scan).
    e(2, """\
if inflight and mshr_floor <= start:
    for key in [k for k, r in inflight.items() if r <= start]:
        del inflight[key]
    if inflight:
        mshr_floor = min(inflight.values())
        mshr_max = max(inflight.values())
    else:
        mshr_floor = INF
        mshr_max = 0.0
if len(inflight) >= $MSHR_CAPACITY:
    earliest = min(inflight.values())
    ms_fs += 1
    ms_fsc += earliest - start
    for key, r in list(inflight.items()):
        if r == earliest:
            del inflight[key]
            break
    ready = earliest + latency
else:
    ready = start + latency
inflight[line_addr] = ready
if ready < mshr_floor:
    mshr_floor = ready
if ready > mshr_max:
    mshr_max = ready
ms_alloc += 1""")
    if store:
        # TimingModel.store_completes, inlined, with the buffer length
        # tracked in a local (updated on every append/remove/drain).
        e(0, """\
if blen and sb_floor <= cycle:
    buffer[:] = [t for t in buffer if t > cycle]
    blen = len(buffer)
    sb_floor = min(buffer) if blen else INF
if blen >= $STORE_BUFFER_DEPTH:
    earliest = min(buffer)
    stall = earliest - cycle
    if stall > 0.0:
        store_stall += stall
        cycle += stall
    buffer_remove(earliest)
    blen -= 1
if ready > cycle:
    buffer_append(ready)
    blen += 1
    if ready < sb_floor:
        sb_floor = ready""")
        if counted:
            e(0, """\
store_count += 1
store_ord += ready - start""")
            if spec == SPEC_FULL:
                # DependenceSpeculator.on_store, inlined (final ==
                # initial); stores_tracked is derived at spill time.
                e(0, """\
word = address & ~7
queue_append((word, word))
by_final[word] = word
counts[word] = counts_get(word, 0) + 1
if len(queue) > $SPEC_WINDOW:
    old_final, _old_initial = queue_popleft()
    remaining = counts[old_final] - 1
    if remaining:
        counts[old_final] = remaining
    else:
        del counts[old_final]
        del by_final[old_final]""")
    elif inline_tails:
        # The hot arms completed in place above; only the deep-way /
        # miss arm still needs its completion accounting, emitted inside
        # that arm (``start``/``ready`` are bound on every path there).
        if counted:
            e(1, "load_count += 1")
        e(1, _load_tail(c, counted, "merge"))
    else:
        # TimingModel.load_completes, inlined (shared tail: SPEC_FULL
        # counted loads all fall through here so on_load can follow).
        e(0, """\
residual = ready - start - $OOO_WINDOW
if residual > 0.0:
    load_stall += residual
    cycle += residual""")
        if counted:
            e(0, """\
load_count += 1
load_ord += ready - start""")
            if spec == SPEC_FULL:
                # on_load + misspeculation_flush, inlined;
                # loads_checked is derived at spill time.
                e(0, """\
if by_final:
    word = address & ~7
    store_initial = by_final_get(word)
    if store_initial is not None and store_initial != word:
        spec_stats.misspeculations += 1
        timing.misspeculations += 1
        inst_stall += $MISSPECULATION_PENALTY
        cycle += $MISSPECULATION_PENALTY""")
    return "\n".join(out)


#: (local, attribute) pairs spilled/reloaded around layered call-outs.
_STATE = [
    ("cycle", "timing.cycle"),
    ("instructions", "timing.instructions"),
    ("inst_stall", "timing.inst_stall_cycles"),
    ("load_stall", "timing.load_stall_cycles"),
    ("store_stall", "timing.store_stall_cycles"),
    ("sb_floor", "timing._store_buffer_floor"),
    ("mshr_floor", "mshr._floor"),
    ("load_count", "load_latency.count"),
    ("load_ord", "load_latency.ordinary_cycles"),
    ("store_count", "store_latency.count"),
    ("store_ord", "store_latency.ordinary_cycles"),
    ("l1_lh", "l1_stats.load_hits"),
    ("l1_lm", "l1_stats.load_misses"),
    ("l1_sh", "l1_stats.store_hits"),
    ("l1_sm", "l1_stats.store_misses"),
    ("l1_ev", "l1_stats.evictions"),
    ("l1_dev", "l1_stats.dirty_evictions"),
    ("mc_lp", "miss_classes.load_partial"),
    ("mc_lf", "miss_classes.load_full"),
    ("mc_sp", "miss_classes.store_partial"),
    ("mc_sf", "miss_classes.store_full"),
    ("ms_comb", "mshr_stats.combines"),
    ("ms_alloc", "mshr_stats.allocations"),
    ("ms_fs", "mshr_stats.full_stalls"),
    ("ms_fsc", "mshr_stats.full_stall_cycles"),
    ("t12f", "traffic.l1_l2_fill_bytes"),
    ("t12w", "traffic.l1_l2_writeback_bytes"),
    ("t2mf", "traffic.l2_mem_fill_bytes"),
    ("t2mw", "traffic.l2_mem_writeback_bytes"),
]


def _flush(spec: int) -> str:
    """Spill the hot locals back to the component objects.

    ``loads_checked``/``stores_tracked`` increment in lockstep with the
    latency counts on every kernel path (counted references bump both;
    bare references bump neither; forwarded references run layered,
    which bumps both), so they are derived from the deltas here instead
    of being maintained per reference.
    """
    lines = [f"{attr} = {local}" for local, attr in _STATE]
    if spec:
        lines.append("spec_stats.loads_checked = spec_lbase + load_count")
        lines.append("spec_stats.stores_tracked = spec_sbase + store_count")
    return "\n".join(lines)


def _reload(spec: int) -> str:
    """(Re)load the hot locals and derived bounds from the components."""
    lines = [f"{local} = {attr}" for local, attr in _STATE]
    if spec:
        lines.append("spec_lbase = spec_stats.loads_checked - load_count")
        lines.append("spec_sbase = spec_stats.stores_tracked - store_count")
    lines.append("mshr_max = max(inflight.values()) if inflight else 0.0")
    lines.append("blen = len(buffer)")
    return "\n".join(lines)


def _exec_inline(count_expr: str) -> str:
    """TimingModel.execute, inlined against the loop locals."""
    return f"""\
count = {count_expr}
instructions += count
cycle += count * $IPC
overhead = count * $INST_OVERHEAD
inst_stall += overhead
cycle += overhead"""


def kernel_source(config: MachineConfig, spec_mode: int | None = None) -> str:
    """Return the generated replay-loop source for ``config``.

    ``spec_mode`` is one of the ``SPEC_*`` constants; ``None`` derives
    the conservative mode from the config alone (full bookkeeping
    whenever a speculator exists).  Exposed for the tests (which assert
    the constants really are baked in) and for debugging;
    :func:`replay_specialized` compiles it.
    """
    if not specializable(config):
        raise SpecializationError(
            "config uses features outside the specializer's matrix "
            "(timeline sampling, event log, or a miss-path mechanism)"
        )
    if spec_mode is None:
        spec_mode = SPEC_FULL if config.speculation_window > 0 else SPEC_OFF
    c = _constants(config)
    out: list[str] = []
    e = lambda level, block: _emit(out, level, block)  # noqa: E731
    e(0, """\
def _replay(kinds, ops, extras, n, hierarchy, timing, speculator,
            prefetcher, load_latency, store_latency, trap_installed):
    l1 = hierarchy.l1
    l2 = hierarchy.l2
    mshr = hierarchy.mshr
    tags = l1._tags
    dirty = l1._dirty
    set_len = l1._set_len
    l1_stats = l1.stats
    l2_tags = l2._tags
    l2_dirty = l2._dirty
    l2_set_len = l2._set_len
    l2_stats = l2.stats
    l2_fill = l2.fill
    inflight = mshr._inflight
    inflight_get = inflight.get
    mshr_stats = mshr.stats
    miss_classes = hierarchy.miss_classes
    traffic = hierarchy.traffic
    buffer = timing._store_buffer
    buffer_append = buffer.append
    buffer_remove = buffer.remove
    access = hierarchy.access
    execute = timing.execute
    load_completes = timing.load_completes
    store_completes = timing.store_completes
    forwarding_trap_cost = timing.forwarding_trap_cost
    forwarding_trap = timing.forwarding_trap
    prefetch_block = prefetcher.prefetch_block""")
    if spec_mode:
        e(1, """\
spec_stats = speculator.stats
on_load = speculator.on_load
on_store = speculator.on_store""")
    if spec_mode == SPEC_FULL:
        e(1, """\
by_final = speculator._by_final
by_final_get = by_final.get
queue = speculator._queue
queue_append = queue.append
queue_popleft = queue.popleft
counts = speculator._counts
counts_get = counts.get""")
    e(1, _reload(spec_mode))
    e(1, "for idx in range(n):")
    e(2, "kind = kinds[idx]")
    # Dispatch arms ordered by measured frequency across the Figure-5
    # traces (loads ~61%, exec ~15%, bare accesses ~8% each, stores ~7%)
    # so the common kinds fall out of the chain early.
    e(2, "if kind == 0:")
    e(3, "address = ops[idx]")
    e(3, _ref_body(c, spec_mode, store=False, counted=True))
    e(2, "elif kind == 2:")
    e(3, _exec_inline("ops[idx]"))
    e(2, "elif kind == 3:")
    e(3, "address = ops[idx]")
    e(3, _ref_body(c, spec_mode, store=False, counted=False))
    e(2, "elif kind == 4:")
    e(3, "address = ops[idx]")
    e(3, _ref_body(c, spec_mode, store=True, counted=False))
    e(2, "elif kind == 1:")
    e(3, "address = ops[idx]")
    e(3, _ref_body(c, spec_mode, store=True, counted=True))
    e(2, "elif kind == 8:")
    e(3, _exec_inline("$MALLOC_BASE + (ops[idx] >> 6)"))
    e(2, "elif kind == 9:")
    e(3, _exec_inline("$FREE_BASE + 2 * ops[idx]"))
    e(2, "elif kind == 10:")
    e(3, "trap_installed = ops[idx] != 0")
    e(2, "elif kind == 7:")
    # Software prefetch: rare; run against the layered components with
    # the hot locals spilled around the call.
    e(3, _flush(spec_mode))
    e(3, """\
execute(1)
prefetch_block(ops[idx], extras[idx], timing.cycle)""")
    e(3, _reload(spec_mode))
    e(2, "else:")
    # Forwarded load/store (kinds 5/6): the cold path of replay_trace's
    # _handle_forwarded, verbatim, against the layered components.
    e(3, _flush(spec_mode))
    e(3, """\
address = ops[idx]
final, hops = extras[idx]
is_store = kind == 6
execute(1)
hop_cycles = 0.0
for word in hops:
    hstart = timing.cycle
    result = access(word, False, hstart)
    load_completes(result.ready, True)
    hop_cycles += result.ready - hstart
fstart = timing.cycle
result = access(final, is_store, fstart)
latency_stats = store_latency if is_store else load_latency
if is_store:
    store_completes(result.ready, True)
else:
    load_completes(result.ready, True)
latency_stats.count += 1
latency_stats.ordinary_cycles += result.ready - fstart
latency_stats.forwarded += 1
nhops = len(hops)
latency_stats.forwarding_cycles += hop_cycles + forwarding_trap_cost(nhops)
forwarding_trap(nhops)
if trap_installed:
    timing.stall($USER_TRAP_CYCLES, "inst")""")
    if spec_mode:
        e(3, """\
if is_store:
    on_store(address, final)
elif on_load(address, final):
    timing.misspeculation_flush()""")
    e(3, _reload(spec_mode))
    e(1, _flush(spec_mode))
    e(1, "return trap_installed")
    source = "\n".join(out) + "\n"
    subst = {
        key: (repr(value) if isinstance(value, float) else str(value))
        for key, value in c.items()
    }
    return Template(source).substitute(subst)


def _constants(config: MachineConfig) -> dict:
    """Derive the baked-in literals for ``config``.

    Geometry-derived values (shifts, masks, modes) come from a throwaway
    hierarchy/timing instance, guaranteeing they match what the general
    path would compute for the same config.
    """
    hierarchy = MemoryHierarchy(config.hierarchy)
    timing = TimingModel(config.timing)
    cfg = hierarchy.config
    l1 = hierarchy.l1
    l2 = hierarchy.l2
    l2_line_size = max(cfg.l2_line_size, cfg.line_size)
    return {
        "LINE_SHIFT": l1.line_shift,
        "SET_MASK": l1._set_mask,
        "ASSOC": l1.associativity,
        "L1_MODE": l1._mode,
        "L2_SHIFT": l2.line_shift,
        "L2_SET_MASK": l2._set_mask,
        "L2_ASSOC": l2.associativity,
        "L2_MODE": l2._mode,
        "LINE_SIZE": cfg.line_size,
        "L2_LINE_SIZE": l2_line_size,
        "INCLUSION_COUNT": l2_line_size // cfg.line_size,
        "L1_HIT_LATENCY": cfg.l1_hit_latency,
        "L2_FILL_LATENCY": cfg.l2_fill_latency,
        "FULL_MISS_LATENCY": cfg.full_miss_latency,
        "MSHR_CAPACITY": hierarchy.mshr.capacity,
        "IPC": timing._ipc,
        "INST_OVERHEAD": config.timing.inst_overhead,
        "OOO_WINDOW": config.timing.ooo_window,
        "STORE_BUFFER_DEPTH": config.timing.store_buffer_depth,
        "MISSPECULATION_PENALTY": config.timing.misspeculation_penalty,
        "SPEC_WINDOW": config.speculation_window,
        "MALLOC_BASE": config.malloc_base_cost,
        "FREE_BASE": config.free_base_cost,
        "USER_TRAP_CYCLES": config.user_trap_cycles,
    }


#: Compiled kernels, keyed by (constants, spec mode).  A 42-cell sweep
#: compiles only a handful of distinct kernels (one per machine shape).
_KERNEL_CACHE: dict[tuple, Callable] = {}


def compiled_kernel(config: MachineConfig, spec_mode: int | None = None) -> Callable:
    """Return (compiling on first use) the replay loop for ``config``."""
    if spec_mode is None:
        spec_mode = SPEC_FULL if config.speculation_window > 0 else SPEC_OFF
    key = (tuple(sorted(_constants(config).items())), spec_mode)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        source = kernel_source(config, spec_mode)
        namespace = {"INF": float("inf")}
        exec(compile(source, "<specialized-replay-kernel>", "exec"), namespace)
        kernel = namespace["_replay"]
        _KERNEL_CACHE[key] = kernel
    return kernel


def _spec_mode(trace: Trace, config: MachineConfig) -> int:
    if config.speculation_window <= 0:
        return SPEC_OFF
    return SPEC_FULL if has_forwarded_entries(trace) else SPEC_COUNTERS


class SpecializedSession:
    """One config's specialized-kernel state, consuming resolved chunks.

    Drop-in peer of :class:`~repro.trace.replay.ReplaySession`: same
    ``run_chunk``/``reset``/``finish`` surface, so the batch engine can
    drive a mixed group of general and specialized sessions through one
    decode of the trace.  The kernel's hot locals live in the component
    objects between chunks (reloaded on entry, spilled on exit); the
    trap flag is the one piece of state the components don't carry, so
    it is threaded through the kernel call explicitly.
    """

    def __init__(self, trace: Trace, config: MachineConfig) -> None:
        check_line_size(trace, config)
        self.trace = trace
        self.config = config
        self._kernel = compiled_kernel(config, _spec_mode(trace, config))
        self._build()

    def reset(self) -> None:
        self._build()

    def _build(self) -> None:
        config = self.config
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.timing = TimingModel(config.timing)
        self.prefetcher = SoftwarePrefetcher(
            self.hierarchy, config.max_prefetch_block
        )
        self.speculator = (
            DependenceSpeculator(config.speculation_window)
            if config.speculation_window > 0
            else None
        )
        self.load_latency = ReferenceLatencyStats()
        self.store_latency = ReferenceLatencyStats()
        self._trap = False

    def run_chunk(self, chunk) -> None:
        self._trap = self._kernel(
            chunk.kinds, chunk.ops, chunk.extras, chunk.n,
            self.hierarchy, self.timing, self.speculator, self.prefetcher,
            self.load_latency, self.store_latency, self._trap,
        )

    def finish(self) -> AppResult:
        if self.timing.cycle >= 2.0 ** 49:
            # The residual-elision proof (see _elides_residual) needs
            # every reference's start cycle below 2**49; the cycle
            # counter only ever increases, so the final value bounds
            # them all.  No real trace gets within orders of magnitude
            # of this, but if one ever does, discard the kernel run and
            # take the general path.
            return replay_trace(self.trace, self.config)
        trace = self.trace
        captured = trace.captured_stats
        stats = MachineStats.collect(
            timing=self.timing,
            hierarchy=self.hierarchy,
            loads=self.load_latency,
            stores=self.store_latency,
            speculator=self.speculator,
            prefetcher=self.prefetcher,
            forwarding_hops=captured["forwarding_hops"],
            cycle_checks=captured["cycle_checks"],
            forwarding_chain_hist={
                int(hops): count
                for hops, count in captured.get(
                    "forwarding_chain_hist", {}
                ).items()
            },
            relocation=RelocationStats(**captured["relocation"]),
            heap_high_water=captured["heap_high_water"],
        )
        return AppResult(
            app=trace.app,
            variant=Variant(trace.variant),
            checksum=trace.checksum,
            stats=stats,
            extras=dict(trace.extras),
            timeline=None,
        )


def replay_specialized(trace: Trace, config: MachineConfig) -> AppResult:
    """Replay ``trace`` against ``config`` via the specialized kernel.

    Bit-identical to :func:`repro.trace.replay.replay_trace` for every
    :func:`specializable` config; raises :class:`SpecializationError`
    otherwise (callers gate, so this only trips on misuse).
    """
    session = SpecializedSession(trace, config)
    drive_sessions(trace, [session])
    return session.finish()
