"""Sharded sweep execution: capture once, replay everywhere, in parallel.

A sweep is a set of :class:`SweepTask` cells -- ``(app, variant, line
size, scale, seed)``.  By default cells execute in **batch mode**
(:mod:`repro.trace.batch`): tasks are grouped by trace key (one key per
workload identity; line-size-insensitive apps share one key across all
their line sizes), each group's stream is captured or loaded and decoded
exactly once, and every config in the group replays the shared resolved
stream -- through the exec-specialized kernel when the config fits the
specializer's matrix, the general path otherwise.  The capturing cell's
direct result answers that cell for free, exactly as before.

With ``jobs > 1`` the process pool shards by *group*, not by cell: the
decoded stream is the expensive thing worth keeping local to one
worker, so a worker owns a trace key end to end (capture if needed,
then all of its replays).  Workers coordinate purely through the
(atomic-write) artifact store, so there is no shared mutable state.
With ``jobs <= 1`` everything runs in-process, which is also the path
:class:`~repro.experiments.runner.ExperimentRunner` uses for its lazy
per-call API.  ``batch=False`` preserves the legacy per-cell two-phase
pipeline (capture all missing traces in parallel, then replay cells in
parallel).
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Iterable

from repro.adapt.config import DEFAULT_HEATMAP_REGION, AdaptConfig
from repro.apps import APPLICATIONS
from repro.apps.base import AppResult, Variant
from repro.core.debug import get_logger
from repro.obs.logging import log_event
from repro.obs.registry import EMPTY, Snapshot
from repro.trace.batch import (
    SEQUENTIAL,
    BatchCellError,
    group_by_trace,
    run_batch_group,
)
from repro.trace.format import Trace
from repro.trace.recorder import capture_trace
from repro.trace.replay import replay_trace
from repro.trace.store import ArtifactStore, config_fingerprint, trace_key

_log = get_logger("trace.sweep")


class SweepError(RuntimeError):
    """A sweep cell failed; carries the task so callers can report it.

    Raised by :func:`execute_sweep` when a worker raises mid-cell: the
    remaining queued cells are cancelled, the pool shuts down, and the
    original exception is chained -- the failure surfaces promptly
    instead of hanging the pool or burying the cell identity.
    """

    def __init__(self, task: SweepTask, cause: BaseException) -> None:
        super().__init__(
            f"sweep cell {task.app}/{task.line_size}B/{task.variant} "
            f"(scale={task.scale}, seed={task.seed}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.task = task


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep matrix (picklable, hashable)."""

    app: str
    variant: str
    line_size: int
    scale: float = 1.0
    seed: int = 1
    #: Timeline sampling interval for this cell (0 = off).  Part of the
    #: machine config, not the workload identity: the trace key ignores
    #: it (one stream serves sampled and unsampled cells alike) while
    #: the config fingerprint separates their cached results.
    timeline_interval: int = 0
    events_capacity: int = 0
    #: L1 miss-path mechanism and sizing knobs (see
    #: :mod:`repro.cache.misspath`).  Like the timeline knobs these are
    #: machine config, not workload identity: the trace key ignores them
    #: (one captured stream replays under every mechanism) while the
    #: config fingerprint keeps their cached results apart.  With
    #: ``mechanism="none"`` the sizing knobs are ignored entirely, so a
    #: baseline cell's config -- and thus its fingerprint -- is identical
    #: no matter which knob values rode along.
    mechanism: str = "none"
    vc_entries: int = 8
    mc_entries: int = 8
    sb_count: int = 4
    sb_depth: int = 4
    #: Adaptive relocation policy (:class:`repro.adapt.AdaptConfig`) or
    #: ``None``.  Unlike every knob above, adapt is *workload identity*:
    #: the engine issues its own references, so the trace key folds in
    #: the full config fingerprint (see :func:`repro.trace.store.trace_key`)
    #: and each adaptive config captures/replays its own private stream.
    adapt: "AdaptConfig | None" = None
    #: Heatmap region granularity (bytes); machine config, not workload
    #: identity for plain cells (the sampler never issues references).
    heatmap_region: int = DEFAULT_HEATMAP_REGION

    def key(self) -> str:
        """Trace key this cell's stream lives under."""
        sensitive = APPLICATIONS[self.app].stream_depends_on_line_size(
            Variant(self.variant)
        )
        if self.adapt is not None:
            # Engine references depend on the whole config; pin the
            # stream to it (line size included -- it shifts window
            # contents and hence decision points).
            return trace_key(
                self.app,
                self.variant,
                self.scale,
                self.seed,
                self.line_size,
                adapt=config_fingerprint(self.config()),
            )
        return trace_key(
            self.app,
            self.variant,
            self.scale,
            self.seed,
            self.line_size if sensitive else None,
        )

    def config(self):
        from dataclasses import replace

        from repro.experiments.config import experiment_config

        config = experiment_config(self.line_size)
        if self.timeline_interval or self.events_capacity:
            config = replace(
                config,
                timeline_interval=self.timeline_interval,
                events_capacity=self.events_capacity,
            )
        if self.mechanism != "none":
            config = replace(
                config,
                hierarchy=replace(
                    config.hierarchy,
                    mechanism=self.mechanism,
                    vc_entries=self.vc_entries,
                    mc_entries=self.mc_entries,
                    sb_count=self.sb_count,
                    sb_depth=self.sb_depth,
                ),
            )
        if self.heatmap_region != DEFAULT_HEATMAP_REGION:
            config = replace(config, heatmap_region_bytes=self.heatmap_region)
        if self.adapt is not None:
            config = replace(config, adapt=self.adapt)
        return config


def run_task(
    task: SweepTask,
    store: ArtifactStore | None = None,
    traces: dict[str, Trace] | None = None,
    *,
    tracer=None,
    on_window=None,
) -> tuple[AppResult, str]:
    """Obtain one cell's result; returns ``(result, how)``.

    ``how`` is ``"captured"``, ``"replayed"``, or ``"cached"`` --
    diagnostics for progress logging and the tests.  ``traces`` is an
    optional in-process trace cache (keyed like the store) consulted
    before, and populated after, any store access.

    ``tracer`` (:class:`repro.obs.tracing.Tracer`), when given, records
    spans for the cell's phases -- trace load, capture, store writes,
    replay with per-chunk children -- into the caller's causal tree.
    ``on_window`` streams timeline windows live (capture and replay
    alike).  Both default to ``None`` and leave the sweep hot path
    bit-for-bit unchanged.
    """
    span = tracer.span if tracer is not None else (lambda name: nullcontext())
    config = task.config()
    key = task.key()
    trace = traces.get(key) if traces is not None else None
    if trace is None and store is not None:
        with span("trace.load"):
            trace = store.load_trace(key)
    if trace is None:
        with span("trace.capture"):
            trace, result = capture_trace(
                task.app,
                Variant(task.variant),
                config,
                task.scale,
                task.seed,
                on_window=on_window,
            )
        if traces is not None:
            traces[key] = trace
        if store is not None:
            with span("store.trace_write"):
                store.save_trace(key, trace)
                store.save_result(
                    trace.content_hash, config_fingerprint(config), result
                )
        return result, "captured"
    if traces is not None and key not in traces:
        traces[key] = trace
    fingerprint = config_fingerprint(config)
    if store is not None:
        with span("store.result_probe"):
            cached = store.load_result(trace.content_hash, fingerprint)
        if cached is not None:
            return cached, "cached"
    if config.events_capacity > 0:
        # Discrete events only occur during direct execution: replay
        # reproduces the windowed *rates* exactly, but not the event
        # stream (relocations, pool traffic, chain walks happen in the
        # application/optimizer code replay skips).  Events cells
        # therefore always run direct, even when a trace is warm --
        # their results still persist under their own config
        # fingerprint, so the re-run happens once.
        with span("trace.capture"):
            _, result = capture_trace(
                task.app,
                Variant(task.variant),
                config,
                task.scale,
                task.seed,
                on_window=on_window,
            )
        how = "captured"
    else:
        with span("replay.run"):
            result = replay_trace(
                trace, config, tracer=tracer, on_window=on_window
            )
        how = "replayed"
    if store is not None:
        with span("store.result_write"):
            store.save_result(trace.content_hash, fingerprint, result)
    return result, how


def _worker(task: SweepTask, store_root: str) -> tuple[SweepTask, AppResult, str]:
    """Process-pool entry point (module level, hence picklable)."""
    result, how = run_task(task, ArtifactStore(store_root))
    return task, result, how


def _batch_worker(
    group: list[SweepTask], store_root: str
) -> list[tuple[SweepTask, AppResult, str, str]]:
    """Process-pool entry point for one trace-sharing group.

    Returns plain tuples (picklable); a failing cell raises
    :class:`~repro.trace.batch.BatchCellError`, whose args are plain
    data, so the cell identity survives the pool's result pipe.
    """
    outcomes = run_batch_group(group, ArtifactStore(store_root))
    return [(o.task, o.result, o.how, o.engine) for o in outcomes]


def batch_label(key: str, group: list[SweepTask]) -> str:
    """Short human-readable tag for one batch group's progress lines."""
    return f"{key.split('-')[0]}[{len(group)}]"


def execute_sweep(
    tasks: list[SweepTask],
    store: ArtifactStore,
    jobs: int = 1,
    verbose: bool = False,
    batch: bool = True,
    engines: dict | None = None,
) -> dict[SweepTask, tuple[AppResult, str]]:
    """Run every task; returns ``{task: (result, how)}``.

    The store is required (workers coordinate through it); callers that
    want a throwaway sweep point it at a temporary directory.

    With ``batch=True`` (the default) cells are grouped by trace key and
    each group runs through :func:`repro.trace.batch.run_batch_group` --
    one decode, N configs -- and the process pool shards by *group*
    (the decoded stream is the thing worth keeping local to a worker),
    not by cell.  ``batch=False`` preserves the legacy per-cell path.
    ``engines``, when given, is filled with ``{task: engine_label}``
    (see :mod:`repro.trace.batch`) for manifest annotation.
    """
    results: dict[SweepTask, tuple[AppResult, str]] = {}
    if batch:
        return _execute_batched(tasks, store, jobs, verbose, engines)
    if engines is not None:
        engines.update((task, SEQUENTIAL) for task in tasks)
    if jobs <= 1 or len(tasks) <= 1:
        traces: dict[str, Trace] = {}
        for task in tasks:
            try:
                results[task] = run_task(task, store, traces)
            except Exception as exc:
                raise SweepError(task, exc) from exc
            if verbose:
                log_progress(task, *results[task])
        return results

    # Phase 1: capture each missing trace exactly once, in parallel.
    representatives: dict[str, SweepTask] = {}
    for task in tasks:
        representatives.setdefault(task.key(), task)
    to_capture = [
        task for key, task in representatives.items() if not store.has_trace(key)
    ]
    remaining = set(tasks)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        if to_capture:
            futures = {
                pool.submit(_worker, task, str(store.root)): task
                for task in to_capture
            }
            _collect(futures, results, remaining, verbose)
        # Phase 2: replay (or fetch) every remaining cell in parallel.
        futures = {
            pool.submit(_worker, task, str(store.root)): task
            for task in remaining
        }
        _collect(futures, results, None, verbose)
    return results


def _execute_batched(
    tasks: list[SweepTask],
    store: ArtifactStore,
    jobs: int,
    verbose: bool,
    engines: dict | None,
) -> dict[SweepTask, tuple[AppResult, str]]:
    """Grouped execution: one decoded stream per group, sharded by group."""
    results: dict[SweepTask, tuple[AppResult, str]] = {}
    groups = group_by_trace(tasks)

    def _absorb(key, group, outcomes):
        label = batch_label(key, group)
        for task, result, how, engine in outcomes:
            results[task] = (result, how)
            if engines is not None:
                engines[task] = engine
            if verbose:
                log_progress(task, result, how, engine=engine, batch=label)

    if jobs <= 1 or len(groups) <= 1:
        traces: dict[str, Trace] = {}
        for key, group in groups.items():
            try:
                outcomes = run_batch_group(group, store, traces)
            except BatchCellError as exc:
                raise SweepError(exc.task, exc) from exc
            except Exception as exc:
                raise SweepError(group[0], exc) from exc
            _absorb(
                key, group, [(o.task, o.result, o.how, o.engine) for o in outcomes]
            )
        return results

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(_batch_worker, group, str(store.root)): key
            for key, group in groups.items()
        }
        try:
            for future in as_completed(futures):
                key = futures[future]
                try:
                    outcomes = future.result()
                except BatchCellError as exc:
                    raise SweepError(exc.task, exc) from exc
                except Exception as exc:
                    raise SweepError(groups[key][0], exc) from exc
                _absorb(key, groups[key], outcomes)
        except SweepError:
            for future in futures:
                future.cancel()
            raise
    return results


def _collect(
    futures: dict,
    results: dict[SweepTask, tuple[AppResult, str]],
    remaining: set[SweepTask] | None,
    verbose: bool,
) -> None:
    """Drain one phase's futures; fail fast and clean on a bad cell.

    A worker exception cancels every not-yet-started future in the phase
    and surfaces as :class:`SweepError` naming the failing cell, so a
    broken cell neither hangs the pool nor masquerades as an anonymous
    pickle traceback.
    """
    try:
        for future in as_completed(futures):
            try:
                task, result, how = future.result()
            except Exception as exc:
                raise SweepError(futures[future], exc) from exc
            results[task] = (result, how)
            if remaining is not None:
                remaining.discard(task)
            if verbose:
                log_progress(task, result, how)
    except SweepError:
        for future in futures:
            future.cancel()
        raise


def aggregate_metrics(results: Iterable[AppResult]) -> Snapshot:
    """Merge per-cell stats into one metric tree via the registry merge.

    This is the sweep-aggregation primitive: counters sum across shards,
    gauges (heap high water) take the maximum, and no key is ever lost --
    so shard-merged totals equal a single-process run's totals exactly
    (enforced by a regression test).
    """
    merged = EMPTY
    for result in results:
        merged = merged.merge(result.stats.to_snapshot())
    return merged


def log_progress(
    task: SweepTask,
    result: AppResult,
    how: str,
    engine: str | None = None,
    batch: str | None = None,
) -> None:
    """One progress line per completed cell (shared with the runner).

    Grouped execution still reports cell by cell -- ``batch`` merely
    tags the line with the group the cell ran in, and ``engine`` with
    the replay engine that produced it.
    """
    fields = {
        "how": how,
        "app": task.app,
        "variant": task.variant,
        "line_size": task.line_size,
        "cycles": round(result.stats.cycles),
    }
    if engine and engine != SEQUENTIAL:
        fields["engine"] = engine
    if batch:
        fields["batch"] = batch
    log_event(_log, logging.INFO, "cell complete", **fields)
