"""Reference-trace capture and replay (the ``repro.trace`` subsystem).

The simulator is trace-driven at heart: an application's *reference
stream* -- the ordered sequence of loads, stores, allocations, prefetches
and relocation events it issues against the :class:`~repro.core.machine.
Machine` -- fully determines every statistic the experiments report.  For
a given ``(app, variant, scale, seed)`` that stream is identical across
cache line sizes and machine configurations (BH is the one exception: it
parameterises its clustering by line size, and declares so via
``Application.line_size_sensitive``).

This package exploits that invariance end to end:

* :mod:`repro.trace.recorder` -- capture the canonical event stream while
  an application runs, via the machine's observer hook;
* :mod:`repro.trace.format` -- a chunked columnar binary trace format
  (fixed-event-count chunks, per-column varint/delta encoding and zlib
  compression, a footer index for random access, content-hashed) with
  save/load round-trip and streaming decode; legacy v2 files load
  transparently;
* :mod:`repro.trace.replay` -- drive any :class:`MachineConfig` from a
  trace, chunk by chunk, reproducing a direct run's
  :class:`MachineStats` *exactly*;
* :mod:`repro.trace.store` -- a content-hash-keyed on-disk artifact cache
  of traces and replayed results with a persistent corpus manifest,
  LRU/size-budget eviction, and cross-seed dedup, so repeated sweeps
  skip both capture and replay when nothing changed;
* :mod:`repro.trace.kernels` -- exec-specialized per-config replay
  kernels: the replay loop compiled with the machine shape baked in as
  literals, bit-identical to the general path by contract;
* :mod:`repro.trace.batch` -- batch multi-config replay: decode one
  trace, drive N configs through the shared resolved stream;
* :mod:`repro.trace.sweep` -- a parallel sweep executor sharding batch
  groups (one per trace key) across a process pool.

The exact-fidelity requirement makes this a correctness tool as well as
a performance win: any divergence between a replayed and a direct run
exposes hidden state the event stream failed to capture.
"""

from repro.trace.format import (
    FORMAT_VERSION,
    Chunk,
    Trace,
    TraceFormatError,
    TraceIndex,
    load_index,
    peek_version,
)
from repro.trace.batch import (
    BATCH_GENERAL,
    BATCH_SPECIALIZED,
    SEQUENTIAL,
    BatchCellError,
    BatchOutcome,
    group_by_trace,
    replay_engine,
    run_batch_group,
)
from repro.trace.kernels import (
    SpecializationError,
    SpecializedSession,
    replay_specialized,
    specializable,
)
from repro.trace.recorder import TraceRecorder, capture_trace
from repro.trace.replay import (
    ReplaySession,
    ResolvedChunk,
    SidecarError,
    TraceReplayError,
    drive_sessions,
    iter_resolved_chunks,
    replay_trace,
    resolved_stream,
)
from repro.trace.store import (
    ArtifactStore,
    LockTimeout,
    config_fingerprint,
    trace_key,
)
from repro.trace.sweep import SweepError, SweepTask, execute_sweep, run_task

__all__ = [
    "ArtifactStore",
    "BATCH_GENERAL",
    "BATCH_SPECIALIZED",
    "BatchCellError",
    "BatchOutcome",
    "Chunk",
    "FORMAT_VERSION",
    "LockTimeout",
    "ReplaySession",
    "ResolvedChunk",
    "SEQUENTIAL",
    "SidecarError",
    "SpecializationError",
    "SpecializedSession",
    "SweepError",
    "SweepTask",
    "Trace",
    "TraceFormatError",
    "TraceIndex",
    "TraceRecorder",
    "TraceReplayError",
    "capture_trace",
    "config_fingerprint",
    "drive_sessions",
    "execute_sweep",
    "group_by_trace",
    "iter_resolved_chunks",
    "load_index",
    "peek_version",
    "replay_engine",
    "replay_specialized",
    "replay_trace",
    "resolved_stream",
    "run_batch_group",
    "run_task",
    "specializable",
    "trace_key",
]
