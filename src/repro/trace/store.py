"""Content-hash-keyed on-disk cache of traces and replayed results.

Layout under the store root::

    traces/<trace-key>.trace      one captured stream per workload identity
    results/<trace-hash>-<config-hash>.json   one replayed result per cell

*Trace keys* identify a workload -- ``(format version, app, variant,
scale, seed[, line size for line-size-sensitive apps])`` -- and name the
file to look in before capturing.  *Result keys* bind an exact trace
content hash to an exact machine-config fingerprint, so a result can
only ever be served for the identical stream on the identical machine:
edit anything (app code changes the stream, config changes the
fingerprint, a format bump changes both) and the stale entry simply
stops being found.

All writes are atomic (temp file + ``os.replace``), so concurrent sweep
workers sharing a store never observe torn files; corrupt or unreadable
entries are treated as misses and recaptured.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

from repro.apps.base import AppResult, Variant
from repro.core.debug import get_logger
from repro.core.machine import MachineConfig
from repro.core.stats import MachineStats
from repro.trace.format import FORMAT_VERSION, Trace, TraceFormatError

_log = get_logger("trace.store")


def trace_key(
    app: str,
    variant: str,
    scale: float,
    seed: int,
    line_size: int | None,
) -> str:
    """Stable identity of a captured stream (hex digest).

    ``line_size`` must be the capture line size for line-size-sensitive
    apps and ``None`` otherwise (their streams are line-size-invariant).
    """
    identity = json.dumps(
        {
            "format": FORMAT_VERSION,
            "app": app,
            "variant": variant,
            "scale": scale,
            "seed": seed,
            "line_size": line_size,
        },
        sort_keys=True,
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


def config_fingerprint(config: MachineConfig) -> str:
    """Stable hash of every field of a machine config (hex digest)."""
    canonical = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class ArtifactStore:
    """Filesystem-backed trace and result cache."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.traces_dir = self.root / "traces"
        self.results_dir = self.root / "results"
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(parents=True, exist_ok=True)

    # -- traces ---------------------------------------------------------
    def trace_path(self, key: str) -> Path:
        return self.traces_dir / f"{key}.trace"

    def has_trace(self, key: str) -> bool:
        return self.trace_path(key).exists()

    def load_trace(self, key: str) -> Trace | None:
        path = self.trace_path(key)
        try:
            return Trace.load(path)
        except FileNotFoundError:
            return None
        except (TraceFormatError, OSError) as exc:
            _log.warning("discarding unreadable trace %s: %s", path.name, exc)
            return None

    def save_trace(self, key: str, trace: Trace) -> Path:
        path = self.trace_path(key)
        _atomic_write(path, trace.to_bytes())
        return path

    # -- results --------------------------------------------------------
    def result_path(self, trace_hash: str, config_hash: str) -> Path:
        return self.results_dir / f"{trace_hash[:24]}-{config_hash[:24]}.json"

    def load_result(self, trace_hash: str, config_hash: str) -> AppResult | None:
        path = self.result_path(trace_hash, config_hash)
        try:
            payload = json.loads(path.read_text())
            return AppResult(
                app=payload["app"],
                variant=Variant(payload["variant"]),
                checksum=payload["checksum"],
                stats=MachineStats.parse(payload["stats"]),
                extras=payload["extras"],
                timeline=payload.get("timeline"),
            )
        except FileNotFoundError:
            return None
        except (KeyError, ValueError, TypeError, OSError) as exc:
            _log.warning("discarding unreadable result %s: %s", path.name, exc)
            return None

    def save_result(
        self, trace_hash: str, config_hash: str, result: AppResult
    ) -> Path:
        payload = {
            "app": result.app,
            "variant": result.variant.value,
            "checksum": result.checksum,
            "extras": result.extras,
            "stats": result.stats.dump(),
            # Sound to cache: the config fingerprint covers the timeline
            # knobs, so a cached entry only ever answers a cell asking
            # for the same sampling configuration.
            "timeline": result.timeline,
        }
        path = self.result_path(trace_hash, config_hash)
        _atomic_write(path, json.dumps(payload, sort_keys=True).encode("utf-8"))
        return path
