"""Content-hash-keyed on-disk cache of traces and replayed results.

Layout under the store root::

    traces/<trace-key>.trace      one captured stream per workload identity
    results/<trace-hash>-<config-hash>.json   one replayed result per cell

*Trace keys* identify a workload -- ``(format version, app, variant,
scale, seed[, line size for line-size-sensitive apps])`` -- and name the
file to look in before capturing.  *Result keys* bind an exact trace
content hash to an exact machine-config fingerprint, so a result can
only ever be served for the identical stream on the identical machine:
edit anything (app code changes the stream, config changes the
fingerprint, a format bump changes both) and the stale entry simply
stops being found.

All writes are atomic (unique temp file + ``os.replace``), so concurrent
sweep workers -- and the long-lived serve processes of
:mod:`repro.serve`, which share one store across a process pool -- never
observe torn files; corrupt or unreadable entries are treated as misses
and recaptured.  Two further concurrency facilities support multi-writer
stores:

* :meth:`ArtifactStore.capture_lock` -- an advisory per-trace-key file
  lock so exactly one process captures a given stream; losers wait and
  find the trace warm.  Locks left by dead or wedged processes are
  *stale* (owner pid gone, or older than the stale threshold) and are
  broken automatically.
* :meth:`ArtifactStore.sweep_stale` -- removes orphaned ``.tmp`` files
  and stale locks left behind by crashed writers; services run it at
  startup.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
import time
from dataclasses import asdict
from pathlib import Path

from repro.apps.base import AppResult, Variant
from repro.core.debug import get_logger
from repro.core.machine import MachineConfig
from repro.core.stats import MachineStats
from repro.trace.format import FORMAT_VERSION, Trace, TraceFormatError

_log = get_logger("trace.store")

#: A lock or temp file untouched for this long is presumed abandoned.
STALE_AFTER_SECONDS = 900.0

_tmp_counter = itertools.count()


class LockTimeout(TimeoutError):
    """A capture lock could not be acquired within the deadline."""


def trace_key(
    app: str,
    variant: str,
    scale: float,
    seed: int,
    line_size: int | None,
) -> str:
    """Stable identity of a captured stream (hex digest).

    ``line_size`` must be the capture line size for line-size-sensitive
    apps and ``None`` otherwise (their streams are line-size-invariant).
    """
    identity = json.dumps(
        {
            "format": FORMAT_VERSION,
            "app": app,
            "variant": variant,
            "scale": scale,
            "seed": seed,
            "line_size": line_size,
        },
        sort_keys=True,
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


def config_fingerprint(config: MachineConfig) -> str:
    """Stable hash of every field of a machine config (hex digest)."""
    canonical = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    # The temp name is unique per (pid, in-process counter) so threads
    # of one process never collide on it; a failed write leaves nothing
    # behind for readers and nothing permanent for sweep_stale to find.
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}-{next(_tmp_counter)}")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe of a lock owner on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class ArtifactStore:
    """Filesystem-backed trace and result cache."""

    def __init__(
        self,
        root: str | os.PathLike,
        stale_after: float = STALE_AFTER_SECONDS,
    ) -> None:
        self.root = Path(root)
        self.stale_after = stale_after
        self.traces_dir = self.root / "traces"
        self.results_dir = self.root / "results"
        self.locks_dir = self.root / "locks"
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.locks_dir.mkdir(parents=True, exist_ok=True)

    # -- traces ---------------------------------------------------------
    def trace_path(self, key: str) -> Path:
        return self.traces_dir / f"{key}.trace"

    def resolved_path(self, key: str) -> Path:
        """Where the decoded resolved-stream sidecar for ``key`` lives.

        The sidecar is a pure cache maintained by :func:`repro.trace.
        replay.resolved_stream`: it is validated against the trace's
        payload digest on load, so a recaptured trace silently orphans
        the old sidecar (which is then overwritten on the next decode)
        rather than ever serving a stale stream.
        """
        return self.traces_dir / f"{key}.resolved"

    def has_trace(self, key: str) -> bool:
        return self.trace_path(key).exists()

    def load_trace(self, key: str) -> Trace | None:
        path = self.trace_path(key)
        try:
            trace = Trace.load(path)
        except FileNotFoundError:
            return None
        except (TraceFormatError, OSError) as exc:
            _log.warning("discarding unreadable trace %s: %s", path.name, exc)
            return None
        trace._resolved_path = self.resolved_path(key)
        return trace

    def save_trace(self, key: str, trace: Trace) -> Path:
        path = self.trace_path(key)
        _atomic_write(path, trace.to_bytes())
        # The capturing process replays this object next; let it warm
        # the sidecar for everyone else.
        trace._resolved_path = self.resolved_path(key)
        return path

    # -- results --------------------------------------------------------
    def result_path(self, trace_hash: str, config_hash: str) -> Path:
        return self.results_dir / f"{trace_hash[:24]}-{config_hash[:24]}.json"

    def load_result(self, trace_hash: str, config_hash: str) -> AppResult | None:
        path = self.result_path(trace_hash, config_hash)
        try:
            payload = json.loads(path.read_text())
            return AppResult(
                app=payload["app"],
                variant=Variant(payload["variant"]),
                checksum=payload["checksum"],
                stats=MachineStats.parse(payload["stats"]),
                extras=payload["extras"],
                timeline=payload.get("timeline"),
            )
        except FileNotFoundError:
            return None
        except (KeyError, ValueError, TypeError, OSError) as exc:
            _log.warning("discarding unreadable result %s: %s", path.name, exc)
            return None

    def save_result(
        self, trace_hash: str, config_hash: str, result: AppResult
    ) -> Path:
        payload = {
            "app": result.app,
            "variant": result.variant.value,
            "checksum": result.checksum,
            "extras": result.extras,
            "stats": result.stats.dump(),
            # Sound to cache: the config fingerprint covers the timeline
            # knobs, so a cached entry only ever answers a cell asking
            # for the same sampling configuration.
            "timeline": result.timeline,
        }
        path = self.result_path(trace_hash, config_hash)
        _atomic_write(path, json.dumps(payload, sort_keys=True).encode("utf-8"))
        return path

    # -- concurrency ----------------------------------------------------
    def lock_path(self, key: str) -> Path:
        return self.locks_dir / f"{key}.lock"

    @contextlib.contextmanager
    def capture_lock(
        self,
        key: str,
        timeout: float | None = None,
        poll_interval: float = 0.05,
    ):
        """Advisory exclusive lock over capturing one trace key.

        Creation is atomic (``O_CREAT | O_EXCL``); the file records the
        owning pid and acquisition time.  Contenders poll, breaking the
        lock if its owner died or it exceeded ``stale_after`` seconds --
        a crashed capturer never wedges the store.  ``timeout`` bounds
        the wait (default: ``stale_after`` plus slack, so a live owner
        is always outwaited or declared stale before giving up).
        """
        if timeout is None:
            timeout = self.stale_after + 60.0
        path = self.lock_path(key)
        deadline = time.monotonic() + timeout
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._break_if_stale(path):
                    continue
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"capture lock {path.name} held past {timeout:.0f}s"
                    ) from None
                time.sleep(poll_interval)
                continue
            with os.fdopen(fd, "w") as handle:
                json.dump({"pid": os.getpid(), "acquired": time.time()}, handle)
            break
        try:
            yield path
        finally:
            with contextlib.suppress(OSError):
                path.unlink()

    def _break_if_stale(self, path: Path) -> bool:
        """Remove ``path`` if its owner is gone or it aged out."""
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return True  # vanished underneath us -- effectively broken
        owner_dead = False
        try:
            owner = json.loads(path.read_text()).get("pid")
            owner_dead = isinstance(owner, int) and not _pid_alive(owner)
        except (OSError, ValueError):
            # Unreadable content: age alone decides.
            pass
        if owner_dead or age > self.stale_after:
            _log.warning(
                "breaking stale lock %s (age %.0fs, owner %s)",
                path.name,
                age,
                "dead" if owner_dead else "unknown",
            )
            with contextlib.suppress(OSError):
                path.unlink()
            return True
        return False

    def sweep_stale(self, max_age: float | None = None) -> int:
        """Remove abandoned temp files and stale locks; returns the count.

        Safe to run concurrently with writers: only artifacts older than
        ``max_age`` (default ``stale_after``) go, and in-flight temp
        files are by definition fresh.
        """
        if max_age is None:
            max_age = self.stale_after
        cutoff = time.time() - max_age
        removed = 0
        candidates = [
            path
            for directory in (self.traces_dir, self.results_dir)
            for path in directory.glob("*.tmp*")
        ]
        candidates += list(self.locks_dir.glob("*.lock"))
        for path in candidates:
            try:
                stale = path.stat().st_mtime < cutoff
            except OSError:
                continue
            if path.suffix == ".lock" and not stale:
                # A fresh lock might still be orphaned by a dead owner.
                stale = self._break_if_stale(path)
                if stale:
                    removed += 1
                continue
            if stale:
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
                    _log.info("swept stale artifact %s", path.name)
        return removed
