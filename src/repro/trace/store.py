"""Content-hash-keyed on-disk cache of traces and replayed results.

Layout under the store root::

    traces/<trace-key>.trace      one captured stream per workload identity
    traces/<trace-key>.resolved   decoded-stream sidecar (pure cache)
    results/<trace-hash>-<config-hash>.json   one replayed result per cell
    corpus.json                   the corpus manifest (see below)

*Trace keys* identify a workload -- ``(format version, app, variant,
scale, seed[, line size for line-size-sensitive apps])`` -- and name the
file to look in before capturing.  *Result keys* bind an exact trace
content hash to an exact machine-config fingerprint, so a result can
only ever be served for the identical stream on the identical machine:
edit anything (app code changes the stream, config changes the
fingerprint, a format bump changes both) and the stale entry simply
stops being found.

All writes are atomic (unique temp file + ``os.replace``), so concurrent
sweep workers -- and the long-lived serve processes of
:mod:`repro.serve`, which share one store across a process pool -- never
observe torn files; corrupt or unreadable entries are treated as misses
and recaptured.  Two further concurrency facilities support multi-writer
stores:

* :meth:`ArtifactStore.capture_lock` -- an advisory per-trace-key file
  lock so exactly one process captures a given stream; losers wait and
  find the trace warm.  Locks left by dead or wedged processes are
  *stale* (owner pid gone, or older than the stale threshold) and are
  broken automatically.
* :meth:`ArtifactStore.sweep_stale` -- removes orphaned ``.tmp`` files,
  stale locks, and ``.resolved`` sidecars whose parent trace is gone;
  services run it at startup.

**Capacity management** (the corpus layer).  ``corpus.json`` is a
persistent manifest mapping every saved trace key to its identity row
(content hash, stream digest, workload fields, event/chunk counts, byte
size).  It is written under an advisory lock by :meth:`save_trace` --
the only regular writer -- and *healed* lazily: a missing or stale row
is reconstructed from the trace file's footer on demand, so the
manifest can never serve wrong answers, only slow ones.  On top of it:

* :meth:`ArtifactStore.content_hash_for` answers the serve tier's warm
  probes (is this cell's result addressable?) from the manifest, with a
  two-seek footer read (:func:`repro.trace.format.load_index`) as the
  healing fallback -- no full trace load either way;
* :meth:`ArtifactStore.gc` evicts least-recently-*used* traces (their
  sidecars with them) until the corpus fits a byte budget -- every
  successful :meth:`load_trace` bumps the file's mtime, making mtime the
  LRU clock, and hardlinked duplicates are charged once (inode-aware);
  evicted traces recapture transparently on next use;
* :meth:`save_trace` dedups across workloads: a new trace whose
  *content hash* matches an existing entry shares that entry's file via
  hardlink, and one whose *stream digest* matches (same reference
  stream from a different seed or app revision) shares the decoded
  sidecar -- the dominant artifact -- the same way;
* :meth:`ArtifactStore.migrate` upgrades every non-v3 trace file in
  place (re-keying it, since the format version is part of the key).
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
import time
from dataclasses import asdict
from pathlib import Path

from repro.apps.base import AppResult, Variant
from repro.core.debug import get_logger
from repro.core.machine import MachineConfig
from repro.core.stats import MachineStats
from repro.trace.format import (
    FORMAT_VERSION,
    Trace,
    TraceFormatError,
    load_index,
    peek_version,
)

_log = get_logger("trace.store")

#: A lock or temp file untouched for this long is presumed abandoned.
STALE_AFTER_SECONDS = 900.0

_tmp_counter = itertools.count()


#: Manifest schema version (the ``version`` field of ``corpus.json``).
_MANIFEST_VERSION = 1

#: Pseudo trace key naming the manifest's advisory write lock.
_MANIFEST_LOCK = "corpus-manifest"


class LockTimeout(TimeoutError):
    """A capture lock could not be acquired within the deadline."""


def trace_key(
    app: str,
    variant: str,
    scale: float,
    seed: int,
    line_size: int | None,
    adapt: str | None = None,
) -> str:
    """Stable identity of a captured stream (hex digest).

    ``line_size`` must be the capture line size for line-size-sensitive
    apps and ``None`` otherwise (their streams are line-size-invariant).

    ``adapt`` is the config fingerprint of an adaptive cell (``None``
    for plain cells, which keeps every pre-existing key unchanged).  An
    adaptive run's engine issues its own references, so the stream is a
    function of the *entire* machine config, not just the workload
    identity — each adaptive config gets a private stream that replays
    only under the exact capture config.
    """
    identity: dict = {
        "format": FORMAT_VERSION,
        "app": app,
        "variant": variant,
        "scale": scale,
        "seed": seed,
        "line_size": line_size,
    }
    if adapt is not None:
        identity["adapt"] = adapt
    canonical = json.dumps(identity, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def config_fingerprint(config: MachineConfig) -> str:
    """Stable hash of every field of a machine config (hex digest)."""
    canonical = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    # The temp name is unique per (pid, in-process counter) so threads
    # of one process never collide on it; a failed write leaves nothing
    # behind for readers and nothing permanent for sweep_stale to find.
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}-{next(_tmp_counter)}")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe of a lock owner on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class ArtifactStore:
    """Filesystem-backed trace and result cache."""

    def __init__(
        self,
        root: str | os.PathLike,
        stale_after: float = STALE_AFTER_SECONDS,
    ) -> None:
        self.root = Path(root)
        self.stale_after = stale_after
        self.traces_dir = self.root / "traces"
        self.results_dir = self.root / "results"
        self.locks_dir = self.root / "locks"
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.locks_dir.mkdir(parents=True, exist_ok=True)

    # -- traces ---------------------------------------------------------
    def trace_path(self, key: str) -> Path:
        return self.traces_dir / f"{key}.trace"

    def resolved_path(self, key: str) -> Path:
        """Where the decoded resolved-chunk sidecar for ``key`` lives.

        The sidecar is a pure cache maintained by :func:`repro.trace.
        replay.iter_resolved_chunks`: it is validated against the
        trace's stream digest on load, so a recaptured trace silently
        orphans the old sidecar (which is then overwritten on the next
        decode) rather than ever serving a stale stream.
        """
        return self.traces_dir / f"{key}.resolved"

    def has_trace(self, key: str) -> bool:
        return self.trace_path(key).exists()

    def load_trace(self, key: str) -> Trace | None:
        path = self.trace_path(key)
        try:
            trace = Trace.load(path)
        except FileNotFoundError:
            return None
        except (TraceFormatError, OSError) as exc:
            _log.warning("discarding unreadable trace %s: %s", path.name, exc)
            return None
        # mtime is the corpus LRU clock (see gc); touching on every load
        # keeps hot traces out of eviction order without a manifest
        # write on the read path.
        with contextlib.suppress(OSError):
            os.utime(path)
        trace._resolved_path = self.resolved_path(key)
        return trace

    def save_trace(self, key: str, trace: Trace) -> Path:
        path = self.trace_path(key)
        _atomic_write(path, trace.to_bytes())
        # The capturing process replays this object next; let it warm
        # the sidecar for everyone else.
        trace._resolved_path = self.resolved_path(key)
        self._register_trace(key, trace, path)
        return path

    def _register_trace(self, key: str, trace: Trace, path: Path) -> None:
        """Record ``key`` in the manifest and dedup against the corpus.

        Two dedup levels, both hardlinks (free on filesystems without
        link support -- the ``OSError`` is swallowed and the copies
        simply stay independent):

        * identical **content hash** (same workload identity *and*
          stream): the trace bytes are deterministic, so the new file is
          replaced with a link to the existing one;
        * identical **stream digest** only (the same reference stream
          captured under a different seed or identity): the decoded
          sidecar -- which derives from the stream alone and validates
          against its digest, not the header -- is shared instead.
        """
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        entry = {
            "content_hash": trace.content_hash,
            "stream_sha256": trace.stream_sha256,
            "app": trace.app,
            "variant": trace.variant,
            "scale": trace.scale,
            "seed": trace.seed,
            "line_size": trace.line_size,
            "line_size_sensitive": trace.line_size_sensitive,
            "event_count": trace.event_count,
            "chunks": len(trace.chunks),
            "bytes": size,
            "format": FORMAT_VERSION,
            "saved_at": time.time(),
        }

        def mutate(entries: dict) -> None:
            for other_key, other in entries.items():
                if other_key == key:
                    continue
                if other.get("content_hash") == entry["content_hash"]:
                    self._try_link(self.trace_path(other_key), path)
                if other.get("stream_sha256") == entry["stream_sha256"]:
                    self._try_link(
                        self.resolved_path(other_key), self.resolved_path(key)
                    )
            entries[key] = entry

        self._update_manifest(mutate)

    def _try_link(self, src: Path, dst: Path) -> None:
        """Replace ``dst`` with a hardlink to ``src``, best-effort."""
        try:
            src_stat = src.stat()
        except OSError:
            return
        with contextlib.suppress(OSError):
            if dst.exists() and dst.stat().st_ino == src_stat.st_ino:
                return
            tmp = dst.with_name(
                f"{dst.name}.tmp{os.getpid()}-{next(_tmp_counter)}"
            )
            os.link(src, tmp)
            os.replace(tmp, dst)
            _log.info("deduplicated %s -> %s", dst.name, src.name)

    # -- corpus manifest ------------------------------------------------
    def manifest_path(self) -> Path:
        return self.root / "corpus.json"

    def read_manifest(self) -> dict:
        """The manifest as a dict; an empty one if missing/corrupt."""
        try:
            data = json.loads(self.manifest_path().read_text())
            if isinstance(data, dict) and isinstance(data.get("entries"), dict):
                return data
        except (OSError, ValueError):
            pass
        return {"version": _MANIFEST_VERSION, "entries": {}}

    def _update_manifest(self, mutate) -> None:
        """Read-modify-write the manifest under its advisory lock.

        Best-effort: a wedged lock means this update is skipped (the
        manifest heals lazily from trace footers), never that a capture
        blocks on bookkeeping.
        """
        try:
            with self.capture_lock(_MANIFEST_LOCK, timeout=10.0):
                manifest = self.read_manifest()
                manifest["version"] = _MANIFEST_VERSION
                mutate(manifest["entries"])
                _atomic_write(
                    self.manifest_path(),
                    json.dumps(manifest, sort_keys=True, indent=1).encode(
                        "utf-8"
                    ),
                )
        except LockTimeout:
            _log.warning("corpus manifest lock busy; skipping update")

    def content_hash_for(self, key: str) -> str | None:
        """The content hash of the stored trace for ``key``, or None.

        This is the serve tier's warm probe: manifest row first (O(1),
        no trace I/O beyond an existence check), footer read second
        (two seeks, no chunk data), full load only for legacy v2 files
        -- healing the manifest row whenever it had to go to disk.
        """
        path = self.trace_path(key)
        entry = self.read_manifest()["entries"].get(key)
        if entry is not None and "content_hash" in entry:
            if path.exists():
                return entry["content_hash"]
            return None  # evicted since the row was written
        try:
            content_hash = load_index(path).content_hash
        except FileNotFoundError:
            return None
        except TraceFormatError:
            trace = self.load_trace(key)
            if trace is None:
                return None
            content_hash = trace.content_hash
        self._update_manifest(
            lambda entries: entries.setdefault(key, {}).update(
                content_hash=content_hash
            )
        )
        return content_hash

    def corpus_status(self) -> list[dict]:
        """One row per trace on disk, manifest-enriched, LRU-ordered.

        Rows carry ``key``, ``bytes``, ``mtime``, ``inode``, ``links``
        from the filesystem plus whatever identity fields the manifest
        has; sidecar size rides in ``resolved_bytes``.  Ordered oldest
        (next to evict) first.
        """
        entries = self.read_manifest()["entries"]
        rows = []
        for path in sorted(self.traces_dir.glob("*.trace")):
            key = path.stem
            try:
                st = path.stat()
            except OSError:
                continue
            row = {
                "key": key,
                "bytes": st.st_size,
                "mtime": st.st_mtime,
                "inode": st.st_ino,
                "links": st.st_nlink,
                "resolved_bytes": 0,
            }
            with contextlib.suppress(OSError):
                sidecar_stat = self.resolved_path(key).stat()
                row["resolved_bytes"] = sidecar_stat.st_size
                row["resolved_inode"] = sidecar_stat.st_ino
                row["mtime"] = max(row["mtime"], sidecar_stat.st_mtime)
            row.update(entries.get(key, {}))
            rows.append(row)
        rows.sort(key=lambda row: (row["mtime"], row["key"]))
        return rows

    def gc(self, budget_bytes: int, dry_run: bool = False) -> dict:
        """Evict least-recently-used traces until the corpus fits.

        ``budget_bytes`` bounds the summed size of trace files plus
        sidecars, counting each inode once (hardlinked dedup copies are
        free until their last reference goes).  Eviction removes the
        trace file, its sidecar, and its manifest row; results are NOT
        touched (they are keyed by content hash and stay servable for a
        recaptured identical stream).  Returns a report dict; with
        ``dry_run`` nothing is removed but the report shows what would
        be.
        """
        rows = self.corpus_status()
        inode_size: dict[int, int] = {}
        inode_refs: dict[int, set[str]] = {}
        key_inodes: dict[str, list[int]] = {}
        for row in rows:
            inodes = [(row["inode"], row["bytes"])]
            if "resolved_inode" in row:
                inodes.append((row["resolved_inode"], row["resolved_bytes"]))
            key_inodes[row["key"]] = [ino for ino, _ in inodes]
            for ino, size in inodes:
                inode_size[ino] = size
                inode_refs.setdefault(ino, set()).add(row["key"])
        total = sum(inode_size.values())
        freed = 0
        evicted: list[str] = []
        for row in rows:  # oldest first
            if total - freed <= budget_bytes:
                break
            key = row["key"]
            for ino in key_inodes[key]:
                refs = inode_refs[ino]
                refs.discard(key)
                if not refs:
                    freed += inode_size[ino]
            evicted.append(key)
        if not dry_run and evicted:
            for key in evicted:
                with contextlib.suppress(OSError):
                    self.trace_path(key).unlink()
                with contextlib.suppress(OSError):
                    self.resolved_path(key).unlink()
                _log.info("evicted trace %s", key)
            self._update_manifest(
                lambda entries: [entries.pop(key, None) for key in evicted]
            )
        return {
            "budget_bytes": budget_bytes,
            "total_bytes": total,
            "after_bytes": total - freed,
            "freed_bytes": freed,
            "evicted": evicted,
            "kept": len(rows) - len(evicted),
            "dry_run": dry_run,
        }

    def migrate(self) -> dict:
        """Upgrade every non-v3 trace file to format v3, re-keying it.

        The format version is part of the trace key, so an upgraded
        trace lands under a *new* key (file, sidecar, and manifest row
        of the old key are removed -- the old v1 sidecar layout is
        unreadable now anyway).  Unreadable files are reported, not
        deleted.  Returns ``{"migrated": [...], "current": n,
        "failed": {name: error}}``.
        """
        migrated: list[dict] = []
        failed: dict[str, str] = {}
        current = 0
        for path in sorted(self.traces_dir.glob("*.trace")):
            try:
                version = peek_version(path)
            except (TraceFormatError, OSError) as exc:
                failed[path.name] = str(exc)
                continue
            if version == FORMAT_VERSION:
                current += 1
                continue
            try:
                trace = Trace.load(path)
            except (TraceFormatError, OSError) as exc:
                failed[path.name] = str(exc)
                continue
            old_key = path.stem
            new_key = trace_key(
                trace.app,
                trace.variant,
                trace.scale,
                trace.seed,
                trace.line_size if trace.line_size_sensitive else None,
            )
            self.save_trace(new_key, trace)
            if new_key != old_key:
                with contextlib.suppress(OSError):
                    path.unlink()
                with contextlib.suppress(OSError):
                    self.resolved_path(old_key).unlink()
                self._update_manifest(
                    lambda entries, stale=old_key: entries.pop(stale, None)
                )
            migrated.append(
                {"from": old_key, "to": new_key, "version": version}
            )
        return {"migrated": migrated, "current": current, "failed": failed}

    # -- results --------------------------------------------------------
    def result_path(self, trace_hash: str, config_hash: str) -> Path:
        return self.results_dir / f"{trace_hash[:24]}-{config_hash[:24]}.json"

    def load_result(self, trace_hash: str, config_hash: str) -> AppResult | None:
        path = self.result_path(trace_hash, config_hash)
        try:
            payload = json.loads(path.read_text())
            return AppResult(
                app=payload["app"],
                variant=Variant(payload["variant"]),
                checksum=payload["checksum"],
                stats=MachineStats.parse(payload["stats"]),
                extras=payload["extras"],
                timeline=payload.get("timeline"),
            )
        except FileNotFoundError:
            return None
        except (KeyError, ValueError, TypeError, OSError) as exc:
            _log.warning("discarding unreadable result %s: %s", path.name, exc)
            return None

    def save_result(
        self, trace_hash: str, config_hash: str, result: AppResult
    ) -> Path:
        payload = {
            "app": result.app,
            "variant": result.variant.value,
            "checksum": result.checksum,
            "extras": result.extras,
            "stats": result.stats.dump(),
            # Sound to cache: the config fingerprint covers the timeline
            # knobs, so a cached entry only ever answers a cell asking
            # for the same sampling configuration.
            "timeline": result.timeline,
        }
        path = self.result_path(trace_hash, config_hash)
        _atomic_write(path, json.dumps(payload, sort_keys=True).encode("utf-8"))
        return path

    # -- concurrency ----------------------------------------------------
    def lock_path(self, key: str) -> Path:
        return self.locks_dir / f"{key}.lock"

    @contextlib.contextmanager
    def capture_lock(
        self,
        key: str,
        timeout: float | None = None,
        poll_interval: float = 0.05,
    ):
        """Advisory exclusive lock over capturing one trace key.

        Creation is atomic (``O_CREAT | O_EXCL``); the file records the
        owning pid and acquisition time.  Contenders poll, breaking the
        lock if its owner died or it exceeded ``stale_after`` seconds --
        a crashed capturer never wedges the store.  ``timeout`` bounds
        the wait (default: ``stale_after`` plus slack, so a live owner
        is always outwaited or declared stale before giving up).
        """
        if timeout is None:
            timeout = self.stale_after + 60.0
        path = self.lock_path(key)
        deadline = time.monotonic() + timeout
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._break_if_stale(path):
                    continue
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"capture lock {path.name} held past {timeout:.0f}s"
                    ) from None
                time.sleep(poll_interval)
                continue
            with os.fdopen(fd, "w") as handle:
                json.dump({"pid": os.getpid(), "acquired": time.time()}, handle)
            break
        try:
            yield path
        finally:
            with contextlib.suppress(OSError):
                path.unlink()

    def _break_if_stale(self, path: Path) -> bool:
        """Remove ``path`` if its owner is gone or it aged out."""
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return True  # vanished underneath us -- effectively broken
        owner_dead = False
        try:
            owner = json.loads(path.read_text()).get("pid")
            owner_dead = isinstance(owner, int) and not _pid_alive(owner)
        except (OSError, ValueError):
            # Unreadable content: age alone decides.
            pass
        if owner_dead or age > self.stale_after:
            _log.warning(
                "breaking stale lock %s (age %.0fs, owner %s)",
                path.name,
                age,
                "dead" if owner_dead else "unknown",
            )
            with contextlib.suppress(OSError):
                path.unlink()
            return True
        return False

    def sweep_stale(self, max_age: float | None = None) -> int:
        """Remove abandoned temp files, stale locks, and orphaned
        sidecars; returns the count.

        Safe to run concurrently with writers: only artifacts older than
        ``max_age`` (default ``stale_after``) go, and in-flight temp
        files are by definition fresh.  Orphaned ``.resolved`` sidecars
        -- whose parent ``.trace`` is gone, so nothing can ever validate
        or serve them -- are removed regardless of age: a recapture
        always rewrites the sidecar from scratch, so there is no
        in-flight state to protect.
        """
        if max_age is None:
            max_age = self.stale_after
        cutoff = time.time() - max_age
        removed = 0
        for path in self.traces_dir.glob("*.resolved"):
            if not path.with_suffix(".trace").exists():
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
                    _log.info("swept orphaned sidecar %s", path.name)
        candidates = [
            path
            for directory in (self.traces_dir, self.results_dir)
            for path in directory.glob("*.tmp*")
        ]
        candidates += list(self.locks_dir.glob("*.lock"))
        for path in candidates:
            try:
                stale = path.stat().st_mtime < cutoff
            except OSError:
                continue
            if path.suffix == ".lock" and not stale:
                # A fresh lock might still be orphaned by a dead owner.
                stale = self._break_if_stale(path)
                if stale:
                    removed += 1
                continue
            if stale:
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
                    _log.info("swept stale artifact %s", path.name)
        return removed
