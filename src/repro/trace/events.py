"""Event vocabulary of the canonical reference stream.

One opcode per :class:`~repro.core.machine.MachineObserver` callback.
The numeric values are part of the on-disk format -- never renumber an
existing opcode; add new ones at the end and bump
:data:`repro.trace.format.FORMAT_VERSION` if semantics change.

Decoded events are plain tuples whose first element is the opcode and
whose remaining elements are the operands, in the order listed here:

=============  =====================================  ==================
Opcode         Operands                               Operand encoding
=============  =====================================  ==================
``LOAD``       address, size                          delta, uvarint
``STORE``      address, value, size                   delta, zigzag, uvarint
``EXECUTE``    instructions                           uvarint
``PREFETCH``   address, lines                         delta, uvarint
``READ_FBIT``  address                                delta
``UNF_READ``   address                                delta
``UNF_WRITE``  address, value, fbit                   delta, zigzag, uvarint
``MALLOC``     nbytes, align, address (result)        uvarint, uvarint, delta
``FREE``       address                                delta
``CREATE_POOL``size                                   uvarint
``POOL_ALLOC`` index, nbytes, align, address (result) uvarint x3, delta
``RAW_WRITE``  address, value                         delta, zigzag
``NOTE_RELOC`` relocations, words                     uvarint, uvarint
``NOTE_OPT``   --                                     --
``SET_TRAP``   installed (0/1)                        uvarint
=============  =====================================  ==================

*delta* means zigzag-varint of the difference against a single running
address register shared by every address-typed operand in stream order;
consecutive references tend to be near each other, so deltas stay short.
Result addresses (``MALLOC``/``POOL_ALLOC``) are recorded so replay can
verify allocator determinism instead of silently diverging.
"""

from __future__ import annotations

LOAD = 0
STORE = 1
EXECUTE = 2
PREFETCH = 3
READ_FBIT = 4
UNF_READ = 5
UNF_WRITE = 6
MALLOC = 7
FREE = 8
CREATE_POOL = 9
POOL_ALLOC = 10
RAW_WRITE = 11
NOTE_RELOC = 12
NOTE_OPT = 13
SET_TRAP = 14

#: Human-readable names, indexed by opcode (for dumps and errors).
NAMES = (
    "load",
    "store",
    "execute",
    "prefetch",
    "read_fbit",
    "unforwarded_read",
    "unforwarded_write",
    "malloc",
    "free",
    "create_pool",
    "pool_alloc",
    "raw_write",
    "note_relocation",
    "note_optimizer",
    "set_trap",
)

#: Highest valid opcode (payloads containing anything above are corrupt).
MAX_OPCODE = SET_TRAP
