"""Batch multi-config replay: decode each chunk once, simulate many configs.

The sweep's unit of work used to be the *cell* -- each cell loaded (or
captured) its trace, decoded the payload, and replayed.  The natural
unit is the *trace*: every cell sharing a trace key can run against one
decode of the stream.  Since format v3 the decode itself is chunked
(:func:`repro.trace.replay.iter_resolved_chunks`), so the group loop
interleaves at chunk granularity: decode one chunk, drive **every**
config's session over it, drop it, pull the next.  Resident memory is
one resolved chunk plus N session states -- O(chunk), not O(trace) --
however many configs share the stream.  This module is that grouping
layer:

* :func:`group_by_trace` partitions sweep tasks into per-trace-key
  groups (insertion-ordered, so progress output stays deterministic);
* :func:`run_batch_group` executes one group end to end -- capture the
  stream if it is missing (the capturing cell's direct result answers
  that cell), answer cached cells from the store, then build one replay
  session per remaining config and drive them all through one streaming
  decode;
* :func:`replay_engine` / :func:`_session_for` pick the per-config
  engine: the exec-specialized kernel session
  (:class:`~repro.trace.kernels.SpecializedSession`) when the config is
  inside the specializer's feature matrix, the general
  :class:`~repro.trace.replay.ReplaySession` otherwise.  Both are
  bit-identical by contract; the engine label is diagnostics, not
  semantics.

The engine label travels with every outcome (``"sequential"``,
``"batch+general"``, ``"batch+specialized"``) so manifests and progress
logs can say which code path produced each cell -- the parity suite
makes the labels interchangeable, the labels make the claim auditable.

Error contract: :class:`BatchCellError` names the exact failing cell
inside a group and is pickle-safe (its ``args`` are plain data), so a
process-pool worker can raise it across the pipe without losing the
cell identity.  ``collect_errors=True`` switches to per-cell error
outcomes instead -- the serve tier folds multiple queued jobs into one
batch and must fail them individually, not collectively.  A failure
*inside one session* mid-stream fails only that cell; the other
sessions keep consuming chunks.  A failure in the shared decode fails
every cell still riding it (there is no stream left to finish them).

Setting the ``REPRO_BATCH_MATERIALIZE`` environment variable makes each
group materialise its full resolved stream up front -- the pre-v3
O(trace) residency -- before streaming normally.  It exists purely as
the control arm of the peak-RSS benchmark (``BENCH_PR8.json``); never
set it otherwise.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass

from repro.apps.base import AppResult
from repro.core.machine import MachineConfig
from repro.trace.format import Trace
from repro.trace.kernels import (
    SpecializedSession,
    replay_specialized,
    specializable,
)
from repro.trace.replay import (
    ReplaySession,
    SidecarError,
    _decode_chunks,
    iter_resolved_chunks,
    replay_trace,
    resolved_stream,
)
from repro.trace.store import ArtifactStore, config_fingerprint

#: Engine labels recorded per cell (manifests, progress logs, metrics).
SEQUENTIAL = "sequential"
BATCH_GENERAL = "batch+general"
BATCH_SPECIALIZED = "batch+specialized"


class BatchCellError(RuntimeError):
    """One cell of a batch group failed; names the cell, pickles cleanly.

    ``args`` carries only the task and a rendered message (no exception
    object with a custom constructor), so the error crosses a process
    pool's result pipe intact -- the collector on the other side still
    knows exactly which cell inside the batch failed.
    """

    def __init__(self, task, message: str) -> None:
        super().__init__(task, message)
        self.task = task
        self.message = message

    def __str__(self) -> str:
        return self.message


@dataclass
class BatchOutcome:
    """One cell's result within a batch group."""

    task: object  # SweepTask (kept untyped to avoid an import cycle)
    result: AppResult | None
    #: ``"captured"`` / ``"replayed"`` / ``"cached"`` (run_task's word).
    how: str
    #: Which engine produced the result (``SEQUENTIAL`` etc.).
    engine: str
    #: Set instead of ``result`` when ``collect_errors=True``.
    error: BatchCellError | None = None


def replay_engine(trace: Trace, config: MachineConfig) -> tuple[AppResult, str]:
    """Replay through the best engine for ``config``.

    Returns ``(result, engine)`` where ``engine`` is
    :data:`BATCH_SPECIALIZED` when the config fits the specializer's
    feature matrix and :data:`BATCH_GENERAL` otherwise.  Results are
    bit-identical either way (enforced by the parity suites).
    """
    if specializable(config):
        return replay_specialized(trace, config), BATCH_SPECIALIZED
    return replay_trace(trace, config), BATCH_GENERAL


def _session_for(trace: Trace, config: MachineConfig):
    """Build the best chunk-consuming session for ``config``."""
    if specializable(config):
        return SpecializedSession(trace, config), BATCH_SPECIALIZED
    return ReplaySession(trace, config), BATCH_GENERAL


def group_by_trace(tasks) -> dict[str, list]:
    """Partition tasks into per-trace-key groups, insertion-ordered."""
    groups: dict[str, list] = {}
    for task in tasks:
        groups.setdefault(task.key(), []).append(task)
    return groups


def run_batch_group(
    tasks: list,
    store: ArtifactStore | None = None,
    traces: dict[str, Trace] | None = None,
    collect_errors: bool = False,
) -> list[BatchOutcome]:
    """Execute one trace-sharing group of cells; one decode, N configs.

    All tasks must share a trace key.  The group runs in two phases.

    **Resolve** (per cell, in task order):

    * events cells (``events_capacity > 0``) always run direct -- replay
      cannot reproduce the discrete event stream -- via the sequential
      single-cell executor;
    * if the group's trace is missing everywhere, the first such cell
      captures it (its direct result answers that cell);
    * cached results come straight from the store;
    * everything else gets a replay session (specialized kernel or
      general path, per config).

    **Drive**: every session consumes the trace's resolved chunks in
    lockstep -- one chunk decoded (or sidecar-served), all sessions run
    over it, then the next -- and finally each session's ``finish()``
    produces and persists its cell's result.

    With ``collect_errors=False`` (batch sweeps) the first failing cell
    raises :class:`BatchCellError`; with ``collect_errors=True`` (the
    serve tier) each failure becomes an error outcome and the remaining
    cells still run.
    """
    # Deferred import: sweep imports this module for its batch path.
    from repro.trace.sweep import run_task

    keys = {task.key() for task in tasks}
    if len(keys) > 1:
        raise ValueError(
            f"batch group spans {len(keys)} trace keys {sorted(keys)}; "
            "group_by_trace() the tasks first"
        )
    outcomes: dict[int, BatchOutcome] = {}
    trace: Trace | None = None
    key = next(iter(keys)) if keys else None
    if traces is None:
        traces = {}

    def fail(position, task, exc) -> None:
        error = BatchCellError(
            task,
            f"batch cell {task.app}/{task.line_size}B/{task.variant} "
            f"(scale={task.scale}, seed={task.seed}) failed: "
            f"{type(exc).__name__}: {exc}",
        )
        error.__cause__ = exc
        if not collect_errors:
            raise error from exc
        outcomes[position] = BatchOutcome(
            task, None, "failed", SEQUENTIAL, error=error
        )

    #: (position, task, fingerprint, session, engine) per replay cell.
    pending: list[tuple] = []
    for position, task in enumerate(tasks):
        try:
            config = task.config()
            if config.events_capacity > 0:
                # Direct re-capture; never touches the shared stream.
                result, how = run_task(task, store, traces)
                outcomes[position] = BatchOutcome(
                    task, result, how, SEQUENTIAL
                )
                continue
            if trace is None:
                trace = traces.get(key)
            if trace is None and store is not None:
                trace = store.load_trace(key)
                if trace is not None:
                    traces[key] = trace
            if trace is None:
                # First cold cell captures for the whole group; its own
                # direct result answers this cell.
                result, how = run_task(task, store, traces)
                trace = traces.get(key)
                outcomes[position] = BatchOutcome(
                    task, result, how, SEQUENTIAL
                )
                continue
            fingerprint = config_fingerprint(config)
            if store is not None:
                cached = store.load_result(trace.content_hash, fingerprint)
                if cached is not None:
                    outcomes[position] = BatchOutcome(
                        task, cached, "cached", SEQUENTIAL
                    )
                    continue
            session, engine = _session_for(trace, config)
            pending.append((position, task, fingerprint, session, engine))
        except Exception as exc:
            fail(position, task, exc)

    if pending:
        if os.environ.get("REPRO_BATCH_MATERIALIZE"):
            # Benchmark control arm only: recreate the pre-v3 whole-trace
            # residency so the RSS delta of streaming is measurable.
            trace._bench_materialized = resolved_stream(trace)
        _drive_pending(trace, pending, outcomes, store, fail)
        if os.environ.get("REPRO_BATCH_MATERIALIZE"):
            trace._bench_materialized = None
    return [outcomes[position] for position in sorted(outcomes)]


def _drive_pending(trace, pending, outcomes, store, fail) -> None:
    """Stream the trace's chunks through every pending session."""
    live = list(pending)

    def feed(chunks) -> None:
        nonlocal live
        for chunk in chunks:
            kept = []
            for entry in live:
                position, task, _fingerprint, session, _engine = entry
                try:
                    session.run_chunk(chunk)
                except Exception as exc:
                    fail(position, task, exc)
                else:
                    kept.append(entry)
            live = kept
            if not live:
                return

    try:
        try:
            feed(iter_resolved_chunks(trace))
        except SidecarError:
            # The sidecar went bad after chunks were already consumed:
            # drop it, rewind every surviving session, and re-run the
            # stream from the raw columns (which rewrites the sidecar).
            path = getattr(trace, "_resolved_path", None)
            if path is not None:
                with contextlib.suppress(OSError):
                    path.unlink()
            for entry in live:
                entry[3].reset()
            feed(_decode_chunks(trace, path))
    except BatchCellError:
        raise
    except Exception as exc:
        # The shared decode itself failed; every session still riding
        # it loses its stream mid-flight and cannot produce a result.
        for position, task, _fingerprint, _session, _engine in live:
            fail(position, task, exc)
        return

    for position, task, fingerprint, session, engine in live:
        try:
            result = session.finish()
            if store is not None:
                store.save_result(trace.content_hash, fingerprint, result)
        except Exception as exc:
            fail(position, task, exc)
        else:
            outcomes[position] = BatchOutcome(task, result, "replayed", engine)
