"""Batch multi-config replay: decode one trace, simulate many configs.

The sweep's unit of work used to be the *cell* -- each cell loaded (or
captured) its trace, decoded the payload, and replayed.  The natural
unit is the *trace*: every cell sharing a trace key can run against one
decoded resolved stream (see :func:`repro.trace.replay.resolved_stream`,
which memoizes on the :class:`~repro.trace.format.Trace` object), paying
the trace load and decode exactly once per group instead of once per
cell.  This module is that grouping layer:

* :func:`group_by_trace` partitions sweep tasks into per-trace-key
  groups (insertion-ordered, so progress output stays deterministic);
* :func:`run_batch_group` executes one group end to end -- capture the
  stream if it is missing (the capturing cell's direct result answers
  that cell for free), then drive every remaining config through the
  shared stream;
* :func:`replay_engine` picks the per-config replay engine: the
  exec-specialized kernel (:mod:`repro.trace.kernels`) when the config
  is inside the specializer's feature matrix, the general
  :func:`~repro.trace.replay.replay_trace` path otherwise.  Both are
  bit-identical by contract; the engine label is diagnostics, not
  semantics.

The engine label travels with every outcome (``"sequential"``,
``"batch+general"``, ``"batch+specialized"``) so manifests and progress
logs can say which code path produced each cell -- the parity suite
makes the labels interchangeable, the labels make the claim auditable.

Error contract: :class:`BatchCellError` names the exact failing cell
inside a group and is pickle-safe (its ``args`` are plain data), so a
process-pool worker can raise it across the pipe without losing the
cell identity.  ``collect_errors=True`` switches to per-cell error
outcomes instead -- the serve tier folds multiple queued jobs into one
batch and must fail them individually, not collectively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppResult
from repro.core.machine import MachineConfig
from repro.trace.format import Trace
from repro.trace.kernels import replay_specialized, specializable
from repro.trace.replay import replay_trace
from repro.trace.store import ArtifactStore, config_fingerprint

#: Engine labels recorded per cell (manifests, progress logs, metrics).
SEQUENTIAL = "sequential"
BATCH_GENERAL = "batch+general"
BATCH_SPECIALIZED = "batch+specialized"


class BatchCellError(RuntimeError):
    """One cell of a batch group failed; names the cell, pickles cleanly.

    ``args`` carries only the task and a rendered message (no exception
    object with a custom constructor), so the error crosses a process
    pool's result pipe intact -- the collector on the other side still
    knows exactly which cell inside the batch failed.
    """

    def __init__(self, task, message: str) -> None:
        super().__init__(task, message)
        self.task = task
        self.message = message

    def __str__(self) -> str:
        return self.message


@dataclass
class BatchOutcome:
    """One cell's result within a batch group."""

    task: object  # SweepTask (kept untyped to avoid an import cycle)
    result: AppResult | None
    #: ``"captured"`` / ``"replayed"`` / ``"cached"`` (run_task's word).
    how: str
    #: Which engine produced the result (``SEQUENTIAL`` etc.).
    engine: str
    #: Set instead of ``result`` when ``collect_errors=True``.
    error: BatchCellError | None = None


def replay_engine(trace: Trace, config: MachineConfig) -> tuple[AppResult, str]:
    """Replay through the best engine for ``config``.

    Returns ``(result, engine)`` where ``engine`` is
    :data:`BATCH_SPECIALIZED` when the config fits the specializer's
    feature matrix and :data:`BATCH_GENERAL` otherwise.  Results are
    bit-identical either way (enforced by the parity suites).
    """
    if specializable(config):
        return replay_specialized(trace, config), BATCH_SPECIALIZED
    return replay_trace(trace, config), BATCH_GENERAL


def group_by_trace(tasks) -> dict[str, list]:
    """Partition tasks into per-trace-key groups, insertion-ordered."""
    groups: dict[str, list] = {}
    for task in tasks:
        groups.setdefault(task.key(), []).append(task)
    return groups


def run_batch_group(
    tasks: list,
    store: ArtifactStore | None = None,
    traces: dict[str, Trace] | None = None,
    collect_errors: bool = False,
) -> list[BatchOutcome]:
    """Execute one trace-sharing group of cells; one decode, N configs.

    All tasks must share a trace key.  Per cell, in order:

    * events cells (``events_capacity > 0``) always run direct -- replay
      cannot reproduce the discrete event stream -- via the sequential
      single-cell executor;
    * if the group's trace is missing everywhere, the first such cell
      captures it (its direct result answers that cell);
    * cached results come straight from the store;
    * everything else replays the shared decoded stream through
      :func:`replay_engine`.

    With ``collect_errors=False`` (batch sweeps) the first failing cell
    raises :class:`BatchCellError`; with ``collect_errors=True`` (the
    serve tier) each failure becomes an error outcome and the remaining
    cells still run.
    """
    # Deferred import: sweep imports this module for its batch path.
    from repro.trace.sweep import run_task

    keys = {task.key() for task in tasks}
    if len(keys) > 1:
        raise ValueError(
            f"batch group spans {len(keys)} trace keys {sorted(keys)}; "
            "group_by_trace() the tasks first"
        )
    outcomes: list[BatchOutcome] = []
    trace: Trace | None = None
    key = next(iter(keys)) if keys else None
    if traces is None:
        traces = {}
    for task in tasks:
        try:
            config = task.config()
            if config.events_capacity > 0:
                # Direct re-capture; never touches the shared stream.
                result, how = run_task(task, store, traces)
                outcomes.append(BatchOutcome(task, result, how, SEQUENTIAL))
                continue
            if trace is None:
                trace = traces.get(key)
            if trace is None and store is not None:
                trace = store.load_trace(key)
                if trace is not None:
                    traces[key] = trace
            if trace is None:
                # First cold cell captures for the whole group; its own
                # direct result answers this cell.
                result, how = run_task(task, store, traces)
                trace = traces.get(key)
                outcomes.append(BatchOutcome(task, result, how, SEQUENTIAL))
                continue
            fingerprint = config_fingerprint(config)
            if store is not None:
                cached = store.load_result(trace.content_hash, fingerprint)
                if cached is not None:
                    outcomes.append(
                        BatchOutcome(task, cached, "cached", SEQUENTIAL)
                    )
                    continue
            result, engine = replay_engine(trace, config)
            if store is not None:
                store.save_result(trace.content_hash, fingerprint, result)
            outcomes.append(BatchOutcome(task, result, "replayed", engine))
        except Exception as exc:
            error = BatchCellError(
                task,
                f"batch cell {task.app}/{task.line_size}B/{task.variant} "
                f"(scale={task.scale}, seed={task.seed}) failed: "
                f"{type(exc).__name__}: {exc}",
            )
            error.__cause__ = exc
            if not collect_errors:
                raise error from exc
            outcomes.append(
                BatchOutcome(task, None, "failed", SEQUENTIAL, error=error)
            )
    return outcomes
