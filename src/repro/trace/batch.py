"""Batch multi-config replay: decode each chunk once, simulate many configs.

The sweep's unit of work used to be the *cell* -- each cell loaded (or
captured) its trace, decoded the payload, and replayed.  The natural
unit is the *trace*: every cell sharing a trace key can run against one
decode of the stream.  Since format v3 the decode itself is chunked
(:func:`repro.trace.replay.iter_resolved_chunks`), so the group loop
interleaves at chunk granularity: decode one chunk, drive **every**
config's session over it, drop it, pull the next.  Resident memory is
one resolved chunk plus N session states -- O(chunk), not O(trace) --
however many configs share the stream.  This module is that grouping
layer:

* :func:`group_by_trace` partitions sweep tasks into per-trace-key
  groups (insertion-ordered, so progress output stays deterministic);
* :func:`run_batch_group` executes one group end to end -- capture the
  stream if it is missing (the capturing cell's direct result answers
  that cell), answer cached cells from the store, then build one replay
  session per remaining config and drive them all through one streaming
  decode;
* :func:`replay_engine` / :func:`_session_for` pick the per-config
  engine: the exec-specialized kernel session
  (:class:`~repro.trace.kernels.SpecializedSession`) when the config is
  inside the specializer's feature matrix, the general
  :class:`~repro.trace.replay.ReplaySession` otherwise.  Both are
  bit-identical by contract; the engine label is diagnostics, not
  semantics.

The engine label travels with every outcome (``"sequential"``,
``"batch+general"``, ``"batch+specialized"``) so manifests and progress
logs can say which code path produced each cell -- the parity suite
makes the labels interchangeable, the labels make the claim auditable.

Error contract: :class:`BatchCellError` names the exact failing cell
inside a group and is pickle-safe (its ``args`` are plain data), so a
process-pool worker can raise it across the pipe without losing the
cell identity.  ``collect_errors=True`` switches to per-cell error
outcomes instead -- the serve tier folds multiple queued jobs into one
batch and must fail them individually, not collectively.  A failure
*inside one session* mid-stream fails only that cell; the other
sessions keep consuming chunks.  A failure in the shared decode fails
every cell still riding it (there is no stream left to finish them).

Setting the ``REPRO_BATCH_MATERIALIZE`` environment variable makes each
group materialise its full resolved stream up front -- the pre-v3
O(trace) residency -- before streaming normally.  It exists purely as
the control arm of the peak-RSS benchmark (``BENCH_PR8.json``); never
set it otherwise.
"""

from __future__ import annotations

import contextlib
import os
import time as _time
from dataclasses import dataclass

from repro.apps.base import AppResult
from repro.core.machine import MachineConfig
from repro.trace.format import Trace
from repro.trace.kernels import (
    SpecializedSession,
    replay_specialized,
    specializable,
)
from repro.trace.replay import (
    MAX_CHUNK_SPANS,
    ReplaySession,
    SidecarError,
    _decode_chunks,
    iter_resolved_chunks,
    replay_trace,
    resolved_stream,
)
from repro.trace.store import ArtifactStore, config_fingerprint

#: Engine labels recorded per cell (manifests, progress logs, metrics).
SEQUENTIAL = "sequential"
BATCH_GENERAL = "batch+general"
BATCH_SPECIALIZED = "batch+specialized"


class BatchCellError(RuntimeError):
    """One cell of a batch group failed; names the cell, pickles cleanly.

    ``args`` carries only the task and a rendered message (no exception
    object with a custom constructor), so the error crosses a process
    pool's result pipe intact -- the collector on the other side still
    knows exactly which cell inside the batch failed.
    """

    def __init__(self, task, message: str) -> None:
        super().__init__(task, message)
        self.task = task
        self.message = message

    def __str__(self) -> str:
        return self.message


@dataclass
class BatchOutcome:
    """One cell's result within a batch group."""

    task: object  # SweepTask (kept untyped to avoid an import cycle)
    result: AppResult | None
    #: ``"captured"`` / ``"replayed"`` / ``"cached"`` (run_task's word).
    how: str
    #: Which engine produced the result (``SEQUENTIAL`` etc.).
    engine: str
    #: Set instead of ``result`` when ``collect_errors=True``.
    error: BatchCellError | None = None


def replay_engine(trace: Trace, config: MachineConfig) -> tuple[AppResult, str]:
    """Replay through the best engine for ``config``.

    Returns ``(result, engine)`` where ``engine`` is
    :data:`BATCH_SPECIALIZED` when the config fits the specializer's
    feature matrix and :data:`BATCH_GENERAL` otherwise.  Results are
    bit-identical either way (enforced by the parity suites).
    """
    if specializable(config):
        return replay_specialized(trace, config), BATCH_SPECIALIZED
    return replay_trace(trace, config), BATCH_GENERAL


def _session_for(trace: Trace, config: MachineConfig, on_window=None):
    """Build the best chunk-consuming session for ``config``.

    ``on_window`` only reaches the general session: the specializer's
    feature matrix requires ``timeline_interval == 0``, so a config
    with windows to stream always takes the general path anyway.
    """
    if specializable(config):
        return SpecializedSession(trace, config), BATCH_SPECIALIZED
    return ReplaySession(trace, config, on_window=on_window), BATCH_GENERAL


def group_by_trace(tasks) -> dict[str, list]:
    """Partition tasks into per-trace-key groups, insertion-ordered."""
    groups: dict[str, list] = {}
    for task in tasks:
        groups.setdefault(task.key(), []).append(task)
    return groups


def run_batch_group(
    tasks: list,
    store: ArtifactStore | None = None,
    traces: dict[str, Trace] | None = None,
    collect_errors: bool = False,
    *,
    tracers=None,
    on_window=None,
) -> list[BatchOutcome]:
    """Execute one trace-sharing group of cells; one decode, N configs.

    All tasks must share a trace key.  The group runs in two phases.

    **Resolve** (per cell, in task order):

    * events cells (``events_capacity > 0``) always run direct -- replay
      cannot reproduce the discrete event stream -- via the sequential
      single-cell executor;
    * if the group's trace is missing everywhere, the first such cell
      captures it (its direct result answers that cell);
    * cached results come straight from the store;
    * everything else gets a replay session (specialized kernel or
      general path, per config).

    **Drive**: every session consumes the trace's resolved chunks in
    lockstep -- one chunk decoded (or sidecar-served), all sessions run
    over it, then the next -- and finally each session's ``finish()``
    produces and persists its cell's result.

    With ``collect_errors=False`` (batch sweeps) the first failing cell
    raises :class:`BatchCellError`; with ``collect_errors=True`` (the
    serve tier) each failure becomes an error outcome and the remaining
    cells still run.

    ``tracers`` (``{task: Tracer}``), when given, records each cell's
    phases as spans into that cell's causal tree -- capture, cache
    probe, the shared drive (one ``replay.run`` span per cell with
    capped per-chunk children), result writes.  ``on_window`` is called
    as ``on_window(task, window_dict)`` for every timeline window a
    cell's session closes while the drive runs.  Both default to
    ``None`` and add nothing to the chunk loop when absent.
    """
    # Deferred import: sweep imports this module for its batch path.
    from repro.trace.sweep import run_task

    keys = {task.key() for task in tasks}
    if len(keys) > 1:
        raise ValueError(
            f"batch group spans {len(keys)} trace keys {sorted(keys)}; "
            "group_by_trace() the tasks first"
        )
    outcomes: dict[int, BatchOutcome] = {}
    trace: Trace | None = None
    key = next(iter(keys)) if keys else None
    if traces is None:
        traces = {}

    def fail(position, task, exc) -> None:
        error = BatchCellError(
            task,
            f"batch cell {task.app}/{task.line_size}B/{task.variant} "
            f"(scale={task.scale}, seed={task.seed}) failed: "
            f"{type(exc).__name__}: {exc}",
        )
        error.__cause__ = exc
        if not collect_errors:
            raise error from exc
        outcomes[position] = BatchOutcome(
            task, None, "failed", SEQUENTIAL, error=error
        )

    def _tracer(task):
        return tracers.get(task) if tracers is not None else None

    def _window_cb(task):
        if on_window is None:
            return None
        return lambda window, _task=task: on_window(_task, window)

    #: (position, task, fingerprint, session, engine, tracer) per
    #: replay cell.
    pending: list[tuple] = []
    for position, task in enumerate(tasks):
        try:
            tracer = _tracer(task)
            config = task.config()
            if config.events_capacity > 0:
                # Direct re-capture; never touches the shared stream.
                result, how = run_task(
                    task, store, traces,
                    tracer=tracer, on_window=_window_cb(task),
                )
                outcomes[position] = BatchOutcome(
                    task, result, how, SEQUENTIAL
                )
                continue
            if trace is None:
                trace = traces.get(key)
            if trace is None and store is not None:
                trace = store.load_trace(key)
                if trace is not None:
                    traces[key] = trace
            if trace is None:
                # First cold cell captures for the whole group; its own
                # direct result answers this cell.
                result, how = run_task(
                    task, store, traces,
                    tracer=tracer, on_window=_window_cb(task),
                )
                trace = traces.get(key)
                outcomes[position] = BatchOutcome(
                    task, result, how, SEQUENTIAL
                )
                continue
            fingerprint = config_fingerprint(config)
            if store is not None:
                if tracer is None:
                    cached = store.load_result(trace.content_hash, fingerprint)
                else:
                    with tracer.span("store.result_probe"):
                        cached = store.load_result(
                            trace.content_hash, fingerprint
                        )
                if cached is not None:
                    outcomes[position] = BatchOutcome(
                        task, cached, "cached", SEQUENTIAL
                    )
                    continue
            session, engine = _session_for(
                trace, config, on_window=_window_cb(task)
            )
            pending.append(
                (position, task, fingerprint, session, engine, tracer)
            )
        except Exception as exc:
            fail(position, task, exc)

    if pending:
        if os.environ.get("REPRO_BATCH_MATERIALIZE"):
            # Benchmark control arm only: recreate the pre-v3 whole-trace
            # residency so the RSS delta of streaming is measurable.
            trace._bench_materialized = resolved_stream(trace)
        _drive_pending(trace, pending, outcomes, store, fail)
        if os.environ.get("REPRO_BATCH_MATERIALIZE"):
            trace._bench_materialized = None
    return [outcomes[position] for position in sorted(outcomes)]


def _drive_pending(trace, pending, outcomes, store, fail) -> None:
    """Stream the trace's chunks through every pending session."""
    live = list(pending)
    # Traced cells get one open `replay.run` span spanning the whole
    # drive, with capped per-chunk child records; untraced cells pay a
    # single `is None` check per (session, chunk).
    open_spans: dict[int, tuple] = {}
    chunk_tallies: dict[int, list] = {}
    for entry in live:
        position, tracer = entry[0], entry[5]
        if tracer is not None:
            open_spans[position] = (tracer, tracer.begin("replay.run"))
            chunk_tallies[position] = [0, 0, 0.0]  # chunks, entries, secs

    def feed(chunks) -> None:
        nonlocal live
        for index, chunk in enumerate(chunks):
            kept = []
            for entry in live:
                position, task, _fingerprint, session, _engine, tracer = entry
                try:
                    if tracer is None:
                        session.run_chunk(chunk)
                    else:
                        started = _time.perf_counter()
                        session.run_chunk(chunk)
                        seconds = _time.perf_counter() - started
                        tally = chunk_tallies[position]
                        tally[0] += 1
                        tally[1] += chunk.n
                        tally[2] += seconds
                        if tally[0] <= MAX_CHUNK_SPANS:
                            tracer.record(
                                f"replay.chunk[{index}]",
                                seconds,
                                metrics={"entries": chunk.n},
                            )
                except Exception as exc:
                    fail(position, task, exc)
                else:
                    kept.append(entry)
            live = kept
            if not live:
                return

    decode_failed = False
    try:
        try:
            try:
                feed(iter_resolved_chunks(trace))
            except SidecarError:
                # The sidecar went bad after chunks were already
                # consumed: drop it, rewind every surviving session, and
                # re-run the stream from the raw columns (which rewrites
                # the sidecar).
                path = getattr(trace, "_resolved_path", None)
                if path is not None:
                    with contextlib.suppress(OSError):
                        path.unlink()
                for entry in live:
                    entry[3].reset()
                feed(_decode_chunks(trace, path))
        except BatchCellError:
            raise
        except Exception as exc:
            # The shared decode itself failed; every session still
            # riding it loses its stream mid-flight and cannot produce
            # a result.
            for position, task, _fingerprint, _session, _engine, _t in live:
                fail(position, task, exc)
            decode_failed = True
    finally:
        # Close every traced cell's drive span -- also on the raising
        # paths, so a worker's partial trace still assembles into a
        # well-formed tree.
        for position, (tracer, record) in open_spans.items():
            tally = chunk_tallies[position]
            tracer.record(
                "replay.chunks",
                tally[2],
                metrics={"chunks": tally[0], "entries": tally[1]},
            )
            tracer.end(record)
    if decode_failed:
        return

    for position, task, fingerprint, session, engine, tracer in live:
        try:
            result = session.finish()
            if store is not None:
                if tracer is None:
                    store.save_result(trace.content_hash, fingerprint, result)
                else:
                    with tracer.span("store.result_write"):
                        store.save_result(
                            trace.content_hash, fingerprint, result
                        )
        except Exception as exc:
            fail(position, task, exc)
        else:
            outcomes[position] = BatchOutcome(task, result, "replayed", engine)
