"""Capture a machine's event stream while an application runs.

:class:`TraceRecorder` implements the :class:`~repro.core.machine.
MachineObserver` protocol and encodes each event straight into the
current chunk's column buffers as it arrives -- capture never
materialises an in-memory event list, and sealed chunks are compressed
immediately, so recording a full-scale run costs one open chunk of
bytearray plus the compressed corpus, not hundreds of megabytes of
tuples.

The encoding loops (zigzag + LEB128, see :mod:`repro.trace.format` for
the reference :class:`~repro.trace.format.ChunkWriter`) are inlined
into every callback: the recorder sits on the machine's per-reference
hot path, and at a few hundred thousand events per run the
function-call overhead of composable helpers is the difference between
a few percent and tens of percent of capture overhead.

The recorder also tracks the forwarding-membership word set as it
records (an ``unforwarded_write`` with the fbit set adds the word, with
it clear removes it; loads and stores probe it), so the finished trace
knows ``has_forwarded`` -- which speculation mode the specialized
kernels may use -- without anyone decoding the stream.

:func:`capture_trace` is the one-call front end: run an application
variant on a given config with a recorder attached, and get back both
the :class:`~repro.trace.format.Trace` and the direct-run
:class:`~repro.apps.base.AppResult` (capture *is* a direct run -- the
result is free).
"""

from __future__ import annotations

import hashlib

from repro.apps import get_application
from repro.apps.base import AppResult, Variant
from repro.core.machine import MachineConfig
from repro.trace.events import (
    CREATE_POOL,
    EXECUTE,
    FREE,
    LOAD,
    MALLOC,
    NOTE_OPT,
    NOTE_RELOC,
    POOL_ALLOC,
    PREFETCH,
    RAW_WRITE,
    READ_FBIT,
    SET_TRAP,
    STORE,
    UNF_READ,
    UNF_WRITE,
)
from repro.trace.format import (
    CHUNK_EVENTS,
    COLUMN_NAMES,
    Chunk,
    Trace,
    finish_stream_digest,
    make_chunk,
)


class TraceRecorder:
    """Streaming columnar encoder for the canonical machine event stream."""

    def __init__(self, chunk_events: int = CHUNK_EVENTS) -> None:
        if chunk_events < 1:
            raise ValueError("chunk_events must be >= 1")
        self.chunk_events = chunk_events
        self.event_count = 0
        self.pool_names: list[str] = []
        self.has_forwarded = False
        self._ops = bytearray()
        self._addr = bytearray()
        self._aux = bytearray()
        self._chunks: list[Chunk] = []
        self._pending = 0
        self._last_address = 0
        self._chunk_start = 0
        self._fwd: set[int] = set()
        self._col_shas = [hashlib.sha256() for _ in COLUMN_NAMES]

    # -- chunk sealing -------------------------------------------------
    def _seal(self) -> None:
        raws = (bytes(self._ops), bytes(self._addr), bytes(self._aux))
        for sha, raw in zip(self._col_shas, raws):
            sha.update(raw)
        self._chunks.append(make_chunk(raws, self._pending, self._chunk_start))
        self._ops.clear()
        self._addr.clear()
        self._aux.clear()
        self._pending = 0
        self._chunk_start = self._last_address

    def finish(self) -> tuple[tuple[Chunk, ...], str]:
        """Seal the open chunk; returns ``(chunks, stream_sha256)``."""
        if self._pending:
            self._seal()
        return (
            tuple(self._chunks),
            finish_stream_digest(self._col_shas, self.event_count),
        )

    # -- MachineObserver protocol --------------------------------------
    # Each callback appends the opcode to the ops column, the zigzag
    # address delta (against the running register) to the addr column,
    # and every other operand LEB128-encoded to the aux column, exactly
    # as format.ChunkWriter would -- the round-trip property tests pin
    # the two to each other.
    def on_load(self, address: int, size: int) -> None:
        self._ops.append(LOAD)
        out = self._addr
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        out = self._aux
        while size > 0x7F:
            out.append((size & 0x7F) | 0x80)
            size >>= 7
        out.append(size)
        if not self.has_forwarded and (address & ~7) in self._fwd:
            self.has_forwarded = True
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_store(self, address: int, value: int, size: int) -> None:
        self._ops.append(STORE)
        out = self._addr
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        out = self._aux
        v = value << 1 if value >= 0 else ((-value) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        while size > 0x7F:
            out.append((size & 0x7F) | 0x80)
            size >>= 7
        out.append(size)
        if not self.has_forwarded and (address & ~7) in self._fwd:
            self.has_forwarded = True
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_execute(self, instructions: int) -> None:
        self._ops.append(EXECUTE)
        out = self._aux
        while instructions > 0x7F:
            out.append((instructions & 0x7F) | 0x80)
            instructions >>= 7
        out.append(instructions)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_prefetch(self, address: int, lines: int) -> None:
        self._ops.append(PREFETCH)
        out = self._addr
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        out = self._aux
        while lines > 0x7F:
            out.append((lines & 0x7F) | 0x80)
            lines >>= 7
        out.append(lines)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_read_fbit(self, address: int) -> None:
        self._ops.append(READ_FBIT)
        out = self._addr
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_unforwarded_read(self, address: int) -> None:
        self._ops.append(UNF_READ)
        out = self._addr
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_unforwarded_write(self, address: int, value: int, fbit: int) -> None:
        self._ops.append(UNF_WRITE)
        out = self._addr
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        out = self._aux
        v = value << 1 if value >= 0 else ((-value) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        if fbit:
            self._fwd.add(address & ~7)
        else:
            self._fwd.discard(address & ~7)
        while fbit > 0x7F:
            out.append((fbit & 0x7F) | 0x80)
            fbit >>= 7
        out.append(fbit)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_malloc(self, nbytes: int, align: int, address: int) -> None:
        self._ops.append(MALLOC)
        out = self._aux
        while nbytes > 0x7F:
            out.append((nbytes & 0x7F) | 0x80)
            nbytes >>= 7
        out.append(nbytes)
        while align > 0x7F:
            out.append((align & 0x7F) | 0x80)
            align >>= 7
        out.append(align)
        out = self._addr
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_free(self, address: int) -> None:
        self._ops.append(FREE)
        out = self._addr
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_create_pool(self, index: int, size: int, name: str) -> None:
        if index != len(self.pool_names):
            raise ValueError(
                f"pool created out of order: index {index}, "
                f"have {len(self.pool_names)} names"
            )
        self.pool_names.append(name)
        self._ops.append(CREATE_POOL)
        out = self._aux
        while size > 0x7F:
            out.append((size & 0x7F) | 0x80)
            size >>= 7
        out.append(size)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_pool_alloc(
        self, index: int, nbytes: int, align: int, address: int
    ) -> None:
        self._ops.append(POOL_ALLOC)
        out = self._aux
        while index > 0x7F:
            out.append((index & 0x7F) | 0x80)
            index >>= 7
        out.append(index)
        while nbytes > 0x7F:
            out.append((nbytes & 0x7F) | 0x80)
            nbytes >>= 7
        out.append(nbytes)
        while align > 0x7F:
            out.append((align & 0x7F) | 0x80)
            align >>= 7
        out.append(align)
        out = self._addr
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_raw_write(self, address: int, value: int) -> None:
        self._ops.append(RAW_WRITE)
        out = self._addr
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        out = self._aux
        v = value << 1 if value >= 0 else ((-value) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_note_relocation(self, relocations: int, words: int) -> None:
        self._ops.append(NOTE_RELOC)
        out = self._aux
        while relocations > 0x7F:
            out.append((relocations & 0x7F) | 0x80)
            relocations >>= 7
        out.append(relocations)
        while words > 0x7F:
            out.append((words & 0x7F) | 0x80)
            words >>= 7
        out.append(words)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_note_optimizer(self) -> None:
        self._ops.append(NOTE_OPT)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()

    def on_set_trap(self, installed: bool) -> None:
        self._ops.append(SET_TRAP)
        self._aux.append(1 if installed else 0)
        self.event_count += 1
        self._pending += 1
        if self._pending >= self.chunk_events:
            self._seal()


def capture_trace(
    app: str,
    variant: Variant,
    config: MachineConfig,
    scale: float = 1.0,
    seed: int = 1,
    on_window=None,
) -> tuple[Trace, AppResult]:
    """Run ``app`` once with recording on; return ``(trace, result)``.

    The returned result is the ordinary direct-run outcome for
    ``config`` (recording is passive), so the capturing run doubles as
    the first cell of any sweep.  ``on_window`` streams timeline
    windows live when ``config`` samples them (see
    :meth:`repro.apps.base.Application.run`).
    """
    application = get_application(app, scale=scale, seed=seed)
    recorder = TraceRecorder()
    result = application.run(variant, config, observer=recorder, on_window=on_window)
    chunks, stream_sha = recorder.finish()
    trace = Trace(
        app=app,
        variant=variant.value,
        scale=scale,
        seed=seed,
        line_size=config.hierarchy.line_size,
        line_size_sensitive=application.stream_depends_on_line_size(variant),
        checksum=result.checksum,
        extras=dict(result.extras),
        captured_stats=result.stats.dump(),
        pool_names=recorder.pool_names,
        event_count=recorder.event_count,
        chunks=chunks,
        has_forwarded=recorder.has_forwarded,
        _stream_sha=stream_sha,
    )
    return trace, result
