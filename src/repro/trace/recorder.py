"""Capture a machine's event stream while an application runs.

:class:`TraceRecorder` implements the :class:`~repro.core.machine.
MachineObserver` protocol and encodes each event straight into the
binary payload as it arrives -- capture never materialises an in-memory
event list, so recording a full-scale run costs a few megabytes of
bytearray, not hundreds of megabytes of tuples.

The encoding loops (zigzag + LEB128, see :mod:`repro.trace.format` for
the reference implementations) are inlined into every callback: the
recorder sits on the machine's per-reference hot path, and at a few
hundred thousand events per run the function-call overhead of composable
helpers is the difference between a few percent and tens of percent of
capture overhead.

:func:`capture_trace` is the one-call front end: run an application
variant on a given config with a recorder attached, and get back both
the :class:`~repro.trace.format.Trace` and the direct-run
:class:`~repro.apps.base.AppResult` (capture *is* a direct run -- the
result is free).
"""

from __future__ import annotations

from repro.apps import get_application
from repro.apps.base import AppResult, Variant
from repro.core.machine import MachineConfig
from repro.trace.events import (
    CREATE_POOL,
    EXECUTE,
    FREE,
    LOAD,
    MALLOC,
    NOTE_OPT,
    NOTE_RELOC,
    POOL_ALLOC,
    PREFETCH,
    RAW_WRITE,
    READ_FBIT,
    SET_TRAP,
    STORE,
    UNF_READ,
    UNF_WRITE,
)
from repro.trace.format import Trace


class TraceRecorder:
    """Streaming encoder for the canonical machine event stream."""

    def __init__(self) -> None:
        self.payload = bytearray()
        self.event_count = 0
        self.pool_names: list[str] = []
        self._last_address = 0

    # -- MachineObserver protocol --------------------------------------
    # Each callback appends `opcode, operands...` with addresses
    # delta-encoded (zigzag) against the running register and all
    # operands LEB128-encoded, exactly as format.append_uvarint/zigzag
    # would -- the round-trip property tests pin the two to each other.
    def on_load(self, address: int, size: int) -> None:
        out = self.payload
        out.append(LOAD)
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        while size > 0x7F:
            out.append((size & 0x7F) | 0x80)
            size >>= 7
        out.append(size)
        self.event_count += 1

    def on_store(self, address: int, value: int, size: int) -> None:
        out = self.payload
        out.append(STORE)
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        v = value << 1 if value >= 0 else ((-value) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        while size > 0x7F:
            out.append((size & 0x7F) | 0x80)
            size >>= 7
        out.append(size)
        self.event_count += 1

    def on_execute(self, instructions: int) -> None:
        out = self.payload
        out.append(EXECUTE)
        while instructions > 0x7F:
            out.append((instructions & 0x7F) | 0x80)
            instructions >>= 7
        out.append(instructions)
        self.event_count += 1

    def on_prefetch(self, address: int, lines: int) -> None:
        out = self.payload
        out.append(PREFETCH)
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        while lines > 0x7F:
            out.append((lines & 0x7F) | 0x80)
            lines >>= 7
        out.append(lines)
        self.event_count += 1

    def on_read_fbit(self, address: int) -> None:
        out = self.payload
        out.append(READ_FBIT)
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1

    def on_unforwarded_read(self, address: int) -> None:
        out = self.payload
        out.append(UNF_READ)
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1

    def on_unforwarded_write(self, address: int, value: int, fbit: int) -> None:
        out = self.payload
        out.append(UNF_WRITE)
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        v = value << 1 if value >= 0 else ((-value) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        while fbit > 0x7F:
            out.append((fbit & 0x7F) | 0x80)
            fbit >>= 7
        out.append(fbit)
        self.event_count += 1

    def on_malloc(self, nbytes: int, align: int, address: int) -> None:
        out = self.payload
        out.append(MALLOC)
        while nbytes > 0x7F:
            out.append((nbytes & 0x7F) | 0x80)
            nbytes >>= 7
        out.append(nbytes)
        while align > 0x7F:
            out.append((align & 0x7F) | 0x80)
            align >>= 7
        out.append(align)
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1

    def on_free(self, address: int) -> None:
        out = self.payload
        out.append(FREE)
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1

    def on_create_pool(self, index: int, size: int, name: str) -> None:
        if index != len(self.pool_names):
            raise ValueError(
                f"pool created out of order: index {index}, "
                f"have {len(self.pool_names)} names"
            )
        self.pool_names.append(name)
        out = self.payload
        out.append(CREATE_POOL)
        while size > 0x7F:
            out.append((size & 0x7F) | 0x80)
            size >>= 7
        out.append(size)
        self.event_count += 1

    def on_pool_alloc(
        self, index: int, nbytes: int, align: int, address: int
    ) -> None:
        out = self.payload
        out.append(POOL_ALLOC)
        while index > 0x7F:
            out.append((index & 0x7F) | 0x80)
            index >>= 7
        out.append(index)
        while nbytes > 0x7F:
            out.append((nbytes & 0x7F) | 0x80)
            nbytes >>= 7
        out.append(nbytes)
        while align > 0x7F:
            out.append((align & 0x7F) | 0x80)
            align >>= 7
        out.append(align)
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1

    def on_raw_write(self, address: int, value: int) -> None:
        out = self.payload
        out.append(RAW_WRITE)
        v = address - self._last_address
        self._last_address = address
        v = v << 1 if v >= 0 else ((-v) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        v = value << 1 if value >= 0 else ((-value) << 1) - 1
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        self.event_count += 1

    def on_note_relocation(self, relocations: int, words: int) -> None:
        out = self.payload
        out.append(NOTE_RELOC)
        while relocations > 0x7F:
            out.append((relocations & 0x7F) | 0x80)
            relocations >>= 7
        out.append(relocations)
        while words > 0x7F:
            out.append((words & 0x7F) | 0x80)
            words >>= 7
        out.append(words)
        self.event_count += 1

    def on_note_optimizer(self) -> None:
        self.payload.append(NOTE_OPT)
        self.event_count += 1

    def on_set_trap(self, installed: bool) -> None:
        out = self.payload
        out.append(SET_TRAP)
        out.append(1 if installed else 0)
        self.event_count += 1


def capture_trace(
    app: str,
    variant: Variant,
    config: MachineConfig,
    scale: float = 1.0,
    seed: int = 1,
) -> tuple[Trace, AppResult]:
    """Run ``app`` once with recording on; return ``(trace, result)``.

    The returned result is the ordinary direct-run outcome for
    ``config`` (recording is passive), so the capturing run doubles as
    the first cell of any sweep.
    """
    application = get_application(app, scale=scale, seed=seed)
    recorder = TraceRecorder()
    result = application.run(variant, config, observer=recorder)
    trace = Trace(
        app=app,
        variant=variant.value,
        scale=scale,
        seed=seed,
        line_size=config.hierarchy.line_size,
        line_size_sensitive=application.stream_depends_on_line_size(variant),
        checksum=result.checksum,
        extras=dict(result.extras),
        captured_stats=result.stats.dump(),
        pool_names=recorder.pool_names,
        event_count=recorder.event_count,
        payload=bytes(recorder.payload),
    )
    return trace, result
