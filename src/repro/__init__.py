"""Memory Forwarding — reproduction of Luk & Mowry, ISCA 1999.

A simulation library for *memory forwarding*: a tagged-memory mechanism
that makes run-time data relocation always safe, enabling aggressive
cache-layout optimizations (list linearization, record packing, subtree
clustering, table merging) for pointer-heavy programs.

Quickstart::

    from repro import Machine, list_linearize

    m = Machine()
    # ... build a linked list on the simulated heap ...
    pool = m.create_pool(1 << 20)
    new_head, n = list_linearize(m, head_handle, next_offset=8,
                                 node_bytes=32, pool=pool)
    # stale pointers to old nodes still work -- they are forwarded.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results of every table and figure.
"""

from repro.cache.hierarchy import (
    AccessKind,
    AccessResult,
    HierarchyConfig,
    MemoryHierarchy,
)
from repro.core.errors import (
    AlignmentError,
    AllocationError,
    DoubleFreeError,
    ForwardingCycleError,
    HopLimitExceeded,
    MemoryAccessError,
    SimulationError,
)
from repro.core.forwarding import ForwardingEngine, ForwardingStats
from repro.core.isa import ISAExtensions
from repro.core.machine import (
    NULL,
    ForwardingEvent,
    Machine,
    MachineConfig,
)
from repro.core.memory import TaggedMemory, WORD_SIZE
from repro.core.pointer_ops import final_address, ptr_eq, ptr_ne
from repro.core.relocate import list_linearize, relocate
from repro.core.stats import MachineStats
from repro.core.traps import (
    ChainedTrapHandler,
    ForwardingProfiler,
    PointerFixupTrap,
)
from repro.cpu.timing import TimingConfig
from repro.mem.pool import RelocationPool

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "AccessResult",
    "AlignmentError",
    "AllocationError",
    "ChainedTrapHandler",
    "DoubleFreeError",
    "ForwardingCycleError",
    "ForwardingEngine",
    "ForwardingEvent",
    "ForwardingProfiler",
    "ForwardingStats",
    "HierarchyConfig",
    "HopLimitExceeded",
    "ISAExtensions",
    "Machine",
    "MachineConfig",
    "MachineStats",
    "MemoryAccessError",
    "MemoryHierarchy",
    "NULL",
    "PointerFixupTrap",
    "RelocationPool",
    "SimulationError",
    "TaggedMemory",
    "TimingConfig",
    "WORD_SIZE",
    "final_address",
    "list_linearize",
    "ptr_eq",
    "ptr_ne",
    "relocate",
]
