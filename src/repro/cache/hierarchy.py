"""Two-level cache hierarchy with miss combining and bandwidth accounting.

This is the memory-system model behind every experiment in the paper:

* **Figure 5** needs the execution-time effect of line size on locality,
  which comes from the hit/miss behaviour modeled here.
* **Figure 6(a)** needs load misses split into *full* and *partial*
  (miss-combining) classes -- provided by the MSHR file.
* **Figure 6(b)** needs the bytes moved between the primary and secondary
  caches and between the secondary cache and main memory.

The hierarchy is inclusive, write-back, write-allocate, with a unified L2.
Experiments sweep the L1 line size while the (longer) L2 line stays
fixed, as on the R10000-class machines of the paper's era.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.cache.cache import Cache
from repro.cache.misspath import build_misspath
from repro.cache.mshr import MSHRFile


class AccessKind(Enum):
    """Where a data reference was ultimately served from."""

    L1_HIT = "l1_hit"
    L2_HIT = "l2_hit"
    MEMORY = "memory"
    #: Combined with an outstanding miss to the same line (partial miss).
    PARTIAL = "partial"
    #: Served by a miss-path stage (victim/miss cache or stream buffer).
    #: Still a *miss* for classification purposes -- the L1 itself did
    #: not have the line -- but it never reaches the L2.
    MISS_PATH = "misspath"


@dataclass(slots=True)
class AccessResult:
    """Outcome of one reference: classification plus absolute ready time."""

    kind: AccessKind
    ready: float

    @property
    def is_miss(self) -> bool:
        return self.kind is not AccessKind.L1_HIT


@dataclass
class HierarchyConfig:
    """Geometry and latency parameters of the modeled memory system.

    Defaults are the scaled configuration documented in DESIGN.md Section 5:
    a 4 KB 2-way L1 D-cache and a 16 KB 4-way unified L2, scaled down from
    the paper's machine in proportion to our reduced working sets so the
    applications run in the same miss regime (working sets comfortably
    exceed L2, as the paper's inputs exceeded its off-chip cache).
    """

    line_size: int = 32
    l1_size: int = 4 * 1024
    l1_assoc: int = 2
    l2_size: int = 16 * 1024
    l2_assoc: int = 4
    #: L2 line size; stays fixed while experiments sweep the L1 line size
    #: (as in an R10000-class machine: 32 B L1 lines, 128 B L2 lines).
    #: Never smaller than the L1 line.
    l2_line_size: int = 128
    l1_hit_latency: float = 1.0
    l2_hit_latency: float = 12.0
    memory_latency: float = 70.0
    #: Transfer bandwidth of the L1<->L2 interface: longer lines take
    #: longer to move, which is why long lines *hurt* when spatial
    #: locality is absent (the Figure 5 "N degrades with line size" shape).
    l1_bus_bytes_per_cycle: float = 16.0
    #: Transfer bandwidth of the L2<->memory interface.
    mem_bus_bytes_per_cycle: float = 8.0
    mshr_capacity: int = 8
    policy: str = "lru"
    #: L1 miss-path mechanism (:data:`repro.cache.misspath.MECHANISMS`).
    #: ``"none"`` keeps the exact baseline hierarchy -- no stage objects
    #: exist and the fused fast-path kernels stay eligible.
    mechanism: str = "none"
    #: Victim-cache entries (``victim_cache``/``combined``).
    vc_entries: int = 8
    #: Miss-cache entries (``miss_cache``).
    mc_entries: int = 8
    #: Stream-buffer count and per-buffer depth (``stream_buffers``/
    #: ``combined``).
    sb_count: int = 4
    sb_depth: int = 4
    #: Extra cycles (beyond the L1 hit latency) to serve a miss from a
    #: miss-path stage -- the local swap/refill cost, far below any L2
    #: round trip.
    misspath_hit_latency: float = 2.0

    @property
    def l2_fill_latency(self) -> float:
        """Latency of an L1 miss served by the L2 (incl. line transfer)."""
        return self.l2_hit_latency + self.line_size / self.l1_bus_bytes_per_cycle

    @property
    def full_miss_latency(self) -> float:
        """Latency of a miss that goes all the way to memory."""
        l2_line = max(self.l2_line_size, self.line_size)
        return (
            self.l2_fill_latency
            + self.memory_latency
            + l2_line / self.mem_bus_bytes_per_cycle
        )


@dataclass(slots=True)
class TrafficStats:
    """Bytes moved across the two off-core interfaces (Figure 6(b))."""

    l1_l2_fill_bytes: int = 0
    l1_l2_writeback_bytes: int = 0
    l2_mem_fill_bytes: int = 0
    l2_mem_writeback_bytes: int = 0

    @property
    def l1_l2_bytes(self) -> int:
        return self.l1_l2_fill_bytes + self.l1_l2_writeback_bytes

    @property
    def l2_mem_bytes(self) -> int:
        return self.l2_mem_fill_bytes + self.l2_mem_writeback_bytes

    @property
    def total_bytes(self) -> int:
        return self.l1_l2_bytes + self.l2_mem_bytes


@dataclass(slots=True)
class MissClassStats:
    """Full/partial miss counts split by loads and stores (Figure 6(a))."""

    load_full: int = 0
    load_partial: int = 0
    store_full: int = 0
    store_partial: int = 0

    @property
    def load_misses(self) -> int:
        return self.load_full + self.load_partial

    @property
    def store_misses(self) -> int:
        return self.store_full + self.store_partial


class MemoryHierarchy:
    """L1 D-cache + unified L2 + main memory, with MSHR-based combining."""

    __slots__ = (
        "config",
        "l1",
        "l2",
        "mshr",
        "traffic",
        "miss_classes",
        "prefetch_fills",
        "prefetch_redundant",
        "events",
        "misspath",
        "_l2_line_size",
        "_line_size",
        "_line_shift",
    )

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        cfg = self.config
        l2_line = max(cfg.l2_line_size, cfg.line_size)
        self.l1 = Cache(cfg.l1_size, cfg.line_size, cfg.l1_assoc, cfg.policy, "L1D")
        self.l2 = Cache(cfg.l2_size, l2_line, cfg.l2_assoc, cfg.policy, "L2")
        self.mshr = MSHRFile(cfg.mshr_capacity)
        self._l2_line_size = l2_line
        self.traffic = TrafficStats()
        self.miss_classes = MissClassStats()
        self.prefetch_fills = 0
        self.prefetch_redundant = 0
        #: Optional :class:`repro.obs.events.EventLog`; when set, L2
        #: inclusion victims emit ``cache.l2_victim`` events carrying the
        #: number of L1 lines invalidated.
        self.events = None
        #: Optional :class:`repro.cache.misspath.MissPath`; ``None`` with
        #: the default config, which is what keeps the baseline zero-cost.
        self.misspath = build_misspath(cfg)
        self._line_size = cfg.line_size
        self._line_shift = self.l1.line_shift

    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        """Line-align a byte address."""
        return (address >> self._line_shift) << self._line_shift

    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool, now: float) -> AccessResult:
        """Perform one demand reference at time ``now``.

        Accesses never span lines: the machine enforces natural alignment
        and the minimum line size (32 B) exceeds the maximum access size
        (one 8-byte word).
        """
        line = self.line_address(address)
        # An outstanding fill to the same line makes this a partial miss:
        # it combines with the fill and waits only the residual latency.
        ready = self.mshr.lookup(line, now)
        if ready is not None:
            self.mshr.combine(line, now)
            self.l1.lookup(address, is_write)  # recency/dirty update
            if is_write:
                self.miss_classes.store_partial += 1
            else:
                self.miss_classes.load_partial += 1
            return AccessResult(AccessKind.PARTIAL, ready)

        if self.l1.lookup(address, is_write):
            return AccessResult(AccessKind.L1_HIT, now + self.config.l1_hit_latency)

        if is_write:
            self.miss_classes.store_full += 1
        else:
            self.miss_classes.load_full += 1

        misspath = self.misspath
        if misspath is not None:
            dirty = misspath.probe(line)
            if dirty is not None:
                # Served beside L1: swap/refill the line in, route the
                # displaced L1 victim back through the stage pipeline,
                # and never touch the L2, the MSHRs, or the bus traffic.
                evicted_l1 = self.l1.fill(line, dirty=bool(dirty) or is_write)
                if evicted_l1 is not None:
                    self._route_victim(evicted_l1)
                cfg = self.config
                return AccessResult(
                    AccessKind.MISS_PATH,
                    now + cfg.l1_hit_latency + cfg.misspath_hit_latency,
                )

        kind, latency = self._fill_from_below(line, is_write)
        ready = self.mshr.allocate(line, now, latency)
        return AccessResult(kind, ready)

    def prefetch(self, address: int, now: float) -> bool:
        """Start a non-binding fill of the line holding ``address``.

        Returns True if a fill was actually started (i.e. the line was not
        already resident or in flight).  Prefetches never stall the core;
        they only consume MSHRs and bandwidth.
        """
        line = self.line_address(address)
        if self.mshr.lookup(line, now) is not None or self.l1.contains(line):
            self.prefetch_redundant += 1
            return False
        if self.misspath is not None:
            # A stage copy would go stale (and a victim-cache copy would
            # duplicate L1) once the prefetch lands; drop it first.
            self.misspath.invalidate(line)
        _, latency = self._fill_from_below(line, is_write=False)
        self.mshr.allocate(line, now, latency)
        self.prefetch_fills += 1
        return True

    # ------------------------------------------------------------------
    def _fill_from_below(self, line: int, is_write: bool) -> tuple[AccessKind, float]:
        """Bring ``line`` into L1 (and L2 if needed); returns (kind, latency)."""
        cfg = self.config
        if self.l2.lookup(line, False):
            kind = AccessKind.L2_HIT
            latency = cfg.l2_fill_latency
        else:
            kind = AccessKind.MEMORY
            latency = cfg.full_miss_latency
            self.traffic.l2_mem_fill_bytes += self._l2_line_size
            evicted_l2 = self.l2.fill(line)
            if evicted_l2 is not None:
                # Inclusion: dropping an L2 line drops every L1 line it
                # contains (the L2 line may span several L1 lines), and
                # every copy a miss-path stage holds beside L1.
                if self.misspath is not None:
                    for offset in range(0, self._l2_line_size, self._line_size):
                        self.misspath.invalidate(evicted_l2.line_address + offset)
                events = self.events
                if events is None:
                    for offset in range(0, self._l2_line_size, self._line_size):
                        self.l1.invalidate(evicted_l2.line_address + offset)
                else:
                    invalidated = 0
                    for offset in range(0, self._l2_line_size, self._line_size):
                        if self.l1.invalidate(evicted_l2.line_address + offset):
                            invalidated += 1
                    events.emit(
                        "cache.l2_victim",
                        line=evicted_l2.line_address,
                        dirty=bool(evicted_l2.dirty),
                        l1_invalidated=invalidated,
                    )
                if evicted_l2.dirty:
                    self.traffic.l2_mem_writeback_bytes += self._l2_line_size
        self.traffic.l1_l2_fill_bytes += self._line_size
        evicted_l1 = self.l1.fill(line, dirty=is_write)
        misspath = self.misspath
        if misspath is not None:
            if evicted_l1 is not None:
                self._route_victim(evicted_l1)
            # Miss cache copies / stream-buffer reallocation follow every
            # fill from below (demand and prefetch alike).
            misspath.on_demand_fill(line)
        elif evicted_l1 is not None and evicted_l1.dirty:
            self.traffic.l1_l2_writeback_bytes += self._line_size
            # The write-back lands in L2 and dirties it there.
            self.l2.fill(evicted_l1.line_address, dirty=True)
        return kind, latency

    def _route_victim(self, evicted_l1) -> None:
        """Send one L1 victim through the miss path; spill lands in L2.

        Without a victim cache the stage pipeline passes the victim
        straight through, so the spill handling below reproduces the
        baseline write-back path exactly (clean victims vanish, dirty
        victims cost one L1<->L2 writeback and dirty their L2 line).
        """
        spilled = self.misspath.accept_victim(
            evicted_l1.line_address, evicted_l1.dirty
        )
        if spilled is not None and spilled[1]:
            self.traffic.l1_l2_writeback_bytes += self._line_size
            self.l2.fill(spilled[0], dirty=True)

    # ------------------------------------------------------------------
    def register_metrics(
        self, registry, prefix: str = "cache", bw_prefix: str = "bw"
    ) -> None:
        """Register every memory-system counter with an ``repro.obs`` registry.

        Getters go through ``self`` rather than the current stat structs
        because :meth:`reset_stats` replaces ``traffic``/``miss_classes``
        wholesale; a bound metric must survive that.
        """
        self.l1.register_metrics(registry, f"{prefix}.l1")
        self.l2.register_metrics(registry, f"{prefix}.l2")
        self.mshr.register_metrics(registry, f"{prefix}.mshr")
        registry.bind(
            f"{prefix}.l1.miss.load_full", lambda: self.miss_classes.load_full
        )
        registry.bind(
            f"{prefix}.l1.miss.load_partial",
            lambda: self.miss_classes.load_partial,
        )
        registry.bind(
            f"{prefix}.l1.miss.store_full", lambda: self.miss_classes.store_full
        )
        registry.bind(
            f"{prefix}.l1.miss.store_partial",
            lambda: self.miss_classes.store_partial,
        )
        registry.bind(f"{prefix}.l2.miss.total", lambda: self.l2.stats.misses)
        if self.misspath is not None:
            self.misspath.register_metrics(registry, f"{prefix}.misspath")
        registry.bind(f"{prefix}.prefetch.fills", lambda: self.prefetch_fills)
        registry.bind(
            f"{prefix}.prefetch.redundant", lambda: self.prefetch_redundant
        )
        registry.bind(
            f"{bw_prefix}.l1_l2.fill_bytes",
            lambda: self.traffic.l1_l2_fill_bytes,
        )
        registry.bind(
            f"{bw_prefix}.l1_l2.writeback_bytes",
            lambda: self.traffic.l1_l2_writeback_bytes,
        )
        registry.bind(
            f"{bw_prefix}.l1_l2.bytes", lambda: self.traffic.l1_l2_bytes
        )
        registry.bind(
            f"{bw_prefix}.l2_mem.fill_bytes",
            lambda: self.traffic.l2_mem_fill_bytes,
        )
        registry.bind(
            f"{bw_prefix}.l2_mem.writeback_bytes",
            lambda: self.traffic.l2_mem_writeback_bytes,
        )
        registry.bind(
            f"{bw_prefix}.l2_mem.bytes", lambda: self.traffic.l2_mem_bytes
        )

    def load_miss_count(self) -> int:
        """Total load D-cache misses (full + partial), as in Figure 6(a)."""
        return self.miss_classes.load_misses

    def reset_stats(self) -> None:
        """Zero all counters while keeping cache contents intact."""
        self.traffic = TrafficStats()
        self.miss_classes = MissClassStats()
        self.prefetch_fills = 0
        self.prefetch_redundant = 0
        self.l1.stats.__init__()
        self.l2.stats.__init__()
        self.mshr.stats.__init__()
        if self.misspath is not None:
            self.misspath.stats.__init__()
