"""Miss Status Holding Registers: outstanding-miss tracking.

The MSHR file is what lets the model distinguish the paper's two miss
classes (Figure 6(a)):

* a **full miss** starts a new line fill and suffers the full latency;
* a **partial miss** combines with an outstanding fill of the same line
  and only waits for the residual time.

It also bounds memory-level parallelism: when every register is busy a new
miss must wait for the earliest completion, which is how bursty pointer
chasing ends up serialised while linearized data streams smoothly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class MSHRStats:
    """Counters for miss combining and structural stalls."""

    allocations: int = 0
    combines: int = 0
    full_stalls: int = 0
    full_stall_cycles: float = 0.0

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose these counters through an ``repro.obs`` registry."""
        registry.bind(f"{prefix}.allocations", lambda: self.allocations)
        registry.bind(f"{prefix}.combines", lambda: self.combines)
        registry.bind(f"{prefix}.full_stalls", lambda: self.full_stalls)
        registry.bind(
            f"{prefix}.full_stall_cycles", lambda: self.full_stall_cycles
        )


class MSHRFile:
    """Tracks in-flight line fills as ``line_address -> completion_time``.

    The file is intentionally small (8 entries by default, matching a
    late-90s out-of-order core) so the capacity effects the paper relies
    on -- prefetches and demand misses competing for fill slots -- appear
    in the model.
    """

    __slots__ = ("capacity", "_inflight", "_floor", "stats")

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"MSHR capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._inflight: dict[int, float] = {}
        # Sound lower bound on min(_inflight.values()): entries only leave
        # the file (raising the true minimum), so the floor stays valid
        # until an expiry sweep recomputes it exactly.  Lets _expire skip
        # its scan when no fill can have completed yet.
        self._floor = float("inf")
        self.stats = MSHRStats()

    def _expire(self, now: float) -> None:
        inflight = self._inflight
        if inflight and self._floor <= now:
            done = [line for line, ready in inflight.items() if ready <= now]
            for line in done:
                del inflight[line]
            self._floor = min(inflight.values()) if inflight else float("inf")

    def lookup(self, line_address: int, now: float) -> float | None:
        """Return the completion time if ``line_address`` is in flight."""
        ready = self._inflight.get(line_address)
        if ready is not None and ready > now:
            return ready
        if ready is not None:
            del self._inflight[line_address]
        return None

    def combine(self, line_address: int, now: float) -> float:
        """Attach to an outstanding fill (partial miss); returns ready time."""
        self.stats.combines += 1
        return self._inflight[line_address]

    def allocate(self, line_address: int, now: float, latency: float) -> float:
        """Start a new fill; returns its completion time.

        If the file is full the fill cannot begin until a register frees
        up, which delays completion and is recorded as a structural stall.
        """
        self._expire(now)
        start = now
        if len(self._inflight) >= self.capacity:
            earliest = min(self._inflight.values())
            self.stats.full_stalls += 1
            self.stats.full_stall_cycles += earliest - now
            start = earliest
            # Free the register that completes at `earliest`.
            for line, ready in list(self._inflight.items()):
                if ready == earliest:
                    del self._inflight[line]
                    break
        ready = start + latency
        self._inflight[line_address] = ready
        if ready < self._floor:
            self._floor = ready
        self.stats.allocations += 1
        return ready

    def register_metrics(self, registry, prefix: str) -> None:
        """Register this file's counters under ``prefix`` (e.g. ``cache.mshr``)."""
        self.stats.register_metrics(registry, prefix)

    def occupancy(self, now: float) -> int:
        """Number of fills still in flight at time ``now``."""
        self._expire(now)
        return len(self._inflight)

    def occupancy_at(self, now: float) -> int:
        """Non-mutating occupancy probe: fills still in flight at ``now``.

        Unlike :meth:`occupancy` this never expires entries, so the
        timeline sampler can observe the file at a window boundary
        without perturbing the lazily-expired state the reference
        kernels depend on for bit-exactness.
        """
        return sum(1 for ready in self._inflight.values() if ready > now)

    def reset(self) -> None:
        self._inflight.clear()
        self._floor = float("inf")
