"""Composable L1 miss-path mechanisms: victim cache, miss cache, stream buffers.

The paper's layout optimizations deliberately reshuffle memory, which
shifts the *conflict-miss* profile of the primary cache -- but the plain
two-level hierarchy can only answer "how many misses", not "which
mechanism would have absorbed them".  This module adds the classic
Jouppi (ISCA 1990) miss-path structures as pluggable stages that sit
between an L1 miss and the L2 probe:

* **Victim cache** -- a small fully-associative LRU buffer holding the
  last few lines *evicted* from L1.  A miss that hits the victim cache
  swaps the line back into L1 (the L1 victim takes its place), turning a
  conflict miss into a short swap instead of an L2 round trip.
* **Miss cache** -- a small fully-associative LRU buffer into which
  every demand fill is *also* inserted.  A miss that hits the miss
  cache refills L1 from it without consuming the entry.  (Jouppi's
  weaker precursor of the victim cache; kept for the comparison.)
* **Stream buffers** -- several independent FIFOs of sequentially
  prefetched lines.  A miss probes each buffer's *head*; a hit pops the
  head into L1 and extends the tail by the next sequential line.  A miss
  that misses every buffer reallocates the least-recently-used buffer to
  start prefetching at ``line + 1``.
* **combined** -- victim cache + stream buffers, the configuration
  Jouppi found complementary (conflict misses and capacity/compulsory
  streaming misses are disjoint populations).

Stage state is deliberately modeled *beside* the hierarchy: a miss-path
hit never touches the L2 tag array, and stream-buffer prefetch traffic
is reported under the stage's own counters rather than the demand
``TrafficStats`` (``bw.*`` remains the paper's Figure 6(b) demand
traffic, bit-identical with every mechanism disabled).

Every counter is exposed twice, consistently: bound live through
:meth:`MissPath.register_metrics` (the ``repro.obs`` registry path) and
snapshotted into ``MachineStats.misspath`` (the capture/replay and
result-cache path) under the same ``cache.misspath.*`` dotted names.

The timing contract is a single parameter: a miss served by any stage
is ready after ``l1_hit_latency + misspath_hit_latency`` cycles and
allocates no MSHR (the transfer is a local swap, not an outstanding
fill).  Inclusion is preserved: when an L2 eviction invalidates L1
lines, the same lines are dropped from every stage.
"""

from __future__ import annotations

from collections import deque

#: Recognised mechanism names (``none`` disables the miss path entirely).
MECHANISMS = ("none", "victim_cache", "miss_cache", "stream_buffers", "combined")

#: Which mechanisms give each sizing knob meaning; used by the CLI and
#: the serve protocol to reject knobs that would silently do nothing.
KNOB_MECHANISMS = {
    "vc_entries": ("victim_cache", "combined"),
    "mc_entries": ("miss_cache",),
    "sb_count": ("stream_buffers", "combined"),
    "sb_depth": ("stream_buffers", "combined"),
}

#: (metric key, stats attribute) pairs, in reporting order.  The dotted
#: keys live under ``cache.misspath.`` in metric trees; top-level keys
#: are leaves and ``vc``/``mc``/``sb`` are interior nodes, so the
#: registry's leaf/interior invariant holds.
_COUNTERS = (
    ("probes", "probes"),
    ("hits", "hits"),
    ("flushes", "flushes"),
    ("inclusion_drops", "inclusion_drops"),
    ("vc.hits", "vc_hits"),
    ("vc.captures", "vc_captures"),
    ("vc.writebacks", "vc_writebacks"),
    ("mc.hits", "mc_hits"),
    ("mc.inserts", "mc_inserts"),
    ("sb.hits", "sb_hits"),
    ("sb.allocations", "sb_allocations"),
    ("sb.prefetches", "sb_prefetches"),
)


class MissPathStats:
    """Flat counters of one :class:`MissPath` instance.

    A plain-slots class (like :class:`~repro.cache.cache.CacheStats`)
    so ``stats.__init__()`` resets it in place without invalidating
    bound registry getters.
    """

    __slots__ = tuple(attr for _, attr in _COUNTERS)

    def __init__(self) -> None:
        for attr in self.__slots__:
            setattr(self, attr, 0)


class VictimCache:
    """Fully-associative LRU buffer of L1 victims (line address + dirty).

    Entries are ``(line_address, dirty)`` with the MRU entry first.
    ``probe`` is *consuming*: a hit removes the entry, because the line
    moves into L1 (the caller routes the displaced L1 victim back in via
    ``insert`` -- the classic swap).
    """

    __slots__ = ("entries", "_lines")

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError(f"victim cache needs >= 1 entry, got {entries}")
        self.entries = entries
        self._lines: list[tuple[int, int]] = []

    def probe(self, line: int) -> int | None:
        """Remove and return the dirty flag of ``line``; None on miss."""
        lines = self._lines
        for index, (tag, dirty) in enumerate(lines):
            if tag == line:
                del lines[index]
                return dirty
        return None

    def insert(self, line: int, dirty: int) -> tuple[int, int] | None:
        """Capture an L1 victim; returns the spilled LRU entry, if any."""
        lines = self._lines
        lines.insert(0, (line, 1 if dirty else 0))
        if len(lines) > self.entries:
            return lines.pop()
        return None

    def invalidate(self, line: int) -> bool:
        lines = self._lines
        for index, (tag, _dirty) in enumerate(lines):
            if tag == line:
                del lines[index]
                return True
        return False

    def flush(self) -> int:
        dropped = len(self._lines)
        self._lines.clear()
        return dropped

    def resident_lines(self) -> list[int]:
        """Line addresses currently held, MRU first (tests/diagnostics)."""
        return [tag for tag, _dirty in self._lines]


class MissCache:
    """Fully-associative LRU buffer of recently *missed* lines.

    Unlike the victim cache it duplicates lines that are simultaneously
    resident in L1 (every demand fill is inserted), and a probe hit is
    non-consuming: the entry stays, only its recency is refreshed.  Held
    copies are clean by construction -- L1 owns the dirty data.
    """

    __slots__ = ("entries", "_lines")

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError(f"miss cache needs >= 1 entry, got {entries}")
        self.entries = entries
        self._lines: list[int] = []

    def probe(self, line: int) -> int | None:
        lines = self._lines
        for index, tag in enumerate(lines):
            if tag == line:
                if index:
                    del lines[index]
                    lines.insert(0, line)
                return 0  # miss-cache copies are always clean
        return None

    def insert(self, line: int) -> None:
        lines = self._lines
        for index, tag in enumerate(lines):
            if tag == line:
                if index:
                    del lines[index]
                    lines.insert(0, line)
                return
        lines.insert(0, line)
        if len(lines) > self.entries:
            lines.pop()

    def invalidate(self, line: int) -> bool:
        try:
            self._lines.remove(line)
        except ValueError:
            return False
        return True

    def flush(self) -> int:
        dropped = len(self._lines)
        self._lines.clear()
        return dropped

    def resident_lines(self) -> list[int]:
        return list(self._lines)


class StreamBuffers:
    """``count`` independent FIFOs of sequentially prefetched lines.

    Each buffer is a deque of line addresses, head first.  Probing
    checks heads only (Jouppi's design: the comparator sits on the head
    slot); a hit pops the head and extends the tail with the next
    sequential line.  A demand miss that misses every head reallocates
    the LRU buffer starting at the line after the miss.
    """

    __slots__ = ("count", "depth", "line_size", "_buffers")

    def __init__(self, count: int, depth: int, line_size: int) -> None:
        if count < 1 or depth < 1:
            raise ValueError(
                f"stream buffers need count >= 1 and depth >= 1, "
                f"got count={count} depth={depth}"
            )
        self.count = count
        self.depth = depth
        self.line_size = line_size
        # MRU-first list of deques; ties (fresh empties) age naturally.
        self._buffers: list[deque[int]] = [deque() for _ in range(count)]

    def probe(self, line: int) -> tuple[bool, int]:
        """Head-probe every buffer; returns ``(hit, prefetches_issued)``."""
        buffers = self._buffers
        for index, buffer in enumerate(buffers):
            if buffer and buffer[0] == line:
                buffer.popleft()
                issued = 0
                if buffer:
                    buffer.append(buffer[-1] + self.line_size)
                    issued = 1
                else:
                    # The buffer ran dry on this hit; restart it at the
                    # next sequential line so the stream keeps flowing.
                    buffer.append(line + self.line_size)
                    issued = 1
                if index:
                    del buffers[index]
                    buffers.insert(0, buffer)
                return True, issued
        return False, 0

    def allocate(self, line: int) -> int:
        """Repurpose the LRU buffer to stream from ``line + 1`` onward.

        Returns the number of prefetched lines now in flight (== depth).
        """
        buffer = self._buffers.pop()
        buffer.clear()
        step = self.line_size
        first = line + step
        buffer.extend(first + i * step for i in range(self.depth))
        self._buffers.insert(0, buffer)
        return self.depth

    def invalidate(self, line: int) -> bool:
        """Drop any buffer holding ``line`` (speculative state is cheap)."""
        for buffer in self._buffers:
            if line in buffer:
                buffer.clear()
                return True
        return False

    def flush(self) -> int:
        dropped = sum(len(buffer) for buffer in self._buffers)
        for buffer in self._buffers:
            buffer.clear()
        return dropped

    def resident_lines(self) -> list[int]:
        return [line for buffer in self._buffers for line in buffer]


class MissPath:
    """The configured stage pipeline on one hierarchy's L1 miss path.

    The facade the hierarchy talks to; stage order on a probe is victim
    cache, then miss cache, then stream buffers (only ``combined``
    composes more than one stage).  See the module docstring for the
    stage protocol; DESIGN.md §5f documents the integration contract.
    """

    __slots__ = ("mechanism", "victim", "miss", "streams", "stats")

    def __init__(self, config) -> None:
        mechanism = config.mechanism
        if mechanism not in MECHANISMS:
            raise ValueError(
                f"unknown miss-path mechanism {mechanism!r}; "
                f"choose from {list(MECHANISMS)}"
            )
        self.mechanism = mechanism
        self.victim = (
            VictimCache(config.vc_entries)
            if mechanism in ("victim_cache", "combined")
            else None
        )
        self.miss = (
            MissCache(config.mc_entries) if mechanism == "miss_cache" else None
        )
        self.streams = (
            StreamBuffers(config.sb_count, config.sb_depth, config.line_size)
            if mechanism in ("stream_buffers", "combined")
            else None
        )
        self.stats = MissPathStats()

    # -- hierarchy-facing protocol --------------------------------------
    def probe(self, line: int) -> int | None:
        """Probe the stages for ``line`` on an L1 full miss.

        Returns the line's dirty flag (0/1) when a stage can supply it
        (the stage updates its own state: the victim cache consumes the
        entry, the miss cache refreshes recency, a stream buffer pops
        its head and extends), or ``None`` when every stage misses.
        """
        stats = self.stats
        stats.probes += 1
        victim = self.victim
        if victim is not None:
            dirty = victim.probe(line)
            if dirty is not None:
                stats.hits += 1
                stats.vc_hits += 1
                return dirty
        miss = self.miss
        if miss is not None:
            found = miss.probe(line)
            if found is not None:
                stats.hits += 1
                stats.mc_hits += 1
                return found
        streams = self.streams
        if streams is not None:
            hit, issued = streams.probe(line)
            if hit:
                stats.hits += 1
                stats.sb_hits += 1
                stats.sb_prefetches += issued
                return 0  # prefetched lines are clean
        return None

    def accept_victim(self, line: int, dirty: bool) -> tuple[int, int] | None:
        """Route one L1 victim; returns the entry that must spill to L2.

        With a victim cache the victim is captured and only the displaced
        LRU entry (if any) spills; without one the victim passes straight
        through, reproducing the baseline write-back behaviour.  The
        caller owns the spill's traffic/L2 accounting.
        """
        victim = self.victim
        if victim is None:
            return (line, 1 if dirty else 0)
        self.stats.vc_captures += 1
        spilled = victim.insert(line, 1 if dirty else 0)
        if spilled is not None and spilled[1]:
            self.stats.vc_writebacks += 1
        return spilled

    def on_demand_fill(self, line: int) -> None:
        """Notify the stages that ``line`` was filled from below L1."""
        miss = self.miss
        if miss is not None:
            miss.insert(line)
            self.stats.mc_inserts += 1
        streams = self.streams
        if streams is not None:
            self.stats.sb_allocations += 1
            self.stats.sb_prefetches += streams.allocate(line)

    def invalidate(self, line: int) -> None:
        """Inclusion: drop ``line`` from every stage (L2 evicted it)."""
        dropped = False
        if self.victim is not None and self.victim.invalidate(line):
            dropped = True
        if self.miss is not None and self.miss.invalidate(line):
            dropped = True
        if self.streams is not None and self.streams.invalidate(line):
            dropped = True
        if dropped:
            self.stats.inclusion_drops += 1

    def flush(self) -> int:
        """Empty every stage (e.g. around a context switch); counts it."""
        self.stats.flushes += 1
        dropped = 0
        for stage in (self.victim, self.miss, self.streams):
            if stage is not None:
                dropped += stage.flush()
        return dropped

    # -- reporting ------------------------------------------------------
    def stats_dict(self) -> dict[str, int]:
        """Counters keyed by their ``cache.misspath.*`` suffix."""
        stats = self.stats
        return {key: getattr(stats, attr) for key, attr in _COUNTERS}

    def register_metrics(self, registry, prefix: str) -> None:
        """Bind every counter under ``prefix`` (e.g. ``cache.misspath``)."""
        stats = self.stats
        for key, attr in _COUNTERS:
            registry.bind(
                f"{prefix}.{key}",
                (lambda a: lambda: getattr(stats, a))(attr),
            )


def build_misspath(config) -> MissPath | None:
    """The configured miss path of ``config``; ``None`` when disabled.

    ``None`` (rather than a no-op object) is the zero-cost contract: the
    hierarchy and the fused kernels test ``misspath is None`` once and
    run the exact baseline code.
    """
    if config.mechanism == "none":
        return None
    return MissPath(config)
