"""Cache hierarchy model: set-associative caches, MSHRs, bandwidth."""
