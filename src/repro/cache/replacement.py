"""Replacement policies for the set-associative cache model.

The paper's simulated machine uses LRU caches; we provide LRU (the default
used in all experiments) plus FIFO and a deterministic pseudo-random policy
so ablations can check that the layout-optimization results are not an
artifact of the replacement policy.

A policy operates on one cache set, represented as a list of cache-line
entries ordered from most- to least-recently used (for LRU) or in arrival
order (FIFO/random).  Entries are small mutable lists ``[tag, dirty]``; the
policy only decides *positions*, it never inspects the payload.
"""

from __future__ import annotations

from typing import Protocol


class ReplacementPolicy(Protocol):
    """Strategy interface: how a cache set orders and evicts its lines."""

    def on_hit(self, cache_set: list, index: int) -> None:
        """Update recency state after a hit on ``cache_set[index]``."""

    def victim_index(self, cache_set: list) -> int:
        """Return the index of the entry to evict from a full set."""

    def on_fill(self, cache_set: list, entry: list) -> None:
        """Insert a newly filled ``entry`` into a non-full set."""


class LRUPolicy:
    """Least-recently-used: list is kept in MRU-to-LRU order."""

    name = "lru"

    def on_hit(self, cache_set: list, index: int) -> None:
        if index:
            entry = cache_set.pop(index)
            cache_set.insert(0, entry)

    def victim_index(self, cache_set: list) -> int:
        return len(cache_set) - 1

    def on_fill(self, cache_set: list, entry: list) -> None:
        cache_set.insert(0, entry)


class FIFOPolicy:
    """First-in first-out: hits do not refresh recency."""

    name = "fifo"

    def on_hit(self, cache_set: list, index: int) -> None:
        return None

    def victim_index(self, cache_set: list) -> int:
        return len(cache_set) - 1

    def on_fill(self, cache_set: list, entry: list) -> None:
        cache_set.insert(0, entry)


class PseudoRandomPolicy:
    """Deterministic pseudo-random victim selection (xorshift counter).

    Deterministic so simulations stay reproducible run-to-run.
    """

    name = "random"

    def __init__(self, seed: int = 0x9E3779B9) -> None:
        self._state = seed or 1

    def _next(self) -> int:
        state = self._state
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        self._state = state
        return state

    def on_hit(self, cache_set: list, index: int) -> None:
        return None

    def victim_index(self, cache_set: list) -> int:
        return self._next() % len(cache_set)

    def on_fill(self, cache_set: list, entry: list) -> None:
        cache_set.insert(0, entry)


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": PseudoRandomPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``fifo``/``random``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
