"""A single level of set-associative cache (state only, no timing).

Timing, miss-status handling, and bandwidth accounting live in
:mod:`repro.cache.hierarchy`; this module models just the tag arrays:
which lines are present, their dirty bits, and replacement.

Line size is a constructor parameter because the paper's central
experiments (Figures 5 and 6) sweep it: layout optimizations pay off
*more* as lines get longer, which is the headline shape to reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.replacement import ReplacementPolicy, make_policy

# Entry slots (entries are small mutable lists for speed).
_TAG = 0
_DIRTY = 1


@dataclass
class EvictedLine:
    """Description of a line pushed out of the cache by a fill."""

    line_address: int
    dirty: bool


@dataclass
class CacheStats:
    """Per-level hit/miss counters, split by access type."""

    load_hits: int = 0
    load_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def hits(self) -> int:
        return self.load_hits + self.store_hits

    @property
    def misses(self) -> int:
        return self.load_misses + self.store_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        accesses = self.accesses
        return self.misses / accesses if accesses else 0.0


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class Cache:
    """Set-associative cache tag array with configurable geometry.

    Parameters
    ----------
    size:
        Capacity in bytes (power of two).
    line_size:
        Line size in bytes (power of two).
    associativity:
        Number of ways; ``size / line_size`` must be divisible by it.
    policy:
        Replacement policy name (``lru``, ``fifo``, ``random``).
    name:
        Label used in stats reporting (e.g. ``"L1D"``).
    """

    def __init__(
        self,
        size: int,
        line_size: int,
        associativity: int,
        policy: str = "lru",
        name: str = "cache",
    ) -> None:
        if not _is_pow2(size) or not _is_pow2(line_size):
            raise ValueError("cache size and line size must be powers of two")
        if size < line_size:
            raise ValueError("cache smaller than one line")
        lines = size // line_size
        if associativity < 1 or lines % associativity:
            raise ValueError(
                f"associativity {associativity} does not divide {lines} lines"
            )
        self.name = name
        self.size = size
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = lines // associativity
        self.line_shift = line_size.bit_length() - 1
        self._set_mask = self.num_sets - 1
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]
        self._policy: ReplacementPolicy = make_policy(policy)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        """Map a byte address to its line address (line-aligned bytes)."""
        return (address >> self.line_shift) << self.line_shift

    def lookup(self, address: int, is_write: bool) -> bool:
        """Probe the cache; returns True on hit and updates recency/dirty."""
        line = address >> self.line_shift
        cache_set = self._sets[line & self._set_mask]
        for index, entry in enumerate(cache_set):
            if entry[_TAG] == line:
                self._policy.on_hit(cache_set, index)
                if is_write:
                    entry[_DIRTY] = True
                if is_write:
                    self.stats.store_hits += 1
                else:
                    self.stats.load_hits += 1
                return True
        if is_write:
            self.stats.store_misses += 1
        else:
            self.stats.load_misses += 1
        return False

    def contains(self, address: int) -> bool:
        """Non-destructive probe (no stats, no recency update)."""
        line = address >> self.line_shift
        cache_set = self._sets[line & self._set_mask]
        return any(entry[_TAG] == line for entry in cache_set)

    def fill(self, address: int, dirty: bool = False) -> EvictedLine | None:
        """Bring the line holding ``address`` into the cache.

        Returns the evicted line (if any) so the hierarchy can account for
        writeback bandwidth.  Filling a line already present just updates
        its dirty bit.
        """
        line = address >> self.line_shift
        cache_set = self._sets[line & self._set_mask]
        for index, entry in enumerate(cache_set):
            if entry[_TAG] == line:
                self._policy.on_hit(cache_set, index)
                if dirty:
                    entry[_DIRTY] = True
                return None
        evicted = None
        if len(cache_set) >= self.associativity:
            victim = cache_set.pop(self._policy.victim_index(cache_set))
            self.stats.evictions += 1
            if victim[_DIRTY]:
                self.stats.dirty_evictions += 1
            evicted = EvictedLine(victim[_TAG] << self.line_shift, bool(victim[_DIRTY]))
        self._policy.on_fill(cache_set, [line, dirty])
        return evicted

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address``; returns True if it was present."""
        line = address >> self.line_shift
        cache_set = self._sets[line & self._set_mask]
        for index, entry in enumerate(cache_set):
            if entry[_TAG] == line:
                cache_set.pop(index)
                return True
        return False

    def resident_lines(self) -> int:
        """Number of valid lines currently held (for tests/diagnostics)."""
        return sum(len(cache_set) for cache_set in self._sets)
