"""A single level of set-associative cache (state only, no timing).

Timing, miss-status handling, and bandwidth accounting live in
:mod:`repro.cache.hierarchy`; this module models just the tag arrays:
which lines are present, their dirty bits, and replacement.

Line size is a constructor parameter because the paper's central
experiments (Figures 5 and 6) sweep it: layout optimizations pay off
*more* as lines get longer, which is the headline shape to reproduce.

Representation
--------------
Set state lives in preallocated flat sequences rather than per-set
Python lists: one flat list of line tags and one ``bytearray`` of dirty
bits, both indexed by ``set_index * associativity + slot``, plus a
``bytearray`` of per-set occupancy counts.  (The tags are a plain list,
not an ``array('q')``: tag probes compare against stored Python ints
directly instead of boxing a fresh int per read, which measurably
matters in the replay kernels; the handful of caches a run builds makes
the extra per-object memory irrelevant.)  Within a set's segment the
*slot position is the replacement order* -- slot 0 is the most recently
used (or most recently filled, for FIFO/random) line and the last
occupied slot is the victim.  This is exactly the MRU-to-LRU list order
the previous list-of-lists representation maintained, so hit/miss and
eviction behaviour is bit-for-bit identical, but probes touch one
contiguous segment and never allocate.  Vacant slots (at or beyond the
set's occupancy count) always hold the ``-1`` sentinel, which lets a
probe of a known way skip the occupancy check entirely -- no real line
address is negative.

Replacement is inlined (no per-access policy-object dispatch): LRU
moves the hit slot to the front of its segment, FIFO and random leave
hit order alone, and random picks its victim with the same deterministic
xorshift sequence as :class:`repro.cache.replacement.PseudoRandomPolicy`.
That module remains the readable reference semantics of the three
policies; this module is their hot representation.
"""

from __future__ import annotations

from dataclasses import dataclass

# Inlined replacement modes (see repro.cache.replacement for semantics).
_LRU = 0
_FIFO = 1
_RANDOM = 2
_MODES = {"lru": _LRU, "fifo": _FIFO, "random": _RANDOM}

#: Seed of the deterministic xorshift victim sequence; identical to
#: ``PseudoRandomPolicy``'s default so simulations stay reproducible.
_RANDOM_SEED = 0x9E3779B9


@dataclass(slots=True)
class EvictedLine:
    """Description of a line pushed out of the cache by a fill."""

    line_address: int
    dirty: bool


@dataclass(slots=True)
class CacheStats:
    """Per-level hit/miss counters, split by access type."""

    load_hits: int = 0
    load_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def hits(self) -> int:
        return self.load_hits + self.store_hits

    @property
    def misses(self) -> int:
        return self.load_misses + self.store_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        accesses = self.accesses
        return self.misses / accesses if accesses else 0.0

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose these counters through an ``repro.obs`` registry.

        Bound (snapshot-time) getters: the lookup/fill hot paths keep
        mutating this struct's flat slots at zero added cost.
        """
        registry.bind(f"{prefix}.hit.load", lambda: self.load_hits)
        registry.bind(f"{prefix}.hit.store", lambda: self.store_hits)
        registry.bind(f"{prefix}.miss.load", lambda: self.load_misses)
        registry.bind(f"{prefix}.miss.store", lambda: self.store_misses)
        registry.bind(f"{prefix}.evictions.total", lambda: self.evictions)
        registry.bind(f"{prefix}.evictions.dirty", lambda: self.dirty_evictions)


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class Cache:
    """Set-associative cache tag array with configurable geometry.

    Parameters
    ----------
    size:
        Capacity in bytes (power of two).
    line_size:
        Line size in bytes (power of two).
    associativity:
        Number of ways; ``size / line_size`` must be divisible by it.
    policy:
        Replacement policy name (``lru``, ``fifo``, ``random``).
    name:
        Label used in stats reporting (e.g. ``"L1D"``).
    """

    __slots__ = (
        "name",
        "size",
        "line_size",
        "associativity",
        "num_sets",
        "line_shift",
        "policy",
        "stats",
        "_set_mask",
        "_mode",
        "_rng_state",
        "_tags",
        "_dirty",
        "_set_len",
    )

    def __init__(
        self,
        size: int,
        line_size: int,
        associativity: int,
        policy: str = "lru",
        name: str = "cache",
    ) -> None:
        if not _is_pow2(size) or not _is_pow2(line_size):
            raise ValueError("cache size and line size must be powers of two")
        if size < line_size:
            raise ValueError("cache smaller than one line")
        lines = size // line_size
        if associativity < 1 or lines % associativity:
            raise ValueError(
                f"associativity {associativity} does not divide {lines} lines"
            )
        mode = _MODES.get(policy)
        if mode is None:
            raise ValueError(
                f"unknown replacement policy {policy!r}; "
                f"choose from {sorted(_MODES)}"
            )
        self.name = name
        self.size = size
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = lines // associativity
        self.line_shift = line_size.bit_length() - 1
        self.policy = policy
        self._set_mask = self.num_sets - 1
        self._mode = mode
        self._rng_state = _RANDOM_SEED
        # Invariant: slots at or beyond a set's ``_set_len`` always hold
        # the -1 sentinel (no line address is negative), so a probe of a
        # fixed way can skip the occupancy check.  ``invalidate`` is the
        # only operation that vacates a slot; it restores the sentinel.
        # The specialized replay kernels rely on this.
        self._tags = [-1] * lines
        self._dirty = bytearray(lines)
        self._set_len = bytearray(self.num_sets)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        """Map a byte address to its line address (line-aligned bytes)."""
        return (address >> self.line_shift) << self.line_shift

    def lookup(self, address: int, is_write: bool) -> bool:
        """Probe the cache; returns True on hit and updates recency/dirty."""
        line = address >> self.line_shift
        set_index = line & self._set_mask
        assoc = self.associativity
        base = set_index * assoc
        tags = self._tags
        for slot in range(base, base + self._set_len[set_index]):
            if tags[slot] == line:
                if slot != base and self._mode == _LRU:
                    # Element-wise shift: sets are a handful of ways, so
                    # moving slots one by one beats slice assignment
                    # (which allocates temporaries).
                    dirty = self._dirty
                    d = dirty[slot]
                    while slot > base:
                        tags[slot] = tags[slot - 1]
                        dirty[slot] = dirty[slot - 1]
                        slot -= 1
                    tags[base] = line
                    dirty[base] = d
                if is_write:
                    self._dirty[slot] = 1
                    self.stats.store_hits += 1
                else:
                    self.stats.load_hits += 1
                return True
        if is_write:
            self.stats.store_misses += 1
        else:
            self.stats.load_misses += 1
        return False

    def contains(self, address: int) -> bool:
        """Non-destructive probe (no stats, no recency update)."""
        line = address >> self.line_shift
        set_index = line & self._set_mask
        base = set_index * self.associativity
        tags = self._tags
        for slot in range(base, base + self._set_len[set_index]):
            if tags[slot] == line:
                return True
        return False

    def fill(self, address: int, dirty: bool = False) -> EvictedLine | None:
        """Bring the line holding ``address`` into the cache.

        Returns the evicted line (if any) so the hierarchy can account for
        writeback bandwidth.  Filling a line already present just updates
        its dirty bit.
        """
        line = address >> self.line_shift
        set_index = line & self._set_mask
        assoc = self.associativity
        base = set_index * assoc
        tags = self._tags
        dirty_bits = self._dirty
        n = self._set_len[set_index]
        for slot in range(base, base + n):
            if tags[slot] == line:
                if slot != base and self._mode == _LRU:
                    d = dirty_bits[slot]
                    while slot > base:
                        tags[slot] = tags[slot - 1]
                        dirty_bits[slot] = dirty_bits[slot - 1]
                        slot -= 1
                    tags[base] = line
                    dirty_bits[base] = d
                    slot = base
                if dirty:
                    dirty_bits[slot] = 1
                return None
        evicted = None
        if n >= assoc:
            # Full set: evict.  LRU and FIFO both take the last slot (the
            # oldest, since fills insert at the front); random draws a
            # position from the deterministic xorshift stream.
            if self._mode == _RANDOM:
                state = self._rng_state
                state ^= (state << 13) & 0xFFFFFFFF
                state ^= state >> 17
                state ^= (state << 5) & 0xFFFFFFFF
                self._rng_state = state
                victim = base + state % n
            else:
                victim = base + n - 1
            victim_dirty = dirty_bits[victim]
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
            evicted = EvictedLine(tags[victim] << self.line_shift, bool(victim_dirty))
            # Remove the victim, then insert the new line at the front:
            # slots before the victim shift down one place.
            slot = victim
            while slot > base:
                tags[slot] = tags[slot - 1]
                dirty_bits[slot] = dirty_bits[slot - 1]
                slot -= 1
        else:
            slot = base + n
            while slot > base:
                tags[slot] = tags[slot - 1]
                dirty_bits[slot] = dirty_bits[slot - 1]
                slot -= 1
            self._set_len[set_index] = n + 1
        tags[base] = line
        dirty_bits[base] = 1 if dirty else 0
        return evicted

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address``; returns True if it was present."""
        line = address >> self.line_shift
        set_index = line & self._set_mask
        base = set_index * self.associativity
        tags = self._tags
        n = self._set_len[set_index]
        for slot in range(base, base + n):
            if tags[slot] == line:
                end = base + n - 1
                dirty_bits = self._dirty
                while slot < end:
                    tags[slot] = tags[slot + 1]
                    dirty_bits[slot] = dirty_bits[slot + 1]
                    slot += 1
                tags[end] = -1  # restore the above-set_len sentinel
                self._set_len[set_index] = n - 1
                return True
        return False

    def resident_lines(self) -> int:
        """Number of valid lines currently held (for tests/diagnostics)."""
        return sum(self._set_len)

    def register_metrics(self, registry, prefix: str) -> None:
        """Register this level's counters under ``prefix`` (e.g. ``cache.l1``)."""
        self.stats.register_metrics(registry, prefix)
