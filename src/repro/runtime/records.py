"""Record (struct) layout helpers for code running on the simulated machine.

Applications in this reproduction are transcriptions of C programs, so
their data structures are C structs laid out in simulated memory.  A
:class:`RecordLayout` computes field offsets with natural alignment and
word-rounded total size (relocatable objects must be word aligned and
word-granular -- Sections 2.1 and 3.3), and provides timed accessors.

Example::

    NODE = RecordLayout("list_node", [("value", 8), ("next", 8)])
    addr = machine.malloc(NODE.size)
    NODE.write(machine, addr, "next", 0)
    value = NODE.read(machine, addr, "value")
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine import Machine
from repro.core.memory import WORD_SIZE

_ALLOWED_SIZES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Field:
    """One struct member: its byte offset and access size."""

    name: str
    offset: int
    size: int


class RecordLayout:
    """A C-struct-like layout over simulated memory.

    Parameters
    ----------
    name:
        Diagnostic label.
    fields:
        ``(field_name, byte_size)`` pairs in declaration order.  Sizes
        must be 1, 2, 4, or 8; each field is naturally aligned, and the
        record size is rounded up to a whole word.
    """

    def __init__(self, name: str, fields: list[tuple[str, int]]) -> None:
        if not fields:
            raise ValueError("a record needs at least one field")
        self.name = name
        self._fields: dict[str, Field] = {}
        offset = 0
        for field_name, size in fields:
            if size not in _ALLOWED_SIZES:
                raise ValueError(
                    f"{name}.{field_name}: size {size} not in {_ALLOWED_SIZES}"
                )
            if field_name in self._fields:
                raise ValueError(f"duplicate field {name}.{field_name}")
            offset = (offset + size - 1) & ~(size - 1)  # natural alignment
            self._fields[field_name] = Field(field_name, offset, size)
            offset += size
        self.size = (offset + WORD_SIZE - 1) & ~(WORD_SIZE - 1)
        self.words = self.size // WORD_SIZE
        # Flat (offset, size) pairs for the timed accessors below, which
        # sit on the hot path of every application inner loop.
        self._placement = {
            field.name: (field.offset, field.size)
            for field in self._fields.values()
        }

    # ------------------------------------------------------------------
    def offset(self, field_name: str) -> int:
        """Byte offset of a field within the record."""
        return self._fields[field_name].offset

    def field(self, field_name: str) -> Field:
        return self._fields[field_name]

    @property
    def field_names(self) -> list[str]:
        return list(self._fields)

    # ------------------------------------------------------------------
    def read(self, machine: Machine, base: int, field_name: str) -> int:
        """Timed, forwarding-aware load of one field."""
        offset, size = self._placement[field_name]
        return machine.load(base + offset, size)

    def write(self, machine: Machine, base: int, field_name: str, value: int) -> None:
        """Timed, forwarding-aware store of one field."""
        offset, size = self._placement[field_name]
        machine.store(base + offset, value, size)

    def alloc(self, machine: Machine, align: int = WORD_SIZE) -> int:
        """Allocate one record on the simulated heap."""
        return machine.malloc(self.size, align)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{f.name}@{f.offset}:{f.size}" for f in self._fields.values()
        )
        return f"RecordLayout({self.name}, size={self.size}, [{parts}])"
