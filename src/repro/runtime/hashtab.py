"""Chained hash table on the simulated machine.

Several of the paper's applications are hash-table-centric: MST keeps
per-vertex adjacency hash tables, Eqntott's central structure is a hash
table of PTERM records, and SMV's BDD unique table is "an array of
buckets pointing to linked lists".  This module provides the shared
substrate: a bucket array of pointers plus chained ``(key, value, next)``
nodes, with hooks for the layout optimizations:

* ``bucket_handle(i)`` exposes the address of a bucket's head pointer so
  ``list_linearize`` can relocate that chain (the SMV optimization);
* ``linearize_all`` linearizes every bucket chain into a pool.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.machine import NULL, Machine
from repro.core.memory import WORD_SIZE
from repro.core.relocate import list_linearize
from repro.mem.pool import RelocationPool
from repro.runtime.records import RecordLayout

#: Chain node: key, payload, next pointer.
HASH_NODE = RecordLayout("hash_node", [("key", 8), ("value", 8), ("next", 8)])

_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def default_hash(key: int, buckets: int) -> int:
    """Multiplicative (Fibonacci) hash of an integer key."""
    if buckets <= 0:
        raise ValueError(f"buckets must be positive, got {buckets}")
    return (((key * _GOLDEN) & _MASK64) >> 32) % buckets


class HashTable:
    """Separate-chaining hash table with relocatable chains.

    Parameters
    ----------
    machine:
        The simulated machine.
    buckets:
        Number of buckets (the bucket array is one contiguous block).
    """

    def __init__(self, machine: Machine, buckets: int) -> None:
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.machine = machine
        self.buckets = buckets
        self.base = machine.malloc(buckets * WORD_SIZE)
        self.count = 0
        # The bucket array starts zeroed (NULL) courtesy of malloc.

    # ------------------------------------------------------------------
    def bucket_index(self, key: int) -> int:
        self.machine.execute(3)  # hash computation
        return default_hash(key, self.buckets)

    def bucket_handle(self, index: int) -> int:
        """Address of bucket ``index``'s head-pointer word."""
        return self.base + index * WORD_SIZE

    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> int:
        """Prepend a new ``(key, value)`` node; returns its address."""
        m = self.machine
        handle = self.bucket_handle(self.bucket_index(key))
        node = m.malloc(HASH_NODE.size)
        HASH_NODE.write(m, node, "key", key)
        HASH_NODE.write(m, node, "value", value)
        HASH_NODE.write(m, node, "next", m.load(handle))
        m.store(handle, node)
        self.count += 1
        return node

    def lookup(self, key: int) -> int | None:
        """Return the value stored under ``key``, or None."""
        m = self.machine
        node = m.load(self.bucket_handle(self.bucket_index(key)))
        while node != NULL:
            m.execute(1)
            if HASH_NODE.read(m, node, "key") == key:
                return HASH_NODE.read(m, node, "value")
            node = HASH_NODE.read(m, node, "next")
        return None

    def update(self, key: int, value: int) -> bool:
        """Overwrite the value under ``key``; True if the key existed."""
        m = self.machine
        node = m.load(self.bucket_handle(self.bucket_index(key)))
        while node != NULL:
            m.execute(1)
            if HASH_NODE.read(m, node, "key") == key:
                HASH_NODE.write(m, node, "value", value)
                return True
            node = HASH_NODE.read(m, node, "next")
        return False

    def remove(self, key: int) -> bool:
        """Unlink and free the node under ``key``; True if found."""
        m = self.machine
        slot = self.bucket_handle(self.bucket_index(key))
        node = m.load(slot)
        while node != NULL:
            m.execute(1)
            if HASH_NODE.read(m, node, "key") == key:
                m.store(slot, HASH_NODE.read(m, node, "next"))
                m.free(node)
                self.count -= 1
                return True
            slot = node + HASH_NODE.offset("next")
            node = m.load(slot)
        return False

    # ------------------------------------------------------------------
    def iter_bucket(self, index: int) -> Iterator[tuple[int, int, int]]:
        """Yield ``(node, key, value)`` along one chain (timed loads)."""
        m = self.machine
        node = m.load(self.bucket_handle(index))
        while node != NULL:
            yield (
                node,
                HASH_NODE.read(m, node, "key"),
                HASH_NODE.read(m, node, "value"),
            )
            node = HASH_NODE.read(m, node, "next")

    def iter_items(self) -> Iterator[tuple[int, int]]:
        """Yield every ``(key, value)`` in bucket order."""
        for index in range(self.buckets):
            for _, key, value in self.iter_bucket(index):
                yield key, value

    # ------------------------------------------------------------------
    def linearize_bucket(self, index: int, pool: RelocationPool) -> int:
        """Relocate one bucket's chain into ``pool`` (SMV's optimization)."""
        _, moved = list_linearize(
            self.machine,
            self.bucket_handle(index),
            HASH_NODE.offset("next"),
            HASH_NODE.size,
            pool,
        )
        return moved

    def linearize_all(self, pool: RelocationPool) -> int:
        """Linearize every bucket chain; returns total nodes moved."""
        moved = 0
        for index in range(self.buckets):
            moved += self.linearize_bucket(index, pool)
        return moved
