"""A generic linked-list library on the simulated machine.

This mirrors the list library at the heart of the paper's VIS case study
(Section 5.3): a single generic implementation used pervasively, whose
nodes end up scattered across the heap, and which is the *one* place the
locality optimization has to live.

Following the paper, every list header carries an operation counter: each
insertion or deletion increments it, and when it exceeds a threshold the
list is linearized into a relocation pool and the counter resets.  The
threshold defaults to 50, the value "arbitrarily set" in the paper.

Linearization is only armed when the library is given a pool (the
optimized build); the unoptimized build runs the identical code with the
optimization disarmed.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.machine import NULL, Machine
from repro.core.relocate import list_linearize
from repro.mem.pool import RelocationPool
from repro.runtime.records import RecordLayout

#: The paper's linearization trigger: operations since the last linearize.
DEFAULT_LINEARIZE_THRESHOLD = 50

#: List header: head pointer, length, and the Section 5.3 op counter.
HEADER = RecordLayout("list_header", [("first", 8), ("count", 8), ("ops", 8)])


class ListLib:
    """Generic singly linked lists with optional auto-linearization.

    Parameters
    ----------
    machine:
        The simulated machine all operations run on.
    pool:
        Relocation pool for linearized nodes.  ``None`` disarms the
        optimization (the unoptimized build).
    threshold:
        Insert/delete count that triggers linearization.
    node_extra_words:
        Extra payload words per node beyond ``(value, next)``, letting
        applications model their real node sizes.
    """

    def __init__(
        self,
        machine: Machine,
        pool: RelocationPool | None = None,
        threshold: int = DEFAULT_LINEARIZE_THRESHOLD,
        node_extra_words: int = 0,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if node_extra_words < 0:
            raise ValueError("node_extra_words must be >= 0")
        self.machine = machine
        self.pool = pool
        self.threshold = threshold
        fields = [("value", 8), ("next", 8)]
        fields += [(f"pad{i}", 8) for i in range(node_extra_words)]
        self.node_layout = RecordLayout("list_node", fields)
        self.node_bytes = self.node_layout.size
        self.next_offset = self.node_layout.offset("next")
        self.linearizations = 0

    # ------------------------------------------------------------------
    # List construction and structural operations
    # ------------------------------------------------------------------
    def new_list(self) -> int:
        """Create an empty list; returns the header address."""
        header = self.machine.malloc(HEADER.size)
        HEADER.write(self.machine, header, "first", NULL)
        HEADER.write(self.machine, header, "count", 0)
        HEADER.write(self.machine, header, "ops", 0)
        return header

    def head_handle(self, header: int) -> int:
        """Address of the head-pointer word (what ListLinearize needs)."""
        return header + HEADER.offset("first")

    def push_front(self, header: int, value: int) -> int:
        """Insert ``value`` at the front; returns the new node's address."""
        m = self.machine
        node = m.malloc(self.node_bytes)
        self.node_layout.write(m, node, "value", value)
        self.node_layout.write(m, node, "next", HEADER.read(m, header, "first"))
        HEADER.write(m, header, "first", node)
        HEADER.write(m, header, "count", HEADER.read(m, header, "count") + 1)
        self._note_op(header)
        return node

    def insert_at(self, header: int, index: int, value: int) -> int:
        """Insert ``value`` so it becomes the ``index``-th element."""
        m = self.machine
        if index <= 0:
            return self.push_front(header, value)
        slot = self.head_handle(header)
        node = m.load(slot)
        walked = 0
        while node != NULL and walked < index:
            slot = node + self.next_offset
            node = m.load(slot)
            walked += 1
        new = m.malloc(self.node_bytes)
        self.node_layout.write(m, new, "value", value)
        self.node_layout.write(m, new, "next", node)
        m.store(slot, new)
        HEADER.write(m, header, "count", HEADER.read(m, header, "count") + 1)
        self._note_op(header)
        return new

    def remove_at(self, header: int, index: int) -> int | None:
        """Remove and return the value at position ``index`` (or None)."""
        m = self.machine
        slot = self.head_handle(header)
        node = m.load(slot)
        walked = 0
        while node != NULL and walked < index:
            slot = node + self.next_offset
            node = m.load(slot)
            walked += 1
        if node == NULL:
            return None
        value = self.node_layout.read(m, node, "value")
        m.store(slot, self.node_layout.read(m, node, "next"))
        m.free(node)
        HEADER.write(m, header, "count", HEADER.read(m, header, "count") - 1)
        self._note_op(header)
        return value

    def remove_value(self, header: int, value: int) -> bool:
        """Remove the first node holding ``value``; True if found."""
        m = self.machine
        slot = self.head_handle(header)
        node = m.load(slot)
        while node != NULL:
            m.execute(1)  # the comparison
            if self.node_layout.read(m, node, "value") == value:
                m.store(slot, self.node_layout.read(m, node, "next"))
                m.free(node)
                HEADER.write(m, header, "count", HEADER.read(m, header, "count") - 1)
                self._note_op(header)
                return True
            slot = node + self.next_offset
            node = m.load(slot)
        return False

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter_nodes(self, header: int) -> Iterator[int]:
        """Yield node addresses front to back (timed loads)."""
        m = self.machine
        node = m.load(self.head_handle(header))
        while node != NULL:
            yield node
            node = m.load(node + self.next_offset)

    def iter_values(self, header: int) -> Iterator[int]:
        """Yield payload values front to back (timed loads)."""
        m = self.machine
        for node in self.iter_nodes(header):
            yield self.node_layout.read(m, node, "value")

    def to_list(self, header: int) -> list[int]:
        return list(self.iter_values(header))

    def length(self, header: int) -> int:
        return HEADER.read(self.machine, header, "count")

    # ------------------------------------------------------------------
    # The Section 5.3 optimization
    # ------------------------------------------------------------------
    def _note_op(self, header: int) -> None:
        """Count a structural op; linearize past the threshold (if armed)."""
        m = self.machine
        ops = HEADER.read(m, header, "ops") + 1
        if self.pool is not None and ops > self.threshold:
            self.linearize(header)
            ops = 0
        HEADER.write(m, header, "ops", ops)

    def linearize(self, header: int) -> int:
        """Force linearization now; returns the number of nodes moved."""
        if self.pool is None:
            raise ValueError("list library was built without a relocation pool")
        _, count = list_linearize(
            self.machine,
            self.head_handle(header),
            self.next_offset,
            self.node_bytes,
            self.pool,
        )
        self.linearizations += 1
        return count
