"""Application runtime: list library, record layouts, hash tables."""
