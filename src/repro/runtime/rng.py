"""Deterministic pseudo-random number generator for workloads.

All applications draw their randomness (graph edges, hash keys, patient
arrivals, ...) from this xorshift64* generator so that:

* runs are bit-reproducible across Python versions and platforms, and
* the *same* access-pattern randomness can be replayed for the
  unoptimized and optimized variants of an application, making their
  checksums comparable (the key correctness check of the reproduction).
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


class DeterministicRNG:
    """xorshift64* with splittable sub-streams."""

    def __init__(self, seed: int = 0x2545F4914F6CDD1D) -> None:
        self._state = (seed & _MASK64) or 0x9E3779B97F4A7C15

    def next_u64(self) -> int:
        state = self._state
        state ^= (state >> 12)
        state ^= (state << 25) & _MASK64
        state ^= (state >> 27)
        self._state = state
        return (state * 0x2545F4914F6CDD1D) & _MASK64

    def randint(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound

    def randrange(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        if high <= low:
            raise ValueError(f"empty range [{low}, {high})")
        return low + self.randint(high - low)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self.next_u64() / (1 << 64)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self.random() < probability

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for index in range(len(items) - 1, 0, -1):
            other = self.randint(index + 1)
            items[index], items[other] = items[other], items[index]

    def split(self) -> "DeterministicRNG":
        """Derive an independent sub-stream (for per-structure randomness)."""
        return DeterministicRNG(self.next_u64() ^ 0xA5A5A5A5A5A5A5A5)
