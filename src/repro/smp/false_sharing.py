"""False-sharing avoidance by relocation (Section 2.2, evaluated).

The scenario the paper describes: "two or more processors access
distinct data items which happen to fall within the same cache line …
and at least one access is a write.  False sharing can hurt performance
dramatically as the line ping-pongs between processors despite the fact
that no real communication is taking place."

The workload here is the irregular case the paper says matters: per-CPU
counter records that were allocated interleaved (as a graph partitioner
or work-stealing queue would produce), so records owned by different
CPUs share lines.  The optimization relocates each CPU's records into
that CPU's own region of a relocation pool -- one line never holds two
owners -- and memory forwarding guarantees any stale cross-references
stay correct.

``run_false_sharing_experiment`` measures the unoptimized and relocated
layouts and reports cycles and coherence misses for each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memory import WORD_SIZE
from repro.smp.machine import SMPMachine


@dataclass
class FalseSharingResult:
    """Outcome of one layout under the ping-pong workload."""

    label: str
    cycles: float
    coherence_misses: int
    total_misses: int
    checksum: int


def _build_interleaved_records(machine: SMPMachine, per_cpu: int) -> list[list[int]]:
    """Allocate each CPU's records round-robin: owners share lines."""
    records: list[list[int]] = [[] for _ in range(machine.cpus)]
    for _ in range(per_cpu):
        for cpu in range(machine.cpus):
            records[cpu].append(machine.malloc(WORD_SIZE))
    return records


def _segregate_by_owner(machine: SMPMachine, records: list[list[int]]) -> list[list[int]]:
    """The optimization: relocate every CPU's records into its own
    line-aligned region, so no line has two owners."""
    line = machine.config.coherence.line_size
    relocated: list[list[int]] = []
    for cpu, owned in enumerate(records):
        pool = machine.create_pool(
            max(line, len(owned) * WORD_SIZE + line), f"cpu{cpu}"
        )
        new_addresses = []
        for record in owned:
            target = pool.allocate(WORD_SIZE, align=WORD_SIZE)
            machine.relocate(record, target, 1, cpu=cpu)
            new_addresses.append(target)
        relocated.append(new_addresses)
    return relocated


def _pingpong_round(machine: SMPMachine, records: list[list[int]]) -> None:
    """One lockstep round: every CPU increments each of its counters."""
    per_cpu = len(records[0])
    for index in range(per_cpu):
        for cpu in range(machine.cpus):
            address = records[cpu][index]
            value = machine.load(cpu, address) + 1
            machine.store(cpu, address, value)
            machine.compute(cpu, 2.0)


def _checksum(machine: SMPMachine, records: list[list[int]]) -> int:
    checksum = 0
    for cpu in range(machine.cpus):
        for address in records[cpu]:
            checksum += machine.load(cpu, address)
    return checksum


def _pingpong(machine: SMPMachine, records: list[list[int]], rounds: int) -> int:
    """Each CPU repeatedly increments its own counters -- no true
    sharing at all.  CPUs proceed in lockstep rounds, the worst case for
    line ping-ponging."""
    for _ in range(rounds):
        _pingpong_round(machine, records)
    return _checksum(machine, records)


def run_false_sharing_experiment(
    cpus: int = 4, per_cpu_records: int = 32, rounds: int = 40
) -> tuple[FalseSharingResult, FalseSharingResult]:
    """Measure the interleaved and owner-segregated layouts.

    Returns ``(unoptimized, optimized)`` results; the workload and hence
    the checksum are identical, only the layout differs.
    """
    from repro.smp.coherence import CoherenceConfig
    from repro.smp.machine import SMPConfig

    def make_machine() -> SMPMachine:
        return SMPMachine(SMPConfig(coherence=CoherenceConfig(cpus=cpus)))

    baseline = make_machine()
    records = _build_interleaved_records(baseline, per_cpu_records)
    checksum = _pingpong(baseline, records, rounds)
    unoptimized = FalseSharingResult(
        label="interleaved (false sharing)",
        cycles=baseline.max_cycles,
        coherence_misses=baseline.coherence_misses(),
        total_misses=baseline.system.total_misses(),
        checksum=checksum,
    )

    optimized_machine = make_machine()
    records = _build_interleaved_records(optimized_machine, per_cpu_records)
    relocated = _segregate_by_owner(optimized_machine, records)
    start = optimized_machine.max_cycles
    start_coherence = optimized_machine.coherence_misses()
    checksum2 = _pingpong(optimized_machine, relocated, rounds)
    optimized = FalseSharingResult(
        label="owner-segregated (relocated)",
        cycles=optimized_machine.max_cycles - start,
        coherence_misses=optimized_machine.coherence_misses() - start_coherence,
        total_misses=optimized_machine.system.total_misses(),
        checksum=checksum2,
    )
    return unoptimized, optimized


@dataclass
class AdaptiveFalseSharingResult:
    """The never / once / adaptive triple under one ping-pong workload."""

    never: FalseSharingResult
    once: FalseSharingResult
    adaptive: FalseSharingResult
    #: Round at which the adaptive arm's policy fired (None = never).
    trigger_round: int | None
    #: Simulated cycles the adaptive arm spent executing the relocation.
    segregation_cost: float
    policy: str

    @property
    def checksums_equal(self) -> bool:
        return (
            self.never.checksum
            == self.once.checksum
            == self.adaptive.checksum
        )


def run_adaptive_false_sharing(
    cpus: int = 4,
    per_cpu_records: int = 32,
    rounds: int = 40,
    policy: str = "hysteresis",
) -> AdaptiveFalseSharingResult:
    """Never / once / adaptive segregation under the ping-pong workload.

    The adaptive arm starts on the interleaved (false-sharing) layout
    and feeds each round's coherence-miss rate to a
    :mod:`repro.adapt.policy` policy as per-window feedback; when the
    policy fires, it runs :func:`_segregate_by_owner` *mid-run* and the
    remaining rounds use the relocated records.  Forwarding makes the
    mid-run switch safe by construction — any access through a stale
    address would merely chase — and the checksum triple proves no arm
    changed the computation.
    """
    from repro.adapt.config import AdaptConfig
    from repro.adapt.policy import WindowFeedback, make_policy
    from repro.smp.coherence import CoherenceConfig
    from repro.smp.machine import SMPConfig

    def make_machine() -> SMPMachine:
        return SMPMachine(SMPConfig(coherence=CoherenceConfig(cpus=cpus)))

    never_machine = make_machine()
    records = _build_interleaved_records(never_machine, per_cpu_records)
    never_checksum = _pingpong(never_machine, records, rounds)
    never = FalseSharingResult(
        label="static-never (interleaved)",
        cycles=never_machine.max_cycles,
        coherence_misses=never_machine.coherence_misses(),
        total_misses=never_machine.system.total_misses(),
        checksum=never_checksum,
    )

    once_machine = make_machine()
    records = _build_interleaved_records(once_machine, per_cpu_records)
    segregated = _segregate_by_owner(once_machine, records)
    once_checksum = _pingpong(once_machine, segregated, rounds)
    once = FalseSharingResult(
        label="static-once (pre-segregated)",
        cycles=once_machine.max_cycles,
        coherence_misses=once_machine.coherence_misses(),
        total_misses=once_machine.system.total_misses(),
        checksum=once_checksum,
    )

    # Adaptive: per-round coherence feedback drives a repro.adapt policy.
    engine = make_policy(
        AdaptConfig(
            policy=policy,
            miss_rate_threshold=0.2,
            chase_rate_threshold=0.02,
            patience=2,
            cooldown=4,
        )
    )
    adaptive_machine = make_machine()
    records = _build_interleaved_records(adaptive_machine, per_cpu_records)
    live = records
    accesses_per_round = cpus * per_cpu_records * 2
    trigger_round: int | None = None
    segregation_cost = 0.0
    seen_coherence = adaptive_machine.coherence_misses()
    for round_index in range(rounds):
        _pingpong_round(adaptive_machine, live)
        coherence = adaptive_machine.coherence_misses()
        feedback = WindowFeedback(
            index=round_index,
            refs=accesses_per_round,
            miss_rate=(coherence - seen_coherence) / accesses_per_round,
            chase_rate=0.0,
            stall_rate=0.0,
        )
        seen_coherence = coherence
        if trigger_round is None and engine.observe(feedback) is not None:
            trigger_round = round_index
            start = adaptive_machine.max_cycles
            live = _segregate_by_owner(adaptive_machine, live)
            segregation_cost = adaptive_machine.max_cycles - start
    adaptive_checksum = _checksum(adaptive_machine, live)
    adaptive = FalseSharingResult(
        label=f"adaptive ({policy})",
        cycles=adaptive_machine.max_cycles,
        coherence_misses=adaptive_machine.coherence_misses(),
        total_misses=adaptive_machine.system.total_misses(),
        checksum=adaptive_checksum,
    )
    return AdaptiveFalseSharingResult(
        never=never,
        once=once,
        adaptive=adaptive,
        trigger_round=trigger_round,
        segregation_cost=segregation_cost,
        policy=policy,
    )


def main() -> None:  # pragma: no cover - CLI entry
    before, after = run_false_sharing_experiment()
    for result in (before, after):
        print(
            f"{result.label:32s} cycles={result.cycles:10.0f} "
            f"coherence misses={result.coherence_misses:6d}"
        )
    print(f"speedup: {before.cycles / after.cycles:.2f}x")
    triple = run_adaptive_false_sharing()
    for result in (triple.never, triple.once, triple.adaptive):
        print(
            f"{result.label:32s} cycles={result.cycles:10.0f} "
            f"coherence misses={result.coherence_misses:6d}"
        )
    print(
        f"adaptive trigger round: {triple.trigger_round}, "
        f"segregation cost: {triple.segregation_cost:.0f} cycles, "
        f"checksums equal: {triple.checksums_equal}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
