"""Shared-memory multiprocessor extension (Section 2.2's false sharing).

The paper lists false-sharing avoidance among the optimizations memory
forwarding enables but does not evaluate it; this subpackage supplies the
missing substrate (MSI-coherent per-CPU caches over one shared tagged
memory) and the experiment.
"""

from repro.smp.coherence import CoherenceConfig, CoherentMemorySystem, LineState
from repro.smp.false_sharing import FalseSharingResult, run_false_sharing_experiment
from repro.smp.machine import SMPConfig, SMPMachine

__all__ = [
    "CoherenceConfig",
    "CoherentMemorySystem",
    "FalseSharingResult",
    "LineState",
    "SMPConfig",
    "SMPMachine",
    "run_false_sharing_experiment",
]
