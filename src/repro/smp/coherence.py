"""MSI cache coherence over per-processor caches (Section 2.2 substrate).

The paper's fourth application of memory forwarding is *reducing false
sharing*: relocating unrelated data items written by different processors
into distinct cache lines.  Evaluating that claim needs a multiprocessor
memory system, which this module provides: per-CPU L1 caches kept
coherent with an invalidation-based MSI protocol over a shared bus.

The protocol is deliberately minimal -- Modified/Shared/Invalid, no
Exclusive state, atomic bus -- because the phenomenon under study is
line *ping-ponging*: a write to a line another CPU holds invalidates the
other copy, and if the two CPUs keep writing unrelated words of the same
line, the line bounces with a coherence miss on every transfer.  The
stats distinguish those **coherence misses** (upgrade/invalidation
traffic) from ordinary misses, which is exactly the signal false-sharing
avoidance removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.cache.cache import Cache


class LineState(Enum):
    """MSI states of a line in one processor's cache."""

    MODIFIED = "M"
    SHARED = "S"
    # Invalid = absent from the cache.


@dataclass
class CoherenceStats:
    """Per-CPU coherence behaviour."""

    load_hits: int = 0
    store_hits: int = 0
    #: Misses on lines no other cache held (ordinary misses).
    plain_misses: int = 0
    #: Misses/upgrades caused by another CPU holding the line.
    coherence_misses: int = 0
    invalidations_received: int = 0


@dataclass
class CoherenceConfig:
    """Geometry and latency parameters of the SMP memory system."""

    cpus: int = 2
    line_size: int = 32
    l1_size: int = 4 * 1024
    l1_assoc: int = 2
    hit_latency: float = 1.0
    #: Miss served from memory (or another cache, same bus transaction).
    miss_latency: float = 60.0
    #: Extra latency of an upgrade (invalidating remote copies).
    upgrade_latency: float = 20.0


class CoherentMemorySystem:
    """Per-CPU L1 caches with MSI invalidation coherence.

    State per line per CPU is tracked beside the tag arrays; the bus is
    modeled as instantaneous but every transfer is counted so bandwidth
    comparisons remain meaningful.
    """

    def __init__(self, config: CoherenceConfig | None = None) -> None:
        self.config = config or CoherenceConfig()
        cfg = self.config
        if cfg.cpus < 1:
            raise ValueError(f"need at least one CPU, got {cfg.cpus}")
        self.caches = [
            Cache(cfg.l1_size, cfg.line_size, cfg.l1_assoc, "lru", f"L1-{cpu}")
            for cpu in range(cfg.cpus)
        ]
        self.stats = [CoherenceStats() for _ in range(cfg.cpus)]
        # (cpu, line_address) -> LineState; absence means Invalid.
        self._states: dict[tuple[int, int], LineState] = {}
        self.bus_transfers = 0

    # ------------------------------------------------------------------
    def _state(self, cpu: int, line: int) -> LineState | None:
        return self._states.get((cpu, line))

    def _set_state(self, cpu: int, line: int, state: LineState | None) -> None:
        if state is None:
            self._states.pop((cpu, line), None)
        else:
            self._states[(cpu, line)] = state

    def _holders(self, line: int, exclude: int) -> list[int]:
        return [
            cpu
            for cpu in range(self.config.cpus)
            if cpu != exclude and (cpu, line) in self._states
        ]

    def line_address(self, address: int) -> int:
        return self.caches[0].line_address(address)

    # ------------------------------------------------------------------
    def access(self, cpu: int, address: int, is_write: bool) -> float:
        """One reference by ``cpu``; returns its latency in cycles."""
        if not 0 <= cpu < self.config.cpus:
            raise ValueError(f"no such CPU {cpu}")
        cfg = self.config
        cache = self.caches[cpu]
        stats = self.stats[cpu]
        line = cache.line_address(address)
        state = self._state(cpu, line)
        present = state is not None and cache.contains(line)

        if present and (not is_write or state is LineState.MODIFIED):
            # Plain hit.
            cache.lookup(address, is_write)
            if is_write:
                stats.store_hits += 1
            else:
                stats.load_hits += 1
            return cfg.hit_latency

        holders = self._holders(line, exclude=cpu)
        if present and is_write and state is LineState.SHARED:
            # Upgrade: invalidate every remote copy.
            for other in holders:
                self._invalidate(other, line)
            self._set_state(cpu, line, LineState.MODIFIED)
            cache.lookup(address, True)
            stats.coherence_misses += 1
            self.bus_transfers += 1
            return cfg.upgrade_latency

        # True miss: fetch the line (from a remote M copy or memory).
        remote_modified = any(
            self._state(other, line) is LineState.MODIFIED for other in holders
        )
        if is_write:
            for other in holders:
                self._invalidate(other, line)
            new_state = LineState.MODIFIED
        else:
            for other in holders:
                if self._state(other, line) is LineState.MODIFIED:
                    self._set_state(other, line, LineState.SHARED)
            new_state = LineState.SHARED
        if holders:
            stats.coherence_misses += 1
        else:
            stats.plain_misses += 1
        self.bus_transfers += 1
        evicted = cache.fill(line, dirty=is_write)
        if evicted is not None:
            self._set_state(cpu, evicted.line_address, None)
        cache.lookup(address, is_write)
        self._set_state(cpu, line, new_state)
        latency = cfg.miss_latency
        if remote_modified:
            latency += cfg.upgrade_latency  # dirty intervention
        return latency

    def _invalidate(self, cpu: int, line: int) -> None:
        self._set_state(cpu, line, None)
        if self.caches[cpu].invalidate(line):
            self.stats[cpu].invalidations_received += 1

    # ------------------------------------------------------------------
    def total_coherence_misses(self) -> int:
        return sum(stats.coherence_misses for stats in self.stats)

    def total_misses(self) -> int:
        return sum(
            stats.coherence_misses + stats.plain_misses for stats in self.stats
        )
