"""A small shared-memory multiprocessor built on the coherent caches.

:class:`SMPMachine` gives each CPU a cycle counter and routes its
references through one shared :class:`TaggedMemory` (so memory
forwarding works unchanged across processors -- forwarding bits are part
of memory, not of any cache) and the MSI coherence layer.

This is the substrate for the false-sharing study
(:mod:`repro.smp.false_sharing`): the paper's Section 2.2 argues memory
forwarding makes it safe to relocate "unrelated data items [that] fall
within the same cache line" onto distinct lines, even in irregular
programs where proving that safe statically is hopeless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.forwarding import ForwardingEngine
from repro.core.memory import TaggedMemory, WORD_SIZE
from repro.mem.allocator import HeapAllocator
from repro.mem.pool import RelocationPool
from repro.smp.coherence import CoherenceConfig, CoherentMemorySystem


@dataclass
class SMPConfig:
    """Configuration of the simulated multiprocessor."""

    coherence: CoherenceConfig = field(default_factory=CoherenceConfig)
    heap_base: int = 0x10000
    heap_size: int = 4 << 20
    pool_region_size: int = 4 << 20
    #: Forwarding hop cost (per hop, on top of the hop's cache access).
    forwarding_hop_cycles: float = 6.0

    @property
    def memory_size(self) -> int:
        return self.heap_base + self.heap_size + self.pool_region_size


class SMPMachine:
    """N CPUs over coherent L1s and one shared tagged memory."""

    def __init__(self, config: SMPConfig | None = None) -> None:
        self.config = config or SMPConfig()
        cfg = self.config
        self.memory = TaggedMemory(cfg.memory_size)
        self.forwarding = ForwardingEngine(self.memory)
        self.system = CoherentMemorySystem(cfg.coherence)
        self.heap = HeapAllocator(self.memory, cfg.heap_base, cfg.heap_size)
        self.cycles = [0.0] * cfg.coherence.cpus
        self._pool_bump = cfg.heap_base + cfg.heap_size

    @property
    def cpus(self) -> int:
        return self.config.coherence.cpus

    # ------------------------------------------------------------------
    def malloc(self, nbytes: int, align: int = WORD_SIZE) -> int:
        return self.heap.allocate(nbytes, align)

    def create_pool(self, size: int, name: str = "pool") -> RelocationPool:
        size = (size + WORD_SIZE - 1) & ~(WORD_SIZE - 1)
        pool = RelocationPool(self._pool_bump, size, name)
        self._pool_bump += size
        return pool

    # ------------------------------------------------------------------
    def load(self, cpu: int, address: int, size: int = WORD_SIZE) -> int:
        """Forwarding-aware load by one CPU."""
        final = self._resolve(cpu, address)
        self.cycles[cpu] += self.system.access(cpu, final, is_write=False)
        return self.memory.read_data(final, size)

    def store(self, cpu: int, address: int, value: int, size: int = WORD_SIZE) -> None:
        """Forwarding-aware store by one CPU."""
        final = self._resolve(cpu, address)
        self.cycles[cpu] += self.system.access(cpu, final, is_write=True)
        self.memory.write_data(final, value, size)

    def _resolve(self, cpu: int, address: int) -> int:
        def on_hop(word_address: int) -> None:
            self.cycles[cpu] += self.system.access(cpu, word_address, False)
            self.cycles[cpu] += self.config.forwarding_hop_cycles

        final, _hops = self.forwarding.resolve(address, on_hop)
        return final

    def compute(self, cpu: int, cycles: float) -> None:
        """Advance one CPU's clock by local (non-memory) work."""
        self.cycles[cpu] += cycles

    # ------------------------------------------------------------------
    def relocate(self, obj: int, target: int, nwords: int, cpu: int = 0) -> None:
        """Relocate ``nwords`` from ``obj`` to ``target`` (word stubs).

        The single-machine :func:`repro.core.relocate.relocate` is tied to
        the uniprocessor Machine API; this is its SMP twin, performed by
        one CPU whose cache sees all the traffic.
        """
        for index in range(nwords):
            old = obj + index * WORD_SIZE
            while self.memory.read_fbit(old):
                self.cycles[cpu] += self.system.access(cpu, old, False)
                old = self.memory.read_word(old)
            value = self.memory.read_word(old)
            self.cycles[cpu] += self.system.access(cpu, old, False)
            new = target + index * WORD_SIZE
            self.memory.write_word_tagged(new, value, 0)
            self.cycles[cpu] += self.system.access(cpu, new, True)
            self.memory.write_word_tagged(old, new, 1)
            self.cycles[cpu] += self.system.access(cpu, old, True)

    # ------------------------------------------------------------------
    @property
    def max_cycles(self) -> float:
        """Parallel execution time = the slowest CPU's clock."""
        return max(self.cycles)

    def coherence_misses(self) -> int:
        return self.system.total_coherence_misses()
