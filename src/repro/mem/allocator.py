"""Simulated heap allocator (the application-level ``malloc``/``free``).

Applications in this reproduction allocate their data structures from this
heap, exactly as the paper's C applications call ``malloc``.  Two
properties matter for fidelity:

* **Word alignment.**  Relocatable objects must be word aligned
  (Section 3.3), since a forwarding address needs a whole word.  The
  allocator aligns every block to at least 8 bytes.
* **Realistic scatter.**  Layout optimizations only help if the original
  layout is poor.  The allocator recycles freed blocks LIFO through
  segregated size-class free lists, so interleaved allocation across data
  structures -- plus churn -- produces the scattered layouts that make the
  paper's applications miss.

The allocator also guarantees that a returned block has all forwarding
bits clear (the OS/runtime initialisation duty from Section 3.3): a block
being recycled may have been the *source* of an earlier relocation and
still carry set bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import AllocationError, DoubleFreeError
from repro.core.memory import TaggedMemory, WORD_SIZE

#: Block sizes are rounded up to this granule, giving stable size classes.
SIZE_GRANULE = 16


@dataclass(slots=True)
class HeapStats:
    """Allocation counters and footprint tracking."""

    allocations: int = 0
    frees: int = 0
    bytes_allocated: int = 0
    bytes_freed: int = 0
    #: High-water mark of the bump pointer (fresh memory touched).
    high_water: int = 0
    #: Allocations served by recycling a freed block.
    recycled: int = 0

    @property
    def live_bytes(self) -> int:
        return self.bytes_allocated - self.bytes_freed


class HeapAllocator:
    """First-touch bump allocator with segregated LIFO free lists.

    Parameters
    ----------
    memory:
        Backing tagged memory (used to clear forwarding bits on reuse).
    base, size:
        The heap region within the simulated address space.  ``base`` must
        be word aligned and non-zero (address 0 is the simulated NULL).
    """

    def __init__(self, memory: TaggedMemory, base: int, size: int) -> None:
        if base <= 0 or base % WORD_SIZE:
            raise ValueError(f"heap base must be positive and word aligned: {base:#x}")
        memory.check_range(base, size)
        self.memory = memory
        self.base = base
        self.limit = base + size
        self._bump = base
        self._block_sizes: dict[int, int] = {}
        self._free_lists: dict[int, list[int]] = {}
        self.stats = HeapStats()

    # ------------------------------------------------------------------
    @staticmethod
    def _round_size(nbytes: int) -> int:
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        return (nbytes + SIZE_GRANULE - 1) // SIZE_GRANULE * SIZE_GRANULE

    def allocate(self, nbytes: int, align: int = WORD_SIZE) -> int:
        """Allocate ``nbytes`` (word aligned or stricter); returns address.

        The returned block is zeroed with clear forwarding bits.
        """
        if align < WORD_SIZE or align & (align - 1):
            raise ValueError(f"alignment must be a power-of-two >= {WORD_SIZE}")
        size = self._round_size(nbytes)
        free_list = self._free_lists.get(size)
        address = None
        if free_list and align <= SIZE_GRANULE:
            # LIFO reuse: most-recently freed block first (cache-friendly in
            # real allocators, and the source of layout churn here).
            address = free_list.pop()
            self.stats.recycled += 1
        if address is None:
            bump = (self._bump + align - 1) & ~(align - 1)
            if bump + size > self.limit:
                raise AllocationError(
                    f"heap exhausted: need {size} bytes, "
                    f"{self.limit - self._bump} available"
                )
            address = bump
            self._bump = bump + size
            self.stats.high_water = max(self.stats.high_water, self._bump - self.base)
        self.memory.clear_region(address, size)
        self._block_sizes[address] = size
        self.stats.allocations += 1
        self.stats.bytes_allocated += size
        return address

    def release(self, address: int) -> int:
        """Free the block at ``address``; returns its (rounded) size."""
        size = self._block_sizes.pop(address, None)
        if size is None:
            raise DoubleFreeError(address)
        self._free_lists.setdefault(size, []).append(address)
        self.stats.frees += 1
        self.stats.bytes_freed += size
        return size

    # ------------------------------------------------------------------
    def block_size(self, address: int) -> int | None:
        """Size of the live block starting at ``address``, if any."""
        return self._block_sizes.get(address)

    def owns(self, address: int) -> bool:
        """True if ``address`` is the base of a live heap block."""
        return address in self._block_sizes

    def live_blocks(self) -> int:
        return len(self._block_sizes)
