"""Heap compaction by relocation: the paper's GC heritage, usable in C.

Memory forwarding descends from copying garbage collectors (Section 1.2):
forwarding pointers let a collector move live objects while the mutator
still holds old addresses.  Collectors can do that only in languages that
can enumerate every pointer.  With hardware forwarding, the same
compaction becomes legal in C: relocate every live heap block into a
fresh contiguous region, update whatever pointers you *can* find, and let
the safety net catch the rest.

:class:`HeapCompactor` performs that relocation over the simulated
heap's live-block registry, in address order, so post-compaction blocks
sit in the same relative order but with zero fragmentation between them.
An optional root-update pass rewrites application-registered pointer
slots to final addresses (each fixed slot is one forwarding walk that
never has to happen again).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine import Machine, NULL
from repro.core.pointer_ops import final_address
from repro.core.relocate import relocate
from repro.mem.pool import RelocationPool


@dataclass
class CompactionResult:
    """What one compaction pass accomplished."""

    blocks_moved: int = 0
    bytes_moved: int = 0
    #: Pointer slots rewritten by the root-update pass.
    roots_updated: int = 0
    #: Address of the first relocated block (new region base).
    new_base: int = 0


class HeapCompactor:
    """Relocates all live heap blocks into a contiguous pool region.

    Parameters
    ----------
    machine:
        The simulated machine whose heap is compacted.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def live_blocks(self) -> list[tuple[int, int]]:
        """Live ``(address, size)`` pairs in address order."""
        heap = self.machine.heap
        return sorted(
            (address, heap.block_size(address))
            for address in list(heap._block_sizes)
        )

    def compact(
        self,
        pool: RelocationPool,
        roots: list[int] | None = None,
    ) -> CompactionResult:
        """Move every live block into ``pool``; optionally fix ``roots``.

        ``roots`` are addresses of pointer *slots* (words holding heap
        pointers) the application can enumerate -- after relocation each
        is rewritten to its target's final address.  Pointers the
        application cannot enumerate keep working through forwarding.
        """
        machine = self.machine
        result = CompactionResult()
        for address, size in self.live_blocks():
            target = pool.allocate(size)
            if result.blocks_moved == 0:
                result.new_base = target
            relocate(machine, address, target, size // 8)
            result.blocks_moved += 1
            result.bytes_moved += size
        if roots:
            for slot in roots:
                pointer = machine.load(slot)
                if pointer == NULL:
                    continue
                final = final_address(machine, pointer)
                if final != pointer:
                    machine.store(slot, final)
                    result.roots_updated += 1
        if machine.events is not None:
            machine.events.emit(
                "compact.pass",
                blocks=result.blocks_moved,
                bytes=result.bytes_moved,
                roots=result.roots_updated,
            )
        machine.note_optimizer_invocation()
        return result

    def fragmentation(self) -> float:
        """Fraction of the heap's used span that is dead space.

        0.0 means the live blocks are perfectly packed; values near 1.0
        mean the heap is mostly holes -- the situation compaction fixes.
        """
        blocks = self.live_blocks()
        if not blocks:
            return 0.0
        first = blocks[0][0]
        last = blocks[-1][0] + blocks[-1][1]
        live = sum(size for _, size in blocks)
        span = last - first
        return 1.0 - (live / span) if span else 0.0
