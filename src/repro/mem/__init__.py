"""Memory management substrate: heap allocator and relocation pools."""
