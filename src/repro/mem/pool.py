"""Contiguous relocation pools.

Section 3.1 / Figure 4(b) of the paper: list linearization (and the other
packing optimizations) allocate the *new* homes of relocated objects from
"a pool of contiguous memory, thereby creating spatial locality".  The
pool is the destination arena; its high-water mark is exactly the "Space
Overhead" column of Table 1 -- virtual memory consumed to hold relocated
copies while old locations are retained as forwarding stubs.

A pool is a simple bump allocator: consecutive requests return adjacent
addresses, which is the entire point.
"""

from __future__ import annotations

from repro.core.errors import AllocationError
from repro.core.memory import WORD_SIZE


class RelocationPool:
    """Bump allocator over a contiguous region of simulated memory."""

    #: Optional instrumentation callback ``(address, nbytes, align)``,
    #: installed by ``Machine.create_pool`` when an observer is attached
    #: so pool consumption appears in the machine's event stream.
    on_allocate = None

    def __init__(self, base: int, size: int, name: str = "pool") -> None:
        if base <= 0 or base % WORD_SIZE:
            raise ValueError(f"pool base must be positive and word aligned: {base:#x}")
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.name = name
        self.base = base
        self.limit = base + size
        self._bump = base
        self.high_water = 0
        self.allocations = 0

    def allocate(self, nbytes: int, align: int = WORD_SIZE) -> int:
        """Return the next ``nbytes`` chunk, word aligned (or stricter)."""
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        if align < WORD_SIZE or align & (align - 1):
            raise ValueError(f"alignment must be a power-of-two >= {WORD_SIZE}")
        address = (self._bump + align - 1) & ~(align - 1)
        size = (nbytes + WORD_SIZE - 1) & ~(WORD_SIZE - 1)
        if address + size > self.limit:
            raise AllocationError(
                f"relocation pool {self.name!r} exhausted: need {size} bytes, "
                f"{self.limit - self._bump} available"
            )
        self._bump = address + size
        self.allocations += 1
        self.high_water = max(self.high_water, self._bump - self.base)
        if self.on_allocate is not None:
            self.on_allocate(address, nbytes, align)
        return address

    @property
    def used_bytes(self) -> int:
        """Bytes consumed so far (the Table 1 space overhead)."""
        return self._bump - self.base

    @property
    def remaining_bytes(self) -> int:
        return self.limit - self._bump

    def contains(self, address: int) -> bool:
        """True if ``address`` lies within this pool's region."""
        return self.base <= address < self.limit
