"""Job objects and the bounded job table of the simulation service.

A :class:`Job` is the unit the service schedules: one validated spec,
one lifecycle (``queued -> running -> done | failed``), and -- because
identical requests coalesce -- possibly many waiting clients.  Jobs are
created on the event loop and mutated only from it; worker processes
never see them (they see picklable :class:`~repro.trace.sweep.SweepTask`
cells).

The :class:`JobTable` retains every live job plus a bounded history of
finished ones, evicting the oldest finished jobs first so a long-lived
service cannot grow without bound while ``GET /jobs/<id>`` keeps working
for recently completed work.

Since PR 9 a job is also a broadcast hub: ``GET /jobs/<id>/stream``
subscribers each get a bounded :class:`asyncio.Queue` the job publishes
its state transitions and live timeline windows into.  A slow consumer
never blocks the publisher -- events that don't fit are dropped and
counted (``stream_dropped``), except the terminal sentinel, which
displaces the oldest queued event so every subscriber always observes
the end of the stream.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.serve.protocol import JobSpec

#: Lifecycle states (terminal: done, failed).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_TERMINAL = (DONE, FAILED)

#: Per-subscriber stream queue bound; beyond it, events drop (counted).
STREAM_QUEUE_LIMIT = 256


@dataclass
class Job:
    """One scheduled simulation and everything observers can ask about it."""

    id: str
    spec: JobSpec
    state: str = QUEUED
    #: How the result was obtained: ``cached`` / ``captured`` /
    #: ``replayed`` (worker outcomes), plus ``coalesced`` recorded on the
    #: *submission* outcome of duplicate requests.
    how: str | None = None
    error: str | None = None
    #: Schema-validated /v3 run manifest, present once terminal.
    manifest: dict[str, Any] | None = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    #: Number of identical requests served by this job (>= 1).
    subscribers: int = 1
    #: Worker attempts consumed (crash recovery retries increment it).
    attempts: int = 0
    #: Request trace id (set by the service when tracing the job).
    trace_id: str | None = None
    #: The service-side Tracer assembling this job's span tree.
    tracer: Any = field(default=None, repr=False)
    #: The open ``serve.request`` root span (closed at completion).
    root_span: Any = field(default=None, repr=False)
    #: Wall-clock submission stamp (``time.time()``; ``submitted_at``
    #: is monotonic and useless for cross-process span layout).
    submitted_wall: float = field(default_factory=time.time)
    #: Stream accounting: events published / events dropped on full
    #: subscriber queues.
    stream_events: int = 0
    stream_dropped: int = 0
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)
    _watchers: list = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.state in _TERMINAL

    @property
    def latency_seconds(self) -> float | None:
        """Submission-to-completion wall time (None while in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    async def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; True iff it finished in time."""
        if self.finished:
            return True
        try:
            await asyncio.wait_for(self._done.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def start(self) -> None:
        """Transition to ``running`` (called by the scheduler's pop)."""
        self.state = RUNNING
        self.started_at = time.monotonic()
        self.publish({"event": "state", "state": RUNNING})

    def complete(self, how: str, manifest: dict[str, Any]) -> None:
        self.state = DONE
        self.how = how
        self.manifest = manifest
        self.finished_at = time.monotonic()
        self.publish({"event": "state", "state": DONE, "how": how})
        self._close_stream()
        self._done.set()

    def fail(self, error: str, manifest: dict[str, Any] | None = None) -> None:
        self.state = FAILED
        self.error = error
        self.manifest = manifest
        self.finished_at = time.monotonic()
        self.publish({"event": "state", "state": FAILED, "error": error})
        self._close_stream()
        self._done.set()

    # -- live streaming ------------------------------------------------
    def subscribe(self, maxsize: int = STREAM_QUEUE_LIMIT) -> asyncio.Queue:
        """A bounded queue this job's events will be published into."""
        queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self._watchers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._watchers.remove(queue)
        except ValueError:
            pass

    def publish(self, event: dict[str, Any]) -> None:
        """Broadcast ``event`` to every subscriber; drop, never block.

        Called from the event loop only (state transitions and the
        telemetry forwarder both live there).
        """
        if not self._watchers:
            return
        self.stream_events += 1
        for queue in self._watchers:
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                self.stream_dropped += 1

    def _close_stream(self) -> None:
        """Deliver the terminal sentinel to every subscriber, always.

        Unlike ordinary events the sentinel may displace the oldest
        queued event on a full queue -- a slow consumer loses data (and
        the drop is counted) but always learns the stream ended.
        """
        for queue in self._watchers:
            try:
                queue.put_nowait(None)
            except asyncio.QueueFull:
                try:
                    queue.get_nowait()
                    self.stream_dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - races only
                    pass
                try:
                    queue.put_nowait(None)
                except asyncio.QueueFull:  # pragma: no cover - races only
                    pass

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """The ``GET /jobs/<id>`` body (sans manifest for listings)."""
        out: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "cell": self.spec.cell_id,
            "subscribers": self.subscribers,
            "attempts": self.attempts,
        }
        if self.how is not None:
            out["how"] = self.how
        if self.error is not None:
            out["error"] = self.error
        if self.latency_seconds is not None:
            out["latency_seconds"] = round(self.latency_seconds, 6)
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.stream_events or self.stream_dropped:
            out["stream"] = {
                "events": self.stream_events,
                "dropped": self.stream_dropped,
            }
        return out


class JobTable:
    """Insertion-ordered job registry with bounded finished-job history."""

    def __init__(self, history_limit: int = 512) -> None:
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.history_limit = history_limit
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._ids = itertools.count(1)
        #: Stream accounting carried over from evicted jobs, so the
        #: service's cumulative counters survive history eviction.
        self.evicted_stream_events = 0
        self.evicted_stream_dropped = 0

    # -- stream accounting ---------------------------------------------
    @property
    def stream_events_total(self) -> int:
        return self.evicted_stream_events + sum(
            job.stream_events for job in self._jobs.values()
        )

    @property
    def stream_dropped_total(self) -> int:
        return self.evicted_stream_dropped + sum(
            job.stream_dropped for job in self._jobs.values()
        )

    def create(self, spec: JobSpec) -> Job:
        job = Job(id=f"job-{next(self._ids)}", spec=spec)
        self._jobs[job.id] = job
        self._evict()
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def _evict(self) -> None:
        # Live jobs are never evicted: the cap applies to terminal ones,
        # scanned oldest-first.
        excess = len(self._jobs) - self.history_limit
        if excess <= 0:
            return
        for job_id in [
            job_id
            for job_id, job in self._jobs.items()
            if job.finished
        ][:excess]:
            evicted = self._jobs.pop(job_id)
            self.evicted_stream_events += evicted.stream_events
            self.evicted_stream_dropped += evicted.stream_dropped
