"""Job objects and the bounded job table of the simulation service.

A :class:`Job` is the unit the service schedules: one validated spec,
one lifecycle (``queued -> running -> done | failed``), and -- because
identical requests coalesce -- possibly many waiting clients.  Jobs are
created on the event loop and mutated only from it; worker processes
never see them (they see picklable :class:`~repro.trace.sweep.SweepTask`
cells).

The :class:`JobTable` retains every live job plus a bounded history of
finished ones, evicting the oldest finished jobs first so a long-lived
service cannot grow without bound while ``GET /jobs/<id>`` keeps working
for recently completed work.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.serve.protocol import JobSpec

#: Lifecycle states (terminal: done, failed).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_TERMINAL = (DONE, FAILED)


@dataclass
class Job:
    """One scheduled simulation and everything observers can ask about it."""

    id: str
    spec: JobSpec
    state: str = QUEUED
    #: How the result was obtained: ``cached`` / ``captured`` /
    #: ``replayed`` (worker outcomes), plus ``coalesced`` recorded on the
    #: *submission* outcome of duplicate requests.
    how: str | None = None
    error: str | None = None
    #: Schema-validated /v2 run manifest, present once terminal.
    manifest: dict[str, Any] | None = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    #: Number of identical requests served by this job (>= 1).
    subscribers: int = 1
    #: Worker attempts consumed (crash recovery retries increment it).
    attempts: int = 0
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.state in _TERMINAL

    @property
    def latency_seconds(self) -> float | None:
        """Submission-to-completion wall time (None while in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    async def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; True iff it finished in time."""
        if self.finished:
            return True
        try:
            await asyncio.wait_for(self._done.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def complete(self, how: str, manifest: dict[str, Any]) -> None:
        self.state = DONE
        self.how = how
        self.manifest = manifest
        self.finished_at = time.monotonic()
        self._done.set()

    def fail(self, error: str, manifest: dict[str, Any] | None = None) -> None:
        self.state = FAILED
        self.error = error
        self.manifest = manifest
        self.finished_at = time.monotonic()
        self._done.set()

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """The ``GET /jobs/<id>`` body (sans manifest for listings)."""
        out: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "cell": self.spec.cell_id,
            "subscribers": self.subscribers,
            "attempts": self.attempts,
        }
        if self.how is not None:
            out["how"] = self.how
        if self.error is not None:
            out["error"] = self.error
        if self.latency_seconds is not None:
            out["latency_seconds"] = round(self.latency_seconds, 6)
        return out


class JobTable:
    """Insertion-ordered job registry with bounded finished-job history."""

    def __init__(self, history_limit: int = 512) -> None:
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.history_limit = history_limit
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._ids = itertools.count(1)

    def create(self, spec: JobSpec) -> Job:
        job = Job(id=f"job-{next(self._ids)}", spec=spec)
        self._jobs[job.id] = job
        self._evict()
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def _evict(self) -> None:
        # Live jobs are never evicted: the cap applies to terminal ones,
        # scanned oldest-first.
        excess = len(self._jobs) - self.history_limit
        if excess <= 0:
            return
        for job_id in [
            job_id
            for job_id, job in self._jobs.items()
            if job.finished
        ][:excess]:
            del self._jobs[job_id]
