"""repro.serve — the async simulation service (DESIGN.md §5e).

The serving tier over the trace/replay engine: a stdlib asyncio HTTP
JSON API (``python -m repro serve``) that accepts simulation cells,
dedupes them against the content-hashed artifact store, coalesces
identical in-flight requests, schedules cache-aware (warm replays before
cold captures), executes on a crash-tolerant process pool, and answers
with the same schema-validated ``repro.obs.manifest/v3`` documents the
batch CLI emits -- since PR 9 their span lists carry the request's full
causal trace (HTTP admission through worker-side replay), jobs stream
live telemetry over ``GET /jobs/<id>/stream``, and the registry renders
Prometheus text exposition at ``GET /metrics?format=prometheus``.
``python -m repro serve.bench`` is the load generator that pins service
throughput in ``benchmarks/BENCH_PR5.json`` (latency quantiles since
``BENCH_PR9.json``).
"""

from repro.serve.http import HttpServer, serve_main
from repro.serve.jobs import DONE, FAILED, QUEUED, RUNNING, Job, JobTable
from repro.serve.protocol import JobSpec, ProtocolError
from repro.serve.scheduler import QueueFull, Scheduler
from repro.serve.service import ServiceClosed, SimulationService
from repro.serve.workers import JobTimeout, WorkerPool

__all__ = [
    "DONE",
    "FAILED",
    "HttpServer",
    "Job",
    "JobSpec",
    "JobTable",
    "JobTimeout",
    "ProtocolError",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "Scheduler",
    "ServiceClosed",
    "SimulationService",
    "WorkerPool",
    "serve_main",
]
