"""Coalescing, cache-aware job scheduling for the simulation service.

Three policies live here, all keyed off the content-hash identities the
trace subsystem already defines:

**Coalescing.**  Jobs are indexed by :attr:`JobSpec.job_key` while
queued or running; a second identical submission attaches to the
in-flight job (one more subscriber) instead of consuming a queue slot or
a worker.  N identical concurrent requests for an uncached cell trigger
exactly one simulation.

**Backpressure.**  The queue is bounded.  A submission that would exceed
the bound raises :class:`QueueFull`, which the HTTP layer turns into
``429 Retry-After`` -- the service sheds load explicitly rather than
letting latency grow without limit.

**Cache-aware ordering.**  The pop order is not FIFO.  Jobs whose
reference stream is already captured (their trace key is in the store)
are *warm* -- replay-only, cheap -- and run before cold captures, so a
burst of mixed traffic drains the fast majority first.  Cold jobs are
additionally gated per trace key: while one worker captures a stream,
other queued cells needing the same stream are held back; when the
capture lands they have become warm replays.  Concurrent workers
therefore never duplicate a capture, which is the expensive half of
capture-once-replay-many.

Everything here runs on the event loop; worker processes never touch the
scheduler.
"""

from __future__ import annotations

import asyncio
from repro.serve.jobs import Job
from repro.trace.store import ArtifactStore


class QueueFull(Exception):
    """The bounded job queue is at capacity (maps to HTTP 429)."""

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(f"job queue full ({depth} queued)")
        self.depth = depth
        self.retry_after = retry_after


class Scheduler:
    """Bounded, coalescing job queue with cache-aware pop order."""

    def __init__(
        self,
        store: ArtifactStore,
        queue_limit: int = 64,
        retry_after: float = 1.0,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.store = store
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        #: Queued jobs in submission order, with their trace keys.
        self._queue: list[tuple[Job, str]] = []
        #: job_key -> queued-or-running job (the coalescing index).
        self._inflight: dict[str, Job] = {}
        #: Trace keys known to be captured (probed once, then remembered).
        self._warm: set[str] = set()
        #: Trace keys currently being captured by a running job.
        self._capturing: set[str] = set()
        self._wakeup = asyncio.Event()

    # -- introspection (bound into the metrics registry) ----------------
    @property
    def depth(self) -> int:
        """Number of queued (not yet running) jobs."""
        return len(self._queue)

    @property
    def inflight(self) -> int:
        """Queued + running jobs (coalesced duplicates count once)."""
        return len(self._inflight)

    # ------------------------------------------------------------------
    def coalesce(self, job_key: str) -> Job | None:
        """Attach to an identical queued-or-running job, if one exists."""
        existing = self._inflight.get(job_key)
        if existing is not None:
            existing.subscribers += 1
        return existing

    def submit(self, job_factory, job_key: str) -> tuple[Job, str]:
        """Admit one request; returns ``(job, outcome)``.

        ``outcome`` is ``"queued"`` for a new job or ``"coalesced"``
        when the request attached to an identical in-flight job.
        ``job_factory`` is only invoked on admission, so rejected
        requests allocate nothing.
        """
        existing = self.coalesce(job_key)
        if existing is not None:
            return existing, "coalesced"
        if len(self._queue) >= self.queue_limit:
            raise QueueFull(len(self._queue), self.retry_after)
        job = job_factory()
        self._inflight[job_key] = job
        self._queue.append((job, job.spec.task().key()))
        self._wakeup.set()
        return job, "queued"

    async def pop(self) -> Job:
        """Next runnable job, preferring warm (replay-only) cells.

        Blocks while the queue is empty or every queued job is gated
        behind an in-flight capture of its own stream.
        """
        while True:
            picked = self._pick()
            if picked is not None:
                return picked
            # No await between _pick() and clear(): any submission or
            # completion that could make a job runnable happens on this
            # same loop and will set the event after we start waiting.
            self._wakeup.clear()
            await self._wakeup.wait()

    async def pop_batch(self) -> list[Job]:
        """Next runnable job plus every queued job sharing its stream.

        The fold is what makes one worker round-trip serve a whole
        trace-key group: the extra jobs would otherwise either wait out
        the leader's capture (cold) or each re-load and re-decode the
        same stream (warm).  Every returned job is already RUNNING; the
        caller owns their completion.  Cold leaders keep the per-key
        capture gate: jobs folded into the batch are exactly the ones
        the gate used to hold back.
        """
        leader = await self.pop()
        batch = [leader]
        key = leader.spec.task().key()
        index = 0
        while index < len(self._queue):
            if self._queue[index][1] == key:
                batch.append(self._start(index))
            else:
                index += 1
        return batch

    def _pick(self) -> Job | None:
        cold_index = None
        for index, (job, trace_key) in enumerate(self._queue):
            if self._is_warm(trace_key):
                return self._start(index)
            if cold_index is None and trace_key not in self._capturing:
                cold_index = index
        if cold_index is not None:
            _, trace_key = self._queue[cold_index]
            self._capturing.add(trace_key)
            return self._start(cold_index)
        return None

    def _start(self, index: int) -> Job:
        job, _ = self._queue.pop(index)
        # Job.start() owns the transition so stream subscribers see the
        # queued -> running edge the moment the scheduler hands it out.
        job.start()
        return job

    def _is_warm(self, trace_key: str) -> bool:
        if trace_key in self._warm:
            return True
        if self.store.has_trace(trace_key):
            self._warm.add(trace_key)
            return True
        return False

    # ------------------------------------------------------------------
    def finished(self, job: Job, *, captured: bool) -> None:
        """Release a completed (or failed) job's scheduling state.

        ``captured=True`` marks the job's stream warm, releasing any
        cells queued behind its capture into the warm fast path; a
        failed capture merely lifts the gate so another job may retry
        the stream.
        """
        trace_key = job.spec.task().key()
        self._inflight.pop(job.spec.job_key, None)
        self._capturing.discard(trace_key)
        if captured:
            self._warm.add(trace_key)
        self._wakeup.set()
