"""Stdlib asyncio HTTP front end of the simulation service.

A deliberately small HTTP/1.1 server (``asyncio.start_server`` plus a
hand-rolled request parser -- the standard library has no async HTTP
server) exposing the JSON API:

======= ====================== ==========================================
POST    ``/jobs``              submit a job spec; ``200`` when served
                               warm from the cache (body carries the
                               manifest), ``202`` when queued or
                               coalesced, ``400`` on a bad spec,
                               ``429 + Retry-After`` under backpressure,
                               ``503`` while draining.
GET     ``/jobs``              list known jobs (no manifests).
GET     ``/jobs/<id>``         job status; terminal jobs include the
                               schema-validated ``/v3`` manifest (spans
                               carry the request's causal trace).
                               Optional ``?wait=SECONDS`` long-polls.
GET     ``/jobs/<id>/stream``  server-sent events: state transitions
                               plus live per-window timeline deltas
                               while the simulation runs; ends with an
                               ``end`` event carrying drop accounting.
GET     ``/metrics``           live registry snapshot + derived p50/p99;
                               ``?format=prometheus`` renders text
                               exposition format instead.
GET     ``/healthz``           liveness and queue headroom.
======= ====================== ==========================================

Connections are keep-alive; bodies are JSON both ways, except the SSE
stream (``text/event-stream``, one connection per consumer, closed at
job completion) and the Prometheus exposition (plain text).  ``SIGTERM``
and ``SIGINT`` trigger a graceful drain: in-flight jobs finish, new
submissions get ``503``, then the loop exits.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.core.debug import get_logger
from repro.obs.logging import configure_logging
from repro.serve.protocol import ProtocolError
from repro.serve.scheduler import QueueFull
from repro.serve.service import ServiceClosed, SimulationService

_log = get_logger("serve.http")

#: Submissions larger than this are rejected outright (413).
MAX_BODY_BYTES = 1 << 20
#: Per-request header/body read budget.
READ_TIMEOUT = 30.0
#: Cap on ``?wait=`` long-polls so clients cannot pin connections.
MAX_WAIT_SECONDS = 30.0
#: SSE keep-alive comment cadence while a job is quiet.
SSE_HEARTBEAT_SECONDS = 15.0


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Raw:
    """A non-JSON response body (Prometheus text exposition)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


def _response(
    status: int,
    body: "dict[str, Any] | _Raw",
    headers: dict[str, str] | None = None,
) -> bytes:
    if isinstance(body, _Raw):
        payload = body.text.encode("utf-8")
        content_type = body.content_type
    else:
        payload = json.dumps(body).encode("utf-8")
        content_type = "application/json"
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload


def _sse_event(payload: dict[str, Any]) -> bytes:
    return f"data: {json.dumps(payload)}\n\n".encode("utf-8")


class HttpServer:
    """The asyncio server wrapping one :class:`SimulationService`."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 8321,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None

    @property
    def port(self) -> int:
        """The actually bound port (after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        _log.info("serving on http://%s:%d", self.host, self.port)

    async def stop(self, drain_timeout: float | None = 30.0) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain(drain_timeout)

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # Server shutting down mid-connection: just close the socket.
            pass
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
        ):
            pass
        except Exception:  # pragma: no cover - defensive
            _log.exception("connection handler failed")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await asyncio.wait_for(
            reader.readline(), READ_TIMEOUT
        )
        if not request_line:
            return False
        try:
            method, target, version = (
                request_line.decode("ascii").strip().split(" ", 2)
            )
        except (UnicodeDecodeError, ValueError):
            writer.write(_response(400, {"error": "malformed request line"}))
            await writer.drain()
            return False

        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), READ_TIMEOUT)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                size = int(length)
            except ValueError:
                size = -1
            if size < 0 or size > MAX_BODY_BYTES:
                writer.write(
                    _response(413, {"error": "unreadable or oversized body"})
                )
                await writer.drain()
                return False
            if size:
                body = await asyncio.wait_for(
                    reader.readexactly(size), READ_TIMEOUT
                )
        elif headers.get("transfer-encoding"):
            writer.write(
                _response(400, {"error": "chunked bodies are not supported"})
            )
            await writer.drain()
            return False

        # The SSE stream owns the connection: it writes its own head and
        # events until the job completes, then closes.
        stream_path = urlsplit(target).path.rstrip("/")
        if method == "GET" and stream_path.startswith("/jobs/") and (
            stream_path.endswith("/stream")
        ):
            job_id = stream_path[len("/jobs/"):-len("/stream")]
            await self._stream_job(job_id, writer)
            return False

        try:
            status, payload, extra = await self._dispatch(method, target, body)
        except _HttpError as exc:
            status, payload, extra = exc.status, {"error": str(exc)}, exc.headers
        except Exception:  # pragma: no cover - defensive
            _log.exception("request %s %s failed", method, target)
            status, payload, extra = 500, {"error": "internal error"}, {}

        wants_close = (
            headers.get("connection", "").lower() == "close"
            or version == "HTTP/1.0"
        )
        response_headers = dict(extra)
        response_headers["Connection"] = "close" if wants_close else "keep-alive"
        writer.write(_response(status, payload, response_headers))
        await writer.drain()
        return not wants_close

    # -- routing --------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)

        if path == "/healthz":
            self._require(method, "GET")
            return 200, self.service.healthz(), {}
        if path == "/metrics":
            self._require(method, "GET")
            fmt = query.get("format", ["json"])[0]
            if fmt == "prometheus":
                return (
                    200,
                    _Raw(
                        self.service.prometheus_payload(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    ),
                    {},
                )
            if fmt != "json":
                raise _HttpError(400, f"unknown metrics format {fmt!r}")
            return 200, self.service.metrics_payload(), {}
        if path == "/jobs":
            if method == "POST":
                return await self._submit(body)
            self._require(method, "GET")
            return (
                200,
                {"jobs": [job.describe() for job in self.service.table.jobs()]},
                {},
            )
        if path.startswith("/jobs/"):
            self._require(method, "GET")
            return await self._job_status(path[len("/jobs/"):], query)
        raise _HttpError(404, f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    async def _submit(
        self, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        try:
            payload = json.loads(body or b"null")
        except ValueError as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        try:
            job, outcome = await self.service.submit(payload)
        except ProtocolError as exc:
            raise _HttpError(400, str(exc)) from exc
        except QueueFull as exc:
            raise _HttpError(
                429, str(exc), {"Retry-After": f"{exc.retry_after:g}"}
            ) from exc
        except ServiceClosed as exc:
            raise _HttpError(503, str(exc), {"Retry-After": "5"}) from exc
        described = job.describe()
        described["outcome"] = outcome
        if job.finished:
            described["manifest"] = job.manifest
            return 200, described, {}
        return 202, described, {}

    async def _job_status(
        self, job_id: str, query: dict[str, list[str]]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        job = self.service.table.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        if "wait" in query:
            try:
                wait = float(query["wait"][0])
            except (ValueError, IndexError):
                raise _HttpError(400, "wait must be a number") from None
            await job.wait(min(max(wait, 0.0), MAX_WAIT_SECONDS))
        described = job.describe()
        if job.finished:
            described["manifest"] = job.manifest
        return 200, described, {}

    async def _stream_job(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """Serve ``GET /jobs/<id>/stream`` as server-sent events.

        The subscriber gets an initial ``state`` event, then everything
        the job publishes (state transitions, live timeline windows)
        until its terminal sentinel, then one ``end`` event carrying the
        job's drop count.  Quiet stretches are bridged with comment
        heartbeats so proxies don't reap the connection.
        """
        job = self.service.table.get(job_id)
        if job is None:
            writer.write(
                _response(
                    404,
                    {"error": f"unknown job {job_id!r}"},
                    {"Connection": "close"},
                )
            )
            await writer.drain()
            return
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
        )
        events = job.subscribe()
        try:
            initial: dict[str, Any] = {
                "event": "state",
                "state": job.state,
                "job": job.id,
            }
            if job.trace_id is not None:
                initial["trace_id"] = job.trace_id
            writer.write(_sse_event(initial))
            await writer.drain()
            while not job.finished or not events.empty():
                try:
                    event = await asyncio.wait_for(
                        events.get(), SSE_HEARTBEAT_SECONDS
                    )
                except asyncio.TimeoutError:
                    writer.write(b": heartbeat\n\n")
                    await writer.drain()
                    continue
                if event is None:
                    break
                writer.write(_sse_event(event))
                await writer.drain()
            writer.write(
                _sse_event({"event": "end", "dropped": job.stream_dropped})
            )
            await writer.drain()
        finally:
            job.unsubscribe(events)


# ----------------------------------------------------------------------
async def _serve(args: argparse.Namespace) -> int:
    service = SimulationService(
        trace_dir=args.trace_dir,
        workers=max(args.workers, 1),
        mode="thread" if args.workers == 0 else "process",
        queue_limit=args.queue_limit,
        job_timeout=args.job_timeout,
        max_retries=args.max_retries,
        batch=args.batch,
    )
    server = HttpServer(service, host=args.host, port=args.port)
    await server.start()
    print(f"repro serve: listening on http://{args.host}:{server.port}")

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await stop.wait()
    print("repro serve: draining ...")
    await server.stop(args.drain_timeout)
    print("repro serve: drained, bye")
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    """``python -m repro serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Long-lived simulation service over the trace/replay "
        "engine (submit cells over HTTP, results are /v3 run manifests).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes (0 = in-process threads; default 2)",
    )
    parser.add_argument(
        "--trace-dir", default="results/trace-cache", metavar="DIR",
        help="shared artifact store root (default results/trace-cache)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="bounded queue depth before 429s (default 64)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=300.0, metavar="SECONDS",
        help="per-job wall-clock budget (default 300)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=1, metavar="N",
        help="retries after a worker crash (default 1)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="graceful-drain budget on SIGTERM (default 30)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress logging"
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="structured-log level (DEBUG/INFO/...; also via "
             "REPRO_LOG_LEVEL; default INFO unless --quiet)",
    )
    parser.add_argument(
        "--no-batch", dest="batch", action="store_false", default=True,
        help="run every job individually instead of folding queued jobs "
             "that share a reference stream into one batch",
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.queue_limit < 1:
        parser.error("--queue-limit must be >= 1")
    if args.job_timeout <= 0:
        parser.error("--job-timeout must be > 0")
    if not args.quiet:
        try:
            configure_logging(args.log_level)
        except ValueError as exc:
            parser.error(str(exc))
    return asyncio.run(_serve(args))
