"""The worker tier: simulation cells executed off the event loop.

Workers run :func:`repro.trace.sweep.run_task` -- the same
capture-once-replay-many cell executor the batch sweeps use -- against
the service's shared artifact store, so everything the batch path
learned (traces, replayed results) is immediately visible to the
service and vice versa.

Two executor kinds:

* ``process`` (the default): a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Workers coordinate with each other and with any concurrent batch runs
  purely through the store's atomic writes and capture locks.
* ``thread``: a thread pool.  ``--workers 0`` and the test suite use it;
  simulation cells share no mutable state, so threads are correct, just
  GIL-bound.

Observability (PR 9) crosses the pool boundary in both directions:

* *into* the worker, a serialized :class:`~repro.obs.tracing.SpanContext`
  per cell.  The worker builds a child :class:`~repro.obs.tracing.Tracer`
  from it, wraps the cell in a ``worker.execute`` span, and ships the
  completed span dicts back in the return value, where the service
  splices them under its ``serve.execute`` span;
* *out of* the worker, live timeline windows.  Cells with sampling
  enabled push ``(token, window_dict)`` tuples onto a bounded telemetry
  queue (a ``Manager().Queue`` proxy for process pools -- a plain
  ``multiprocessing.Queue`` is not picklable as a task argument -- or a
  ``queue.Queue`` for thread pools) which the service drains into SSE
  subscribers.  Pushes never block and never raise: a full queue or a
  torn-down manager just drops the window.

Robustness contract:

* A worker exception fails that job only; the pool keeps serving.
* A crashed worker process (:class:`~concurrent.futures.BrokenExecutor`)
  rebuilds the pool and retries the job up to ``max_retries`` times.
* A job exceeding ``job_timeout`` fails with :class:`JobTimeout`.  The
  abandoned cell keeps running to completion in its worker (process
  pools cannot interrupt a running call) but every simulation is finite
  and its eventual store writes are atomic, so the only cost is the
  transiently occupied slot.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import queue
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any

from repro.apps.base import AppResult
from repro.core.debug import get_logger
from repro.obs.logging import (
    ROOT_LOGGER_NAME,
    AtomicLineHandler,
    trace_context,
    worker_init,
)
from repro.obs.tracing import SpanContext, Tracer
from repro.trace.batch import run_batch_group
from repro.trace.store import ArtifactStore
from repro.trace.sweep import SweepTask, run_task

_log = get_logger("serve.workers")

#: Bound on the shared worker->service telemetry queue.  Sized for
#: bursts (every sampled cell in a batch closing windows at once);
#: overflow drops windows at the source, never blocks a simulation.
TELEMETRY_QUEUE_LIMIT = 1024


class JobTimeout(Exception):
    """A job exceeded the per-job wall-clock budget."""


def _window_pusher(telemetry: Any, token: str):
    """A drop-never-block callback pushing ``(token, window)`` tuples.

    Best-effort by design: a full queue (slow service loop) or a dead
    manager (service shutting down mid-job) silently drops the window
    -- live telemetry must never fail or stall a simulation.
    """

    def push(window: dict) -> None:
        try:
            telemetry.put_nowait((token, window))
        except (queue.Full, OSError, EOFError):
            pass

    return push


def _execute(
    task: SweepTask,
    store_root: str,
    ctx: dict | None = None,
    telemetry: Any = None,
    token: str | None = None,
) -> tuple[AppResult, str, list[dict] | None]:
    """Pool entry point (module-level, hence picklable).

    Cold cells take the store's capture lock so concurrent *processes*
    (multiple serve instances, or serve next to a batch sweep, sharing
    one ``--trace-dir``) never duplicate a capture: the loser of the
    race waits, then finds the trace warm and replays.

    With ``ctx`` set the cell runs under a child tracer joined to the
    service's trace; the third element of the return value carries the
    completed span dicts (``None`` when untraced).
    """
    store = ArtifactStore(store_root)
    key = task.key()
    tracer = Tracer(parent=SpanContext.from_wire(ctx)) if ctx is not None else None
    on_window = (
        _window_pusher(telemetry, token)
        if telemetry is not None and token is not None
        else None
    )

    def _run() -> tuple[AppResult, str]:
        if not store.has_trace(key):
            with store.capture_lock(key):
                return run_task(task, store, tracer=tracer, on_window=on_window)
        return run_task(task, store, tracer=tracer, on_window=on_window)

    if tracer is None:
        result, how = _run()
        return result, how, None
    with trace_context(tracer.trace_id):
        with tracer.span("worker.execute"):
            result, how = _run()
    return result, how, tracer.to_list()


def _execute_batch(
    tasks: list[SweepTask],
    store_root: str,
    ctxs: dict[SweepTask, dict] | None = None,
    telemetry: Any = None,
    tokens: dict[SweepTask, str] | None = None,
) -> list[tuple[SweepTask, AppResult | None, str, str, str | None, list[dict] | None]]:
    """Pool entry point for a trace-sharing batch group (picklable).

    Same capture-lock discipline as :func:`_execute`, with the whole
    group behind one lock: the stream is captured (or loaded) once and
    every config replays against the shared decoded stream.  Returns
    plain-data ``(task, result, how, engine, error_message, spans)``
    tuples -- per-cell failures come back as data rather than a raised
    exception, because the jobs folded into a batch must fail
    individually on the service side, not collectively.

    ``ctxs``/``tokens`` are per-task maps (tasks are frozen dataclasses,
    hence hashable and stable across the pickle boundary).  Each traced
    cell gets its own child tracer with a ``worker.execute`` root span
    bracketing the shared group run.
    """
    store = ArtifactStore(store_root)
    key = tasks[0].key()
    tracers: dict[SweepTask, Tracer] = {}
    roots: dict[SweepTask, Any] = {}
    if ctxs:
        for task, wire in ctxs.items():
            tracer = Tracer(parent=SpanContext.from_wire(wire))
            tracers[task] = tracer
            roots[task] = tracer.begin("worker.execute")

    on_window = None
    if telemetry is not None and tokens:
        pushers = {
            task: _window_pusher(telemetry, token)
            for task, token in tokens.items()
        }

        def on_window(task: SweepTask, window: dict) -> None:
            push = pushers.get(task)
            if push is not None:
                push(window)

    try:
        if not store.has_trace(key):
            with store.capture_lock(key):
                outcomes = run_batch_group(
                    tasks, store, collect_errors=True,
                    tracers=tracers or None, on_window=on_window,
                )
        else:
            outcomes = run_batch_group(
                tasks, store, collect_errors=True,
                tracers=tracers or None, on_window=on_window,
            )
    finally:
        for task, tracer in tracers.items():
            tracer.end(roots[task])
    return [
        (
            outcome.task,
            outcome.result,
            outcome.how,
            outcome.engine,
            outcome.error.message if outcome.error is not None else None,
            tracers[outcome.task].to_list() if outcome.task in tracers else None,
        )
        for outcome in outcomes
    ]


class WorkerPool:
    """Bounded executor of sweep cells with timeout and crash recovery."""

    def __init__(
        self,
        store_root: str,
        workers: int = 2,
        mode: str = "process",
        job_timeout: float = 300.0,
        max_retries: int = 1,
    ) -> None:
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown worker mode {mode!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store_root = store_root
        self.workers = workers
        self.mode = mode
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        #: Pool rebuilds after worker crashes (exported as a metric).
        self.restarts = 0
        self._telemetry: Any = None
        self._manager: Any = None
        self._pool = self._make_pool()

    def _make_pool(self):
        if self.mode == "thread":
            return ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-serve"
            )
        # Spawned workers inherit nothing from the parent logger tree;
        # repeat the structured-logging setup there iff the parent has
        # it, so worker log lines match (and never tear).
        logger = logging.getLogger(ROOT_LOGGER_NAME)
        if any(isinstance(h, AtomicLineHandler) for h in logger.handlers):
            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=worker_init,
                initargs=(logger.getEffectiveLevel(),),
            )
        return ProcessPoolExecutor(max_workers=self.workers)

    # -- live telemetry -------------------------------------------------
    def telemetry_queue(self) -> Any:
        """The shared worker->service window queue (created on demand).

        Thread pools use a plain :class:`queue.Queue`; process pools a
        ``Manager().Queue`` proxy, the only stdlib queue that can ride
        along as a *task argument* through an executor's pickle step.
        Both are lazy: a service that never streams pays nothing.
        """
        if self._telemetry is None:
            if self.mode == "thread":
                self._telemetry = queue.Queue(maxsize=TELEMETRY_QUEUE_LIMIT)
            else:
                self._manager = multiprocessing.Manager()
                self._telemetry = self._manager.Queue(TELEMETRY_QUEUE_LIMIT)
        return self._telemetry

    def _submit(
        self, task: SweepTask, ctx: dict | None, token: str | None
    ) -> Future:
        telemetry = self._telemetry if token is not None else None
        return self._pool.submit(
            _execute, task, self.store_root, ctx, telemetry, token
        )

    def _submit_batch(
        self,
        tasks: list[SweepTask],
        ctxs: dict[SweepTask, dict] | None,
        tokens: dict[SweepTask, str] | None,
    ) -> Future:
        telemetry = self._telemetry if tokens else None
        return self._pool.submit(
            _execute_batch, tasks, self.store_root, ctxs, telemetry, tokens
        )

    # ------------------------------------------------------------------
    async def run(
        self,
        task: SweepTask,
        *,
        ctx: dict | None = None,
        token: str | None = None,
    ) -> tuple[AppResult, str, list[dict] | None, int]:
        """Execute one cell; returns ``(result, how, spans, attempts)``.

        Raises :class:`JobTimeout` on budget overrun and re-raises the
        worker's own exception for genuine simulation failures.  Pool
        crashes are absorbed: the pool is rebuilt and the cell retried
        up to ``max_retries`` times before the crash surfaces.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                future = self._submit(task, ctx, token)
                result, how, spans = await asyncio.wait_for(
                    asyncio.wrap_future(future), self.job_timeout
                )
                return result, how, spans, attempts
            except asyncio.TimeoutError:
                future.cancel()
                raise JobTimeout(
                    f"cell {task.app}/{task.line_size}B/{task.variant} "
                    f"exceeded {self.job_timeout:.0f}s budget"
                ) from None
            except BrokenExecutor as exc:
                self.restarts += 1
                _log.warning(
                    "worker pool broke running %s (%s); rebuilding "
                    "(attempt %d/%d)",
                    task.app,
                    exc,
                    attempts,
                    self.max_retries + 1,
                )
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = self._make_pool()
                if attempts > self.max_retries:
                    raise

    async def run_batch(
        self,
        tasks: list[SweepTask],
        *,
        ctxs: dict[SweepTask, dict] | None = None,
        tokens: dict[SweepTask, str] | None = None,
    ) -> tuple[
        list[
            tuple[
                SweepTask, AppResult | None, str, str, str | None,
                list[dict] | None,
            ]
        ],
        int,
    ]:
        """Execute one trace-sharing group; returns ``(outcomes, attempts)``.

        ``outcomes`` mirrors :func:`_execute_batch`'s tuples, so per-cell
        failures arrive as data.  Timeout and crash handling match
        :meth:`run` with the group as the unit: a budget overrun or an
        exhausted-retry pool crash fails every cell in the batch.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                future = self._submit_batch(tasks, ctxs, tokens)
                outcomes = await asyncio.wait_for(
                    asyncio.wrap_future(future), self.job_timeout
                )
                return outcomes, attempts
            except asyncio.TimeoutError:
                future.cancel()
                lead = tasks[0]
                raise JobTimeout(
                    f"batch of {len(tasks)} cells for {lead.app} "
                    f"(scale={lead.scale}, seed={lead.seed}) exceeded "
                    f"{self.job_timeout:.0f}s budget"
                ) from None
            except BrokenExecutor as exc:
                self.restarts += 1
                _log.warning(
                    "worker pool broke running a %d-cell batch for %s "
                    "(%s); rebuilding (attempt %d/%d)",
                    len(tasks),
                    tasks[0].app,
                    exc,
                    attempts,
                    self.max_retries + 1,
                )
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = self._make_pool()
                if attempts > self.max_retries:
                    raise

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
            self._telemetry = None
