"""The worker tier: simulation cells executed off the event loop.

Workers run :func:`repro.trace.sweep.run_task` -- the same
capture-once-replay-many cell executor the batch sweeps use -- against
the service's shared artifact store, so everything the batch path
learned (traces, replayed results) is immediately visible to the
service and vice versa.

Two executor kinds:

* ``process`` (the default): a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Workers coordinate with each other and with any concurrent batch runs
  purely through the store's atomic writes and capture locks.
* ``thread``: a thread pool.  ``--workers 0`` and the test suite use it;
  simulation cells share no mutable state, so threads are correct, just
  GIL-bound.

Robustness contract:

* A worker exception fails that job only; the pool keeps serving.
* A crashed worker process (:class:`~concurrent.futures.BrokenExecutor`)
  rebuilds the pool and retries the job up to ``max_retries`` times.
* A job exceeding ``job_timeout`` fails with :class:`JobTimeout`.  The
  abandoned cell keeps running to completion in its worker (process
  pools cannot interrupt a running call) but every simulation is finite
  and its eventual store writes are atomic, so the only cost is the
  transiently occupied slot.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

from repro.apps.base import AppResult
from repro.core.debug import get_logger
from repro.trace.batch import run_batch_group
from repro.trace.store import ArtifactStore
from repro.trace.sweep import SweepTask, run_task

_log = get_logger("serve.workers")


class JobTimeout(Exception):
    """A job exceeded the per-job wall-clock budget."""


def _execute(task: SweepTask, store_root: str) -> tuple[AppResult, str]:
    """Pool entry point (module-level, hence picklable).

    Cold cells take the store's capture lock so concurrent *processes*
    (multiple serve instances, or serve next to a batch sweep, sharing
    one ``--trace-dir``) never duplicate a capture: the loser of the
    race waits, then finds the trace warm and replays.
    """
    store = ArtifactStore(store_root)
    key = task.key()
    if not store.has_trace(key):
        with store.capture_lock(key):
            result, how = run_task(task, store)
    else:
        result, how = run_task(task, store)
    return result, how


def _execute_batch(
    tasks: list[SweepTask], store_root: str
) -> list[tuple[SweepTask, AppResult | None, str, str, str | None]]:
    """Pool entry point for a trace-sharing batch group (picklable).

    Same capture-lock discipline as :func:`_execute`, with the whole
    group behind one lock: the stream is captured (or loaded) once and
    every config replays against the shared decoded stream.  Returns
    plain-data ``(task, result, how, engine, error_message)`` tuples --
    per-cell failures come back as data rather than a raised exception,
    because the jobs folded into a batch must fail individually on the
    service side, not collectively.
    """
    store = ArtifactStore(store_root)
    key = tasks[0].key()
    if not store.has_trace(key):
        with store.capture_lock(key):
            outcomes = run_batch_group(tasks, store, collect_errors=True)
    else:
        outcomes = run_batch_group(tasks, store, collect_errors=True)
    return [
        (
            outcome.task,
            outcome.result,
            outcome.how,
            outcome.engine,
            outcome.error.message if outcome.error is not None else None,
        )
        for outcome in outcomes
    ]


class WorkerPool:
    """Bounded executor of sweep cells with timeout and crash recovery."""

    def __init__(
        self,
        store_root: str,
        workers: int = 2,
        mode: str = "process",
        job_timeout: float = 300.0,
        max_retries: int = 1,
    ) -> None:
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown worker mode {mode!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store_root = store_root
        self.workers = workers
        self.mode = mode
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        #: Pool rebuilds after worker crashes (exported as a metric).
        self.restarts = 0
        self._pool = self._make_pool()

    def _make_pool(self):
        if self.mode == "thread":
            return ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-serve"
            )
        return ProcessPoolExecutor(max_workers=self.workers)

    def _submit(self, task: SweepTask) -> Future:
        return self._pool.submit(_execute, task, self.store_root)

    def _submit_batch(self, tasks: list[SweepTask]) -> Future:
        return self._pool.submit(_execute_batch, tasks, self.store_root)

    # ------------------------------------------------------------------
    async def run(self, task: SweepTask) -> tuple[AppResult, str, int]:
        """Execute one cell; returns ``(result, how, attempts)``.

        Raises :class:`JobTimeout` on budget overrun and re-raises the
        worker's own exception for genuine simulation failures.  Pool
        crashes are absorbed: the pool is rebuilt and the cell retried
        up to ``max_retries`` times before the crash surfaces.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                future = self._submit(task)
                result, how = await asyncio.wait_for(
                    asyncio.wrap_future(future), self.job_timeout
                )
                return result, how, attempts
            except asyncio.TimeoutError:
                future.cancel()
                raise JobTimeout(
                    f"cell {task.app}/{task.line_size}B/{task.variant} "
                    f"exceeded {self.job_timeout:.0f}s budget"
                ) from None
            except BrokenExecutor as exc:
                self.restarts += 1
                _log.warning(
                    "worker pool broke running %s (%s); rebuilding "
                    "(attempt %d/%d)",
                    task.app,
                    exc,
                    attempts,
                    self.max_retries + 1,
                )
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = self._make_pool()
                if attempts > self.max_retries:
                    raise

    async def run_batch(
        self, tasks: list[SweepTask]
    ) -> tuple[list[tuple[SweepTask, AppResult | None, str, str, str | None]], int]:
        """Execute one trace-sharing group; returns ``(outcomes, attempts)``.

        ``outcomes`` mirrors :func:`_execute_batch`'s tuples, so per-cell
        failures arrive as data.  Timeout and crash handling match
        :meth:`run` with the group as the unit: a budget overrun or an
        exhausted-retry pool crash fails every cell in the batch.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                future = self._submit_batch(tasks)
                outcomes = await asyncio.wait_for(
                    asyncio.wrap_future(future), self.job_timeout
                )
                return outcomes, attempts
            except asyncio.TimeoutError:
                future.cancel()
                lead = tasks[0]
                raise JobTimeout(
                    f"batch of {len(tasks)} cells for {lead.app} "
                    f"(scale={lead.scale}, seed={lead.seed}) exceeded "
                    f"{self.job_timeout:.0f}s budget"
                ) from None
            except BrokenExecutor as exc:
                self.restarts += 1
                _log.warning(
                    "worker pool broke running a %d-cell batch for %s "
                    "(%s); rebuilding (attempt %d/%d)",
                    len(tasks),
                    tasks[0].app,
                    exc,
                    attempts,
                    self.max_retries + 1,
                )
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = self._make_pool()
                if attempts > self.max_retries:
                    raise

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
