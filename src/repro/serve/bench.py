"""Load generator: drive the simulation service and pin its throughput.

``python -m repro serve.bench`` boots a real :class:`HttpServer` on an
ephemeral port with a fresh artifact store, then drives the Figure-5
matrix (every app x {N, L} x its line sizes) through the HTTP API with
many concurrent clients, twice:

* **cold** -- empty store: every cell is captured or replayed by the
  worker tier, duplicate streams coalescing through the cache-aware
  scheduler;
* **warm** -- same store, same matrix: every cell must be served from
  the result store without touching a worker.

A third phase submits N identical requests for an uncached cell
concurrently and checks they collapse into exactly one simulation.

The run fails (exit 1) unless (a) warm mean latency is at least
``--min-speedup`` times better than cold, and (b) every warm cell's
simulated metric tree is bit-identical to its cold counterpart -- the
cache must be invisible in the results.  ``--out`` writes the pinned
numbers (``benchmarks/BENCH_PR5.json`` in-repo; since PR 9
``benchmarks/BENCH_PR9.json`` adds per-request latency histograms and
p50/p95/p99 per pass).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import time
from typing import Any

from repro.apps import FIGURE5_APPS
from repro.experiments.config import APP_SEEDS, line_sizes_for
from repro.obs import histogram_quantiles
from repro.obs.registry import Histogram
from repro.serve.http import HttpServer
from repro.serve.service import SimulationService


class _Client:
    """One keep-alive HTTP/1.1 connection speaking JSON."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict[str, Any]]:
        if self._writer is None:
            await self._connect()
        assert self._reader is not None and self._writer is not None
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Content-Type: application/json\r\n\r\n"
        )
        self._writer.write(head.encode("ascii") + payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b"{}"
        return status, json.loads(raw)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None


def _matrix(scale: float) -> list[dict[str, Any]]:
    return [
        {
            "app": app,
            "variant": variant,
            "line_size": line_size,
            "scale": scale,
            "seed": APP_SEEDS.get(app, 1),
        }
        for app in FIGURE5_APPS
        for variant in ("N", "L")
        for line_size in line_sizes_for(app)
    ]


async def _run_cell(
    client: _Client, spec: dict[str, Any]
) -> tuple[float, dict[str, Any]]:
    """Submit one cell and ride it to completion; returns (ms, job body)."""
    started = time.perf_counter()
    while True:
        status, body = await client.request("POST", "/jobs", spec)
        if status == 429:
            await asyncio.sleep(0.2)
            continue
        if status not in (200, 202):
            raise RuntimeError(f"submit failed: {status} {body}")
        break
    while body["state"] not in ("done", "failed"):
        status, body = await client.request(
            "GET", f"/jobs/{body['id']}?wait=10"
        )
        if status != 200:
            raise RuntimeError(f"poll failed: {status} {body}")
    if body["state"] != "done":
        raise RuntimeError(f"cell failed: {body.get('error')}")
    return (time.perf_counter() - started) * 1000.0, body


async def _run_pass(
    host: str, port: int, specs: list[dict], concurrency: int
) -> tuple[float, list[float], dict[str, dict]]:
    """Drive all specs with a client pool; returns wall s, ms list, manifests."""
    queue: asyncio.Queue = asyncio.Queue()
    for spec in specs:
        queue.put_nowait(spec)
    latencies: list[float] = []
    manifests: dict[str, dict] = {}

    async def _drain_queue() -> None:
        client = _Client(host, port)
        try:
            while True:
                try:
                    spec = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                ms, body = await _run_cell(client, spec)
                latencies.append(ms)
                cell_id = f"{spec['app']}/{spec['line_size']}B/{spec['variant']}"
                manifests[cell_id] = body["manifest"]
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(_drain_queue() for _ in range(concurrency)))
    return time.perf_counter() - started, latencies, manifests


async def _coalescing_probe(
    host: str, port: int, scale: float, fanout: int
) -> dict[str, Any]:
    """N identical concurrent requests for an uncached cell -> 1 simulation."""
    spec = {
        "app": "health",
        "variant": "N",
        "line_size": 32,
        "scale": scale,
        # A seed no other phase uses, so the cell is cold by construction.
        "seed": 424242,
    }
    clients = [_Client(host, port) for _ in range(fanout)]
    try:
        results = await asyncio.gather(
            *(_run_cell(client, spec) for client in clients)
        )
    finally:
        for client in clients:
            await client.close()
    # All N requests must have collapsed onto ONE job: one job id, one
    # simulation, identical checksums in every returned manifest.
    job_ids = {body["id"] for _, body in results}
    checksums = {
        body["manifest"]["cells"][0]["checksum"] for _, body in results
    }
    simulated = sum(
        1
        for body in {body["id"]: body for _, body in results}.values()
        if body["manifest"]["summary"]["how"] in ("captured", "replayed")
    )
    return {
        "requests": fanout,
        "distinct_jobs": len(job_ids),
        "distinct_checksums": len(checksums),
        "simulated": simulated,
    }


def _stats(latencies: list[float]) -> dict[str, Any]:
    """Per-pass latency digest: a sparse ms histogram and its quantiles.

    The same :class:`~repro.obs.registry.Histogram` /
    :func:`~repro.obs.histogram_quantiles` machinery the service uses
    live, so bench numbers and ``/metrics`` quantiles are derived
    identically.
    """
    hist = Histogram("bench.latency_ms")
    for ms in latencies:
        hist.observe(max(0, round(ms)))
    quants = histogram_quantiles(hist.counts, (0.5, 0.95, 0.99))
    return {
        "mean_ms": round(statistics.fmean(latencies), 3),
        "p50_ms": quants["p50"],
        "p95_ms": quants["p95"],
        "p99_ms": quants["p99"],
        "max_ms": round(max(latencies), 3),
        "histogram_ms": {
            str(key): count for key, count in sorted(hist.counts.items())
        },
    }


def _metric_trees(manifests: dict[str, dict]) -> dict[str, Any]:
    return {cell_id: m["metrics"] for cell_id, m in sorted(manifests.items())}


async def _bench(args: argparse.Namespace) -> dict[str, Any]:
    specs = _matrix(args.scale)
    service = SimulationService(
        trace_dir=args.trace_dir,
        workers=max(args.workers, 1),
        mode="thread" if args.workers == 0 else "process",
        queue_limit=max(args.queue_limit, len(specs)),
        job_timeout=args.job_timeout,
    )
    server = HttpServer(service, port=0)
    await server.start()
    host, port = server.host, server.port
    try:
        print(
            f"bench: {len(specs)} cells at scale {args.scale}, "
            f"{args.concurrency} clients, {service.pool.workers} "
            f"{service.pool.mode} workers",
            file=sys.stderr,
        )
        cold_wall, cold_ms, cold_manifests = await _run_pass(
            host, port, specs, args.concurrency
        )
        print(f"bench: cold pass {cold_wall:.2f}s", file=sys.stderr)
        warm_wall, warm_ms, warm_manifests = await _run_pass(
            host, port, specs, args.concurrency
        )
        print(f"bench: warm pass {warm_wall:.2f}s", file=sys.stderr)
        coalescing = await _coalescing_probe(
            host, port, args.scale, args.fanout
        )
        metrics_snapshot = service.metrics_payload()
    finally:
        await server.stop(drain_timeout=10.0)

    mismatched = [
        cell_id
        for cell_id in cold_manifests
        if cold_manifests[cell_id]["metrics"] != warm_manifests[cell_id]["metrics"]
        or cold_manifests[cell_id]["cells"] != warm_manifests[cell_id]["cells"]
    ]
    speedup = (sum(cold_ms) / len(cold_ms)) / (sum(warm_ms) / len(warm_ms))
    report = {
        "benchmark": "repro.serve figure5 service sweep",
        "scale": args.scale,
        "cells": len(specs),
        "concurrency": args.concurrency,
        "workers": service.pool.workers,
        "worker_mode": service.pool.mode,
        "cold": {"wall_seconds": round(cold_wall, 3), **_stats(cold_ms)},
        "warm": {"wall_seconds": round(warm_wall, 3), **_stats(warm_ms)},
        "warm_speedup_mean_latency": round(speedup, 2),
        "metrics_identical_cold_vs_warm": not mismatched,
        "coalescing": coalescing,
        "service_metrics": metrics_snapshot["metrics"].get("serve", {}),
    }

    failures = []
    if mismatched:
        failures.append(f"metric trees differ cold vs warm: {mismatched[:3]}")
    if speedup < args.min_speedup:
        failures.append(
            f"warm latency speedup {speedup:.1f}x < required "
            f"{args.min_speedup:.1f}x"
        )
    if (
        coalescing["distinct_jobs"] != 1
        or coalescing["simulated"] != 1
        or coalescing["distinct_checksums"] != 1
    ):
        failures.append(f"coalescing probe anomaly: {coalescing}")
    report["failures"] = failures
    return report


def bench_main(argv: list[str] | None = None) -> int:
    """``python -m repro serve.bench`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve.bench",
        description="Benchmark the simulation service: concurrent Figure-5 "
        "sweeps, cold vs warm, plus a request-coalescing probe.",
    )
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument(
        "--concurrency", type=int, default=8, metavar="N",
        help="concurrent HTTP clients (default 8)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="service worker processes (0 = threads; default 4)",
    )
    parser.add_argument(
        "--fanout", type=int, default=8, metavar="N",
        help="identical concurrent requests in the coalescing probe",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64,
        help="service queue bound (raised to the matrix size if smaller)",
    )
    parser.add_argument("--job-timeout", type=float, default=600.0)
    parser.add_argument(
        "--min-speedup", type=float, default=10.0, metavar="X",
        help="required warm-vs-cold mean latency ratio (default 10)",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="artifact store root (default: a fresh temp dir, i.e. cold)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON report here as well as stdout",
    )
    args = parser.parse_args(argv)
    if args.scale <= 0:
        parser.error("--scale must be > 0")
    if args.concurrency < 1 or args.fanout < 1:
        parser.error("--concurrency and --fanout must be >= 1")

    scratch: tempfile.TemporaryDirectory | None = None
    if args.trace_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        args.trace_dir = scratch.name
    try:
        report = asyncio.run(_bench(args))
    finally:
        if scratch is not None:
            scratch.cleanup()

    rendered = json.dumps(report, indent=2) + "\n"
    sys.stdout.write(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0
