"""Request protocol of the simulation service: specs, validation, keys.

A *job spec* is the wire-level description of one simulation cell --
exactly the coordinates a :class:`~repro.trace.sweep.SweepTask` carries
(app, variant, line size, scale, seed, timeline knobs), arriving as a
JSON object.  Parsing is strict: unknown fields, unknown apps, variants
an app cannot run, and out-of-range numbers are all rejected with a
message naming the offending field, so a misdirected client learns what
it sent instead of what the simulator crashed on.

Each spec has a deterministic **job key** -- the SHA-256 of its canonical
identity JSON.  The key is what the service coalesces on: two requests
with the same key are the same simulation by construction (the trace key
and machine-config fingerprint downstream are both functions of the
spec), so they share one job, one queue slot, and one result.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.adapt.config import (
    DEFAULT_HEATMAP_REGION,
    MAX_COOLDOWN,
    MAX_INTERVAL,
    MAX_PATIENCE,
    MIN_INTERVAL,
    POLICIES,
    AdaptConfig,
)
from repro.apps import APPLICATIONS
from repro.apps.base import Variant
from repro.cache.misspath import KNOB_MECHANISMS, MECHANISMS
from repro.experiments.config import APP_SEEDS
from repro.trace.sweep import SweepTask

#: Fields a job payload may carry; everything else is rejected.
_FIELDS = {
    "app",
    "variant",
    "line_size",
    "scale",
    "seed",
    "timeline_interval",
    "events_capacity",
    "mechanism",
    "vc_entries",
    "mc_entries",
    "sb_count",
    "sb_depth",
    "adapt_policy",
    "adapt_interval",
    "adapt_miss_rate_threshold",
    "adapt_chase_rate_threshold",
    "adapt_patience",
    "adapt_cooldown",
    "adapt_epsilon",
    "heatmap_region",
}

_REQUIRED = {"app", "variant", "line_size"}

#: Guardrails on numeric knobs -- the service is long-lived and shared,
#: so one absurd request must not monopolise a worker for hours.
MAX_SCALE = 4.0
MAX_LINE_SIZE = 4096
MAX_MISSPATH_ENTRIES = 1024

#: Canonical sizing-knob defaults.  A knob a mechanism does not read is
#: *rejected* when supplied and pinned to its default otherwise, so two
#: payloads that mean the same simulation can never produce distinct
#: job keys (and thus duplicate jobs) through an ignored field.
_MISSPATH_DEFAULTS = {
    "vc_entries": 8,
    "mc_entries": 8,
    "sb_count": 4,
    "sb_depth": 4,
}

#: Adaptive-engine knob defaults (mirroring :class:`AdaptConfig`); each
#: knob is rejected without ``adapt_policy`` and pinned to its default
#: otherwise, for the same key-stability reason as the misspath knobs.
_ADAPT_DEFAULTS = {
    "adapt_interval": 2048,
    "adapt_miss_rate_threshold": 0.08,
    "adapt_chase_rate_threshold": 0.02,
    "adapt_patience": 2,
    "adapt_cooldown": 4,
    "adapt_epsilon": 0.1,
}


class ProtocolError(ValueError):
    """A job payload failed validation (maps to HTTP 400)."""


def _fail(field: str, message: str) -> None:
    raise ProtocolError(f"{field}: {message}")


@dataclass(frozen=True)
class JobSpec:
    """One validated simulation request (hashable, JSON-roundtrippable)."""

    app: str
    variant: str
    line_size: int
    scale: float = 1.0
    seed: int = 1
    timeline_interval: int = 0
    events_capacity: int = 0
    mechanism: str = "none"
    vc_entries: int = 8
    mc_entries: int = 8
    sb_count: int = 4
    sb_depth: int = 4
    adapt_policy: str | None = None
    adapt_interval: int = 2048
    adapt_miss_rate_threshold: float = 0.08
    adapt_chase_rate_threshold: float = 0.02
    adapt_patience: int = 2
    adapt_cooldown: int = 4
    adapt_epsilon: float = 0.1
    heatmap_region: int = DEFAULT_HEATMAP_REGION

    @classmethod
    def from_payload(cls, payload: object) -> "JobSpec":
        """Parse and validate a decoded JSON request body."""
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        unknown = set(payload) - _FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown field(s) {sorted(unknown)}; "
                f"allowed: {sorted(_FIELDS)}"
            )
        missing = _REQUIRED - set(payload)
        if missing:
            raise ProtocolError(f"missing required field(s) {sorted(missing)}")

        app = payload["app"]
        if app not in APPLICATIONS:
            _fail("app", f"unknown app {app!r}; known: {sorted(APPLICATIONS)}")
        variant = payload["variant"]
        valid_variants = {v.value for v in Variant}
        if not isinstance(variant, str) or variant not in valid_variants:
            _fail(
                "variant",
                f"unknown variant {variant!r}; known: {sorted(valid_variants)}",
            )
        line_size = payload["line_size"]
        if (
            isinstance(line_size, bool)
            or not isinstance(line_size, int)
            or line_size < 4
            or line_size > MAX_LINE_SIZE
            or line_size & (line_size - 1)
        ):
            _fail(
                "line_size",
                f"must be a power-of-two int in [4, {MAX_LINE_SIZE}], "
                f"got {line_size!r}",
            )
        scale = payload.get("scale", 1.0)
        if (
            isinstance(scale, bool)
            or not isinstance(scale, (int, float))
            or not scale > 0
            or scale > MAX_SCALE
        ):
            _fail("scale", f"must be a number in (0, {MAX_SCALE}], got {scale!r}")
        seed = payload.get("seed", APP_SEEDS.get(app, 1))
        if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
            _fail("seed", f"must be a non-negative integer, got {seed!r}")
        for knob in ("timeline_interval", "events_capacity"):
            value = payload.get(knob, 0)
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                _fail(knob, f"must be a non-negative integer, got {value!r}")
        mechanism = payload.get("mechanism", "none")
        if not isinstance(mechanism, str) or mechanism not in MECHANISMS:
            _fail(
                "mechanism",
                f"unknown mechanism {mechanism!r}; known: {list(MECHANISMS)}",
            )
        misspath_knobs = dict(_MISSPATH_DEFAULTS)
        for knob, users in KNOB_MECHANISMS.items():
            if knob not in payload:
                continue
            if mechanism not in users:
                _fail(
                    knob,
                    f"only meaningful with mechanism in {list(users)}, "
                    f"got mechanism={mechanism!r}",
                )
            value = payload[knob]
            if (
                isinstance(value, bool)
                or not isinstance(value, int)
                or value < 1
                or value > MAX_MISSPATH_ENTRIES
            ):
                _fail(
                    knob,
                    f"must be an integer in [1, {MAX_MISSPATH_ENTRIES}], "
                    f"got {value!r}",
                )
            misspath_knobs[knob] = value

        adapt_policy = payload.get("adapt_policy")
        if adapt_policy is not None and (
            not isinstance(adapt_policy, str) or adapt_policy not in POLICIES
        ):
            _fail(
                "adapt_policy",
                f"unknown policy {adapt_policy!r}; known: {list(POLICIES)}",
            )
        adapt_knobs = dict(_ADAPT_DEFAULTS)
        for knob in _ADAPT_DEFAULTS:
            if knob not in payload:
                continue
            if adapt_policy is None:
                _fail(knob, "only meaningful with adapt_policy set")
            value = payload[knob]
            if knob == "adapt_interval":
                if (
                    isinstance(value, bool)
                    or not isinstance(value, int)
                    or not MIN_INTERVAL <= value <= MAX_INTERVAL
                ):
                    _fail(
                        knob,
                        f"must be an integer in [{MIN_INTERVAL}, "
                        f"{MAX_INTERVAL}], got {value!r}",
                    )
            elif knob in ("adapt_patience", "adapt_cooldown"):
                bound = MAX_PATIENCE if knob == "adapt_patience" else MAX_COOLDOWN
                floor = 1 if knob == "adapt_patience" else 0
                if (
                    isinstance(value, bool)
                    or not isinstance(value, int)
                    or not floor <= value <= bound
                ):
                    _fail(
                        knob,
                        f"must be an integer in [{floor}, {bound}], "
                        f"got {value!r}",
                    )
            elif knob == "adapt_epsilon":
                if (
                    isinstance(value, bool)
                    or not isinstance(value, (int, float))
                    or not 0.0 <= value <= 1.0
                ):
                    _fail(knob, f"must be a number in [0, 1], got {value!r}")
                value = float(value)
            else:  # the two rate thresholds
                if (
                    isinstance(value, bool)
                    or not isinstance(value, (int, float))
                    or not 0.0 < value <= 1.0
                ):
                    _fail(knob, f"must be a number in (0, 1], got {value!r}")
                value = float(value)
            adapt_knobs[knob] = value

        heatmap_region = payload.get("heatmap_region", DEFAULT_HEATMAP_REGION)
        if heatmap_region != DEFAULT_HEATMAP_REGION:
            if (
                isinstance(heatmap_region, bool)
                or not isinstance(heatmap_region, int)
                or heatmap_region < 1024
                or heatmap_region > (1 << 30)
                or heatmap_region & (heatmap_region - 1)
            ):
                _fail(
                    "heatmap_region",
                    "must be a power-of-two int in [1024, 2**30], "
                    f"got {heatmap_region!r}",
                )
            if payload.get("timeline_interval", 0) == 0 and adapt_policy is None:
                _fail(
                    "heatmap_region",
                    "only meaningful with timeline_interval or adapt_policy",
                )

        return cls(
            app=app,
            variant=variant,
            line_size=line_size,
            scale=float(scale),
            seed=seed,
            timeline_interval=payload.get("timeline_interval", 0),
            events_capacity=payload.get("events_capacity", 0),
            mechanism=mechanism,
            adapt_policy=adapt_policy,
            heatmap_region=heatmap_region,
            **misspath_knobs,
            **adapt_knobs,
        )

    # ------------------------------------------------------------------
    @property
    def job_key(self) -> str:
        """Coalescing identity: SHA-256 of the canonical spec JSON.

        Two payloads with the same key describe the same simulation --
        every cache key downstream (trace key, config fingerprint) is a
        function of these fields.
        """
        canonical = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def cell_id(self) -> str:
        """Human-readable cell identity (matches RunSpec.cell_id)."""
        base = f"{self.app}/{self.line_size}B/{self.variant}"
        if self.mechanism != "none":
            base = f"{base}/{self.mechanism}"
        if self.adapt_policy is not None:
            base = f"{base}/{self.adapt_policy}"
        return base

    def task(self) -> SweepTask:
        """The sweep-executor cell this spec resolves to."""
        return SweepTask(
            app=self.app,
            variant=self.variant,
            line_size=self.line_size,
            scale=self.scale,
            seed=self.seed,
            timeline_interval=self.timeline_interval,
            events_capacity=self.events_capacity,
            mechanism=self.mechanism,
            vc_entries=self.vc_entries,
            mc_entries=self.mc_entries,
            sb_count=self.sb_count,
            sb_depth=self.sb_depth,
            adapt=self.adapt_config(),
            heatmap_region=self.heatmap_region,
        )

    def adapt_config(self) -> "AdaptConfig | None":
        """The engine config this spec resolves to (None when off)."""
        if self.adapt_policy is None:
            return None
        return AdaptConfig(
            policy=self.adapt_policy,
            interval=self.adapt_interval,
            miss_rate_threshold=self.adapt_miss_rate_threshold,
            chase_rate_threshold=self.adapt_chase_rate_threshold,
            patience=self.adapt_patience,
            cooldown=self.adapt_cooldown,
            epsilon=self.adapt_epsilon,
            seed=self.seed,
        )

    def to_dict(self) -> dict:
        return asdict(self)
