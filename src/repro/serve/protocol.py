"""Request protocol of the simulation service: specs, validation, keys.

A *job spec* is the wire-level description of one simulation cell --
exactly the coordinates a :class:`~repro.trace.sweep.SweepTask` carries
(app, variant, line size, scale, seed, timeline knobs), arriving as a
JSON object.  Parsing is strict: unknown fields, unknown apps, variants
an app cannot run, and out-of-range numbers are all rejected with a
message naming the offending field, so a misdirected client learns what
it sent instead of what the simulator crashed on.

Each spec has a deterministic **job key** -- the SHA-256 of its canonical
identity JSON.  The key is what the service coalesces on: two requests
with the same key are the same simulation by construction (the trace key
and machine-config fingerprint downstream are both functions of the
spec), so they share one job, one queue slot, and one result.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.apps import APPLICATIONS
from repro.apps.base import Variant
from repro.cache.misspath import KNOB_MECHANISMS, MECHANISMS
from repro.experiments.config import APP_SEEDS
from repro.trace.sweep import SweepTask

#: Fields a job payload may carry; everything else is rejected.
_FIELDS = {
    "app",
    "variant",
    "line_size",
    "scale",
    "seed",
    "timeline_interval",
    "events_capacity",
    "mechanism",
    "vc_entries",
    "mc_entries",
    "sb_count",
    "sb_depth",
}

_REQUIRED = {"app", "variant", "line_size"}

#: Guardrails on numeric knobs -- the service is long-lived and shared,
#: so one absurd request must not monopolise a worker for hours.
MAX_SCALE = 4.0
MAX_LINE_SIZE = 4096
MAX_MISSPATH_ENTRIES = 1024

#: Canonical sizing-knob defaults.  A knob a mechanism does not read is
#: *rejected* when supplied and pinned to its default otherwise, so two
#: payloads that mean the same simulation can never produce distinct
#: job keys (and thus duplicate jobs) through an ignored field.
_MISSPATH_DEFAULTS = {
    "vc_entries": 8,
    "mc_entries": 8,
    "sb_count": 4,
    "sb_depth": 4,
}


class ProtocolError(ValueError):
    """A job payload failed validation (maps to HTTP 400)."""


def _fail(field: str, message: str) -> None:
    raise ProtocolError(f"{field}: {message}")


@dataclass(frozen=True)
class JobSpec:
    """One validated simulation request (hashable, JSON-roundtrippable)."""

    app: str
    variant: str
    line_size: int
    scale: float = 1.0
    seed: int = 1
    timeline_interval: int = 0
    events_capacity: int = 0
    mechanism: str = "none"
    vc_entries: int = 8
    mc_entries: int = 8
    sb_count: int = 4
    sb_depth: int = 4

    @classmethod
    def from_payload(cls, payload: object) -> "JobSpec":
        """Parse and validate a decoded JSON request body."""
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        unknown = set(payload) - _FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown field(s) {sorted(unknown)}; "
                f"allowed: {sorted(_FIELDS)}"
            )
        missing = _REQUIRED - set(payload)
        if missing:
            raise ProtocolError(f"missing required field(s) {sorted(missing)}")

        app = payload["app"]
        if app not in APPLICATIONS:
            _fail("app", f"unknown app {app!r}; known: {sorted(APPLICATIONS)}")
        variant = payload["variant"]
        valid_variants = {v.value for v in Variant}
        if not isinstance(variant, str) or variant not in valid_variants:
            _fail(
                "variant",
                f"unknown variant {variant!r}; known: {sorted(valid_variants)}",
            )
        line_size = payload["line_size"]
        if (
            isinstance(line_size, bool)
            or not isinstance(line_size, int)
            or line_size < 4
            or line_size > MAX_LINE_SIZE
            or line_size & (line_size - 1)
        ):
            _fail(
                "line_size",
                f"must be a power-of-two int in [4, {MAX_LINE_SIZE}], "
                f"got {line_size!r}",
            )
        scale = payload.get("scale", 1.0)
        if (
            isinstance(scale, bool)
            or not isinstance(scale, (int, float))
            or not scale > 0
            or scale > MAX_SCALE
        ):
            _fail("scale", f"must be a number in (0, {MAX_SCALE}], got {scale!r}")
        seed = payload.get("seed", APP_SEEDS.get(app, 1))
        if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
            _fail("seed", f"must be a non-negative integer, got {seed!r}")
        for knob in ("timeline_interval", "events_capacity"):
            value = payload.get(knob, 0)
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                _fail(knob, f"must be a non-negative integer, got {value!r}")
        mechanism = payload.get("mechanism", "none")
        if not isinstance(mechanism, str) or mechanism not in MECHANISMS:
            _fail(
                "mechanism",
                f"unknown mechanism {mechanism!r}; known: {list(MECHANISMS)}",
            )
        misspath_knobs = dict(_MISSPATH_DEFAULTS)
        for knob, users in KNOB_MECHANISMS.items():
            if knob not in payload:
                continue
            if mechanism not in users:
                _fail(
                    knob,
                    f"only meaningful with mechanism in {list(users)}, "
                    f"got mechanism={mechanism!r}",
                )
            value = payload[knob]
            if (
                isinstance(value, bool)
                or not isinstance(value, int)
                or value < 1
                or value > MAX_MISSPATH_ENTRIES
            ):
                _fail(
                    knob,
                    f"must be an integer in [1, {MAX_MISSPATH_ENTRIES}], "
                    f"got {value!r}",
                )
            misspath_knobs[knob] = value
        return cls(
            app=app,
            variant=variant,
            line_size=line_size,
            scale=float(scale),
            seed=seed,
            timeline_interval=payload.get("timeline_interval", 0),
            events_capacity=payload.get("events_capacity", 0),
            mechanism=mechanism,
            **misspath_knobs,
        )

    # ------------------------------------------------------------------
    @property
    def job_key(self) -> str:
        """Coalescing identity: SHA-256 of the canonical spec JSON.

        Two payloads with the same key describe the same simulation --
        every cache key downstream (trace key, config fingerprint) is a
        function of these fields.
        """
        canonical = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def cell_id(self) -> str:
        """Human-readable cell identity (matches RunSpec.cell_id)."""
        base = f"{self.app}/{self.line_size}B/{self.variant}"
        if self.mechanism != "none":
            return f"{base}/{self.mechanism}"
        return base

    def task(self) -> SweepTask:
        """The sweep-executor cell this spec resolves to."""
        return SweepTask(
            app=self.app,
            variant=self.variant,
            line_size=self.line_size,
            scale=self.scale,
            seed=self.seed,
            timeline_interval=self.timeline_interval,
            events_capacity=self.events_capacity,
            mechanism=self.mechanism,
            vc_entries=self.vc_entries,
            mc_entries=self.mc_entries,
            sb_count=self.sb_count,
            sb_depth=self.sb_depth,
        )

    def to_dict(self) -> dict:
        return asdict(self)
