"""The simulation service: queue, workers, cache, and live metrics.

:class:`SimulationService` is the long-lived object behind
``python -m repro serve``.  It accepts validated job specs, serves warm
cells straight from the artifact store (O(ms), no worker round-trip),
coalesces identical in-flight requests, and feeds everything else
through the cache-aware scheduler into the worker pool.  Every finished
job carries a schema-validated ``repro.obs.manifest/v3`` run manifest --
the same artifact format the batch CLI emits -- so service clients and
batch pipelines consume identical documents.

Since PR 9 every job is traced end to end: admission opens a
``serve.request`` root span on a per-job :class:`~repro.obs.Tracer`,
the probe / queue wait / coalesce joins / worker round-trip each record
under it, the worker ships its own spans back across the pool boundary
(see :mod:`repro.serve.workers`), and the finished manifest's ``spans``
list is the assembled causal tree -- exportable to Perfetto via the
existing ``obs export`` tooling.  Sampled cells additionally stream
their timeline windows live: workers push per-window dicts onto the
pool's telemetry queue and :meth:`_forward_telemetry` fans them out to
``GET /jobs/<id>/stream`` subscribers.

Instrumentation is a live :class:`repro.obs.Registry`:

======================================  ================================
``serve.queue.depth``                    queued jobs (gauge, live)
``serve.jobs.inflight``                  queued+running jobs (gauge)
``serve.jobs.{submitted,coalesced,...}`` admission outcomes (counters)
``serve.jobs.{completed,failed}``        terminal outcomes (counters)
``serve.jobs.timeouts``                  budget overruns (counter)
``serve.cache.{hit,miss}``               warm-probe outcomes (counters)
``serve.jobs.batch_folded``              jobs folded into batches (counter)
``serve.workers.restarts``               pool rebuilds (gauge, live)
``serve.stream.{events,dropped}``        SSE fan-out accounting (counters)
``serve.latency.<how>_ms``               per-outcome latency histograms
======================================  ================================

``GET /metrics`` snapshots the registry and derives p50/p99 from the
latency histograms via :func:`repro.obs.histogram_quantiles`;
``GET /metrics?format=prometheus`` renders the same snapshot in text
exposition format via :func:`repro.obs.render_prometheus`.
"""

from __future__ import annotations

import asyncio
import queue as _queue
import time
from typing import Any

from repro.core.debug import get_logger
from repro.obs import (
    GAUGE,
    Registry,
    Tracer,
    build_manifest,
    cell,
    histogram_quantiles,
    render_prometheus,
)
from repro.adapt.config import DEFAULT_HEATMAP_REGION
from repro.serve.jobs import Job, JobTable
from repro.serve.protocol import JobSpec
from repro.serve.scheduler import QueueFull, Scheduler
from repro.serve.workers import JobTimeout, WorkerPool
from repro.trace.store import ArtifactStore, config_fingerprint

__all__ = ["QueueFull", "ServiceClosed", "SimulationService"]

_log = get_logger("serve.service")

#: Latency buckets, by how the result was obtained.
_HOWS = ("captured", "replayed", "cached")


class ServiceClosed(Exception):
    """The service is draining and no longer accepts work (HTTP 503)."""


class SimulationService:
    """Async facade over the trace/replay engine for concurrent clients."""

    def __init__(
        self,
        trace_dir: str,
        workers: int = 2,
        mode: str = "process",
        queue_limit: int = 64,
        job_timeout: float = 300.0,
        max_retries: int = 1,
        history_limit: int = 512,
        retry_after: float = 1.0,
        batch: bool = True,
    ) -> None:
        self.store = ArtifactStore(trace_dir)
        swept = self.store.sweep_stale()
        if swept:
            _log.info("startup sweep removed %d stale artifacts", swept)
        self.table = JobTable(history_limit)
        self.scheduler = Scheduler(self.store, queue_limit, retry_after)
        self.pool = WorkerPool(
            str(self.store.root),
            workers=workers,
            mode=mode,
            job_timeout=job_timeout,
            max_retries=max_retries,
        )
        #: Fold queued jobs sharing a trace key into one worker batch.
        self.batch = batch
        self.started_at = time.time()
        self._draining = False
        self._consumers: list[asyncio.Task] = []
        self._forwarder: asyncio.Task | None = None
        #: trace key -> content hash, learned on first warm probe so
        #: repeat probes skip re-reading the trace bytes.
        self._trace_hashes: dict[str, str] = {}

        self.obs = Registry()
        self.obs.bind("serve.queue.depth", lambda: self.scheduler.depth, GAUGE)
        self.obs.bind(
            "serve.jobs.inflight", lambda: self.scheduler.inflight, GAUGE
        )
        self.obs.bind("serve.workers.restarts", lambda: self.pool.restarts, GAUGE)
        # Stream totals are monotonic (the table folds evicted jobs'
        # counts in), so they bind as counters despite being derived.
        self.obs.bind(
            "serve.stream.events", lambda: self.table.stream_events_total
        )
        self.obs.bind(
            "serve.stream.dropped", lambda: self.table.stream_dropped_total
        )
        for name in (
            "serve.jobs.submitted",
            "serve.jobs.coalesced",
            "serve.jobs.rejected",
            "serve.jobs.completed",
            "serve.jobs.failed",
            "serve.jobs.timeouts",
            "serve.cache.hit",
            "serve.cache.miss",
            "serve.jobs.batch_folded",
        ):
            self.obs.counter(name)
        for how in _HOWS:
            self.obs.histogram(f"serve.latency.{how}_ms")

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Spawn one consumer task per worker slot."""
        if self._consumers:
            return
        self._consumers = [
            asyncio.create_task(self._consume(), name=f"serve-consumer-{i}")
            for i in range(self.pool.workers)
        ]

    async def drain(self, timeout: float | None = 30.0) -> bool:
        """Stop admitting work, let in-flight jobs finish, shut down.

        Returns True if everything drained inside ``timeout``.  Always
        cancels the consumers and shuts the pool down, so the service is
        terminal either way.
        """
        self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        clean = True
        while self.scheduler.inflight:
            if deadline is not None and time.monotonic() >= deadline:
                clean = False
                break
            await asyncio.sleep(0.02)
        tasks = list(self._consumers)
        if self._forwarder is not None:
            tasks.append(self._forwarder)
            self._forwarder = None
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._consumers = []
        self.pool.shutdown(wait=clean)
        return clean

    @property
    def draining(self) -> bool:
        return self._draining

    # -- admission ------------------------------------------------------
    async def submit(self, payload: object) -> tuple[Job, str]:
        """Admit one request; returns ``(job, outcome)``.

        ``outcome``: ``"cached"`` (served warm, job already terminal),
        ``"coalesced"`` (attached to an identical in-flight job), or
        ``"queued"``.  Raises :class:`~repro.serve.protocol.ProtocolError`
        on a bad payload, :class:`QueueFull` on backpressure, and
        :class:`ServiceClosed` while draining.
        """
        if self._draining:
            raise ServiceClosed("service is draining")
        spec = JobSpec.from_payload(payload)
        existing = self.scheduler.coalesce(spec.job_key)
        if existing is not None:
            self.obs.counter("serve.jobs.coalesced").inc()
            self._record_join(existing)
            return existing, "coalesced"
        tracer = Tracer()
        root = tracer.begin("serve.request")
        probe_started = time.perf_counter()
        warm = await asyncio.to_thread(self._warm_probe, spec)
        tracer.record(
            "serve.probe",
            time.perf_counter() - probe_started,
            metrics={"hit": 1 if warm is not None else 0},
        )
        if warm is not None:
            self.obs.counter("serve.cache.hit").inc()
            job = self.table.create(spec)
            job.attempts = 0
            self._adopt(job, tracer, root)
            tracer.end(root)
            manifest = self._success_manifest(
                spec, warm, "cached", tracer=tracer
            )
            job.complete("cached", manifest)
            self._observe_latency("cached", root.wall_seconds)
            return job, "cached"
        self.obs.counter("serve.cache.miss").inc()

        def _factory() -> Job:
            job = self.table.create(spec)
            self._adopt(job, tracer, root)
            return job

        try:
            job, outcome = self.scheduler.submit(_factory, spec.job_key)
        except QueueFull:
            self.obs.counter("serve.jobs.rejected").inc()
            raise
        if outcome == "coalesced":
            self.obs.counter("serve.jobs.coalesced").inc()
            self._record_join(job)
        else:
            self.obs.counter("serve.jobs.submitted").inc()
        return job, outcome

    def _adopt(self, job: Job, tracer: Tracer, root) -> None:
        job.tracer = tracer
        job.trace_id = tracer.trace_id
        job.root_span = root

    def _record_join(self, job: Job) -> None:
        """A zero-duration mark on the host job: one more rider attached."""
        if job.tracer is not None and not job.finished:
            job.tracer.record(
                "serve.coalesce.join",
                0.0,
                metrics={"subscribers": job.subscribers},
            )

    def _warm_probe(self, spec: JobSpec):
        """Serve a fully cached cell without touching the worker tier.

        Runs in a thread (manifest rows and result JSON come off disk).
        The trace's content hash comes from the persistent corpus
        manifest via :meth:`~repro.trace.store.ArtifactStore.
        content_hash_for` -- an O(1) row lookup, falling back to a
        two-seek footer read -- so the probe never decodes chunk data.
        Returns the cached :class:`~repro.apps.base.AppResult` or None
        on any miss.
        """
        task = spec.task()
        trace_key = task.key()
        content_hash = self._trace_hashes.get(trace_key)
        if content_hash is None:
            content_hash = self.store.content_hash_for(trace_key)
            if content_hash is None:
                return None
            self._trace_hashes[trace_key] = content_hash
        return self.store.load_result(
            content_hash, config_fingerprint(task.config())
        )

    # -- execution ------------------------------------------------------
    async def _consume(self) -> None:
        while True:
            if self.batch:
                jobs = await self.scheduler.pop_batch()
            else:
                jobs = [await self.scheduler.pop()]
            try:
                if self.batch:
                    await self._run_batch(jobs)
                else:
                    await self._run_job(jobs[0])
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - defensive: keep serving
                _log.exception(
                    "consumer crashed on job(s) %s",
                    ", ".join(job.id for job in jobs),
                )
                for job in jobs:
                    if not job.finished:
                        job.fail("internal error")
                    self.scheduler.finished(job, captured=False)

    def _queue_wait(self, job: Job) -> None:
        """Record the admission-to-pop interval on the job's trace."""
        if job.tracer is None or job.started_at is None:
            return
        job.tracer.record(
            "serve.queue.wait",
            max(0.0, job.started_at - job.submitted_at),
            start=job.submitted_wall,
        )

    def _stream_token(self, job: Job) -> str | None:
        """The telemetry routing token -- only sampled cells stream."""
        if job.spec.timeline_interval > 0:
            self._ensure_forwarder()
            return job.id
        return None

    async def _run_job(self, job: Job) -> None:
        spec = job.spec
        tracer = job.tracer
        self._queue_wait(job)
        try:
            if tracer is not None:
                with tracer.span("serve.execute") as exec_rec:
                    ctx = tracer.current().to_wire()
                    result, how, spans, attempts = await self.pool.run(
                        spec.task(), ctx=ctx, token=self._stream_token(job)
                    )
                tracer.absorb(spans, depth_offset=exec_rec.depth + 1)
            else:
                result, how, spans, attempts = await self.pool.run(spec.task())
        except Exception as exc:
            detail = str(exc)
            error = (
                f"{type(exc).__name__}: {detail}" if detail else type(exc).__name__
            )
            if isinstance(exc, JobTimeout):
                self.obs.counter("serve.jobs.timeouts").inc()
            self.obs.counter("serve.jobs.failed").inc()
            _log.warning("job %s (%s) failed: %s", job.id, spec.cell_id, error)
            if tracer is not None:
                tracer.end(job.root_span, error=error)
            job.fail(error, self._failure_manifest(spec, error, tracer=tracer))
            self.scheduler.finished(job, captured=False)
            return
        job.attempts = attempts
        if tracer is not None:
            tracer.end(job.root_span)
        manifest = self._success_manifest(spec, result, how, tracer=tracer)
        job.complete(how, manifest)
        self.obs.counter("serve.jobs.completed").inc()
        self._observe_latency(how, job.latency_seconds or 0.0)
        self.scheduler.finished(job, captured=True)

    async def _run_batch(self, jobs: list[Job]) -> None:
        """Execute a popped trace-key batch via one worker round-trip.

        The worker returns per-cell outcome tuples, so each folded job
        completes or fails on its own terms; only a whole-batch failure
        (timeout, exhausted pool retries) fails every member.  Each
        traced member gets its own ``serve.execute`` span bracketing the
        shared round-trip, with its worker-side spans spliced under it.
        """
        by_task = {job.spec.task(): job for job in jobs}
        tasks = list(by_task)
        if len(jobs) > 1:
            self.obs.counter("serve.jobs.batch_folded").inc(len(jobs) - 1)
        ctxs: dict[Any, dict] = {}
        tokens: dict[Any, str] = {}
        exec_recs: dict[Any, Any] = {}
        for task, job in by_task.items():
            self._queue_wait(job)
            if job.tracer is None:
                continue
            exec_recs[task] = job.tracer.begin("serve.execute")
            ctxs[task] = job.tracer.current().to_wire()
            token = self._stream_token(job)
            if token is not None:
                tokens[task] = token

        def _close_exec(task, error: str | None = None) -> None:
            job = by_task[task]
            rec = exec_recs.pop(task, None)
            if rec is None or job.tracer is None:
                return
            job.tracer.end(rec, error=error)

        try:
            outcomes, attempts = await self.pool.run_batch(
                tasks, ctxs=ctxs or None, tokens=tokens or None
            )
        except Exception as exc:
            detail = str(exc)
            error = (
                f"{type(exc).__name__}: {detail}" if detail else type(exc).__name__
            )
            if isinstance(exc, JobTimeout):
                self.obs.counter("serve.jobs.timeouts").inc()
            _log.warning("batch of %d jobs failed: %s", len(jobs), error)
            for task, job in by_task.items():
                _close_exec(task, error=error)
                if job.tracer is not None:
                    job.tracer.end(job.root_span, error=error)
                self.obs.counter("serve.jobs.failed").inc()
                job.fail(
                    error,
                    self._failure_manifest(job.spec, error, tracer=job.tracer),
                )
                self.scheduler.finished(job, captured=False)
            return
        for task, result, how, engine, error, spans in outcomes:
            job = by_task[task]
            if job.tracer is not None:
                rec = exec_recs.get(task)
                offset = rec.depth + 1 if rec is not None else 1
                _close_exec(task, error=error)
                job.tracer.absorb(spans, depth_offset=offset)
                job.tracer.end(job.root_span, error=error)
            if error is not None:
                self.obs.counter("serve.jobs.failed").inc()
                _log.warning(
                    "job %s (%s) failed: %s", job.id, job.spec.cell_id, error
                )
                job.fail(
                    error,
                    self._failure_manifest(job.spec, error, tracer=job.tracer),
                )
                self.scheduler.finished(job, captured=False)
                continue
            job.attempts = attempts
            manifest = self._success_manifest(
                job.spec, result, how, tracer=job.tracer, engine=engine
            )
            job.complete(how, manifest)
            self.obs.counter("serve.jobs.completed").inc()
            self._observe_latency(how, job.latency_seconds or 0.0)
            self.scheduler.finished(job, captured=True)

    def _observe_latency(self, how: str, seconds: float) -> None:
        if how not in _HOWS:  # pragma: no cover - future-proofing
            return
        self.obs.histogram(f"serve.latency.{how}_ms").observe(
            max(0, round(seconds * 1000))
        )

    # -- live telemetry -------------------------------------------------
    def _ensure_forwarder(self) -> None:
        """Start the telemetry drain loop once a sampled cell shows up."""
        if self._forwarder is not None and not self._forwarder.done():
            return
        self.pool.telemetry_queue()
        self._forwarder = asyncio.create_task(
            self._forward_telemetry(), name="serve-telemetry"
        )

    async def _forward_telemetry(self) -> None:
        """Drain worker window events into their jobs' SSE subscribers.

        Runs as one long-lived task: blocking ``get`` calls happen on a
        thread (0.5s timeout, so cancellation is prompt), and each
        ``(token, window)`` tuple is published to the job it belongs to.
        Events for evicted or already-finished jobs drop silently --
        late windows from an abandoned (timed-out) cell have nowhere
        meaningful to go.
        """
        telemetry = self.pool.telemetry_queue()
        while True:
            try:
                item = await asyncio.to_thread(telemetry.get, True, 0.5)
            except _queue.Empty:
                continue
            except (OSError, EOFError):  # pragma: no cover - manager gone
                return
            if item is None:  # pragma: no cover - explicit shutdown poke
                return
            token, window = item
            job = self.table.get(token)
            if job is not None and not job.finished:
                job.publish({"event": "window", **window})

    # -- manifests ------------------------------------------------------
    def _run_section(self, spec: JobSpec) -> dict[str, Any]:
        section = {
            "scale": spec.scale,
            "jobs": 1,
            "cache": True,
            "trace_dir": str(self.store.root),
            "timeline_interval": spec.timeline_interval,
            "events_capacity": spec.events_capacity,
        }
        if spec.mechanism != "none":
            # Matches ExperimentRunner.manifest: mechanism keys appear
            # only for mechanism-carrying cells.
            section.update(
                mechanism=spec.mechanism,
                vc_entries=spec.vc_entries,
                mc_entries=spec.mc_entries,
                sb_count=spec.sb_count,
                sb_depth=spec.sb_depth,
            )
        if spec.adapt_policy is not None:
            section.update(
                adapt_policy=spec.adapt_policy,
                adapt_interval=spec.adapt_interval,
                adapt_miss_rate_threshold=spec.adapt_miss_rate_threshold,
                adapt_chase_rate_threshold=spec.adapt_chase_rate_threshold,
                adapt_patience=spec.adapt_patience,
                adapt_cooldown=spec.adapt_cooldown,
                adapt_epsilon=spec.adapt_epsilon,
            )
        if spec.heatmap_region != DEFAULT_HEATMAP_REGION:
            section["heatmap_region"] = spec.heatmap_region
        return section

    def _finish_trace(self, tracer: Tracer | None) -> tuple[list[dict], float]:
        """Close a job's root span; returns (span dicts, request wall)."""
        if tracer is None:
            return [], 0.0
        # The root may already be closed (cached path ends it inline).
        for record in tracer.records:
            if getattr(record, "name", None) == "serve.request":
                return tracer.to_list(), record.wall_seconds
        return tracer.to_list(), 0.0

    def _success_manifest(
        self,
        spec: JobSpec,
        result,
        how: str,
        *,
        tracer: Tracer | None = None,
        engine: str | None = None,
    ) -> dict[str, Any]:
        spans, wall = self._finish_trace(tracer)
        stats = result.stats
        adapt = getattr(result, "extras", {}).get("adapt")
        entry = cell(
            spec.cell_id,
            labels={
                "app": spec.app,
                "variant": spec.variant,
                "line_size": spec.line_size,
                **(
                    {"mechanism": spec.mechanism}
                    if spec.mechanism != "none"
                    else {}
                ),
                **(
                    {"policy": spec.adapt_policy}
                    if spec.adapt_policy is not None
                    else {}
                ),
            },
            checksum=result.checksum,
            values={
                "cycles": stats.cycles,
                # Adaptive cells are auditable over HTTP too: the
                # engine's counters reconcile with its decisions list
                # and adapt.decision events by construction.
                **(
                    {
                        "adapt_decisions": adapt["counters"]["decisions"],
                        "adapt_windows": adapt["counters"]["windows"],
                        "adapt_cost_cycles": adapt["counters"]["cost_cycles"],
                        "adapt_benefit_cycles": (
                            adapt["counters"]["benefit_cycles"]
                        ),
                    }
                    if adapt is not None
                    else {}
                ),
            },
        )
        timeline = None
        if result.timeline is not None:
            timeline = {
                "cells": {
                    spec.cell_id: {
                        "sample_interval": result.timeline["sample_interval"],
                        "window_count": result.timeline["window_count"],
                        "windows": result.timeline["windows"],
                        "heatmap": result.timeline["heatmap"],
                    }
                }
            }
        return build_manifest(
            f"serve/{spec.cell_id}",
            run=self._run_section(spec),
            seeds={spec.app: spec.seed},
            metrics=stats.to_snapshot(),
            spans=spans,
            cells=[entry],
            summary={
                "how": how,
                "wall_seconds": round(wall, 6),
                **(
                    {"trace_id": tracer.trace_id} if tracer is not None else {}
                ),
                **({"engine": engine} if engine is not None else {}),
            },
            timeline=timeline,
        )

    def _failure_manifest(
        self,
        spec: JobSpec,
        error: str,
        *,
        tracer: Tracer | None = None,
    ) -> dict[str, Any]:
        spans, _ = self._finish_trace(tracer)
        return build_manifest(
            f"serve/{spec.cell_id}",
            run=self._run_section(spec),
            seeds={spec.app: spec.seed},
            metrics={},
            spans=spans,
            cells=[],
            summary={
                "error": error,
                **(
                    {"trace_id": tracer.trace_id} if tracer is not None else {}
                ),
            },
        )

    # -- observability --------------------------------------------------
    def metrics_payload(self) -> dict[str, Any]:
        """The ``GET /metrics`` body: live snapshot plus derived views."""
        snapshot = self.obs.snapshot()
        latency: dict[str, Any] = {}
        for how in _HOWS:
            quantiles = histogram_quantiles(
                snapshot[f"serve.latency.{how}_ms"], (0.5, 0.99)
            )
            if quantiles:
                latency[how] = {
                    f"{key}_ms": value for key, value in quantiles.items()
                }
        states: dict[str, int] = {}
        for job in self.table.jobs():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "metrics": snapshot.tree(),
            "latency": latency,
            "jobs_by_state": states,
        }

    def prometheus_payload(self) -> str:
        """The ``GET /metrics?format=prometheus`` body (text exposition)."""
        return render_prometheus(self.obs.snapshot())

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "workers": self.pool.workers,
            "mode": self.pool.mode,
            "queue_depth": self.scheduler.depth,
            "inflight": self.scheduler.inflight,
        }
