"""The simulation service: queue, workers, cache, and live metrics.

:class:`SimulationService` is the long-lived object behind
``python -m repro serve``.  It accepts validated job specs, serves warm
cells straight from the artifact store (O(ms), no worker round-trip),
coalesces identical in-flight requests, and feeds everything else
through the cache-aware scheduler into the worker pool.  Every finished
job carries a schema-validated ``repro.obs.manifest/v2`` run manifest --
the same artifact format the batch CLI emits -- so service clients and
batch pipelines consume identical documents.

Instrumentation is a live :class:`repro.obs.Registry`:

======================================  ================================
``serve.queue.depth``                    queued jobs (gauge, live)
``serve.jobs.inflight``                  queued+running jobs (gauge)
``serve.jobs.{submitted,coalesced,...}`` admission outcomes (counters)
``serve.jobs.{completed,failed}``        terminal outcomes (counters)
``serve.jobs.timeouts``                  budget overruns (counter)
``serve.cache.{hit,miss}``               warm-probe outcomes (counters)
``serve.jobs.batch_folded``              jobs folded into batches (counter)
``serve.workers.restarts``               pool rebuilds (gauge, live)
``serve.latency.<how>_ms``               per-outcome latency histograms
======================================  ================================

``GET /metrics`` snapshots the registry and derives p50/p99 from the
latency histograms via :func:`repro.obs.histogram_quantiles`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.core.debug import get_logger
from repro.obs import GAUGE, Registry, build_manifest, cell, histogram_quantiles
from repro.obs.span import SpanRecord
from repro.serve.jobs import Job, JobTable
from repro.serve.protocol import JobSpec
from repro.serve.scheduler import QueueFull, Scheduler
from repro.serve.workers import JobTimeout, WorkerPool
from repro.trace.store import ArtifactStore, config_fingerprint

__all__ = ["QueueFull", "ServiceClosed", "SimulationService"]

_log = get_logger("serve.service")

#: Latency buckets, by how the result was obtained.
_HOWS = ("captured", "replayed", "cached")


class ServiceClosed(Exception):
    """The service is draining and no longer accepts work (HTTP 503)."""


class SimulationService:
    """Async facade over the trace/replay engine for concurrent clients."""

    def __init__(
        self,
        trace_dir: str,
        workers: int = 2,
        mode: str = "process",
        queue_limit: int = 64,
        job_timeout: float = 300.0,
        max_retries: int = 1,
        history_limit: int = 512,
        retry_after: float = 1.0,
        batch: bool = True,
    ) -> None:
        self.store = ArtifactStore(trace_dir)
        swept = self.store.sweep_stale()
        if swept:
            _log.info("startup sweep removed %d stale artifacts", swept)
        self.table = JobTable(history_limit)
        self.scheduler = Scheduler(self.store, queue_limit, retry_after)
        self.pool = WorkerPool(
            str(self.store.root),
            workers=workers,
            mode=mode,
            job_timeout=job_timeout,
            max_retries=max_retries,
        )
        #: Fold queued jobs sharing a trace key into one worker batch.
        self.batch = batch
        self.started_at = time.time()
        self._draining = False
        self._consumers: list[asyncio.Task] = []
        #: trace key -> content hash, learned on first warm probe so
        #: repeat probes skip re-reading the trace bytes.
        self._trace_hashes: dict[str, str] = {}

        self.obs = Registry()
        self.obs.bind("serve.queue.depth", lambda: self.scheduler.depth, GAUGE)
        self.obs.bind(
            "serve.jobs.inflight", lambda: self.scheduler.inflight, GAUGE
        )
        self.obs.bind("serve.workers.restarts", lambda: self.pool.restarts, GAUGE)
        for name in (
            "serve.jobs.submitted",
            "serve.jobs.coalesced",
            "serve.jobs.rejected",
            "serve.jobs.completed",
            "serve.jobs.failed",
            "serve.jobs.timeouts",
            "serve.cache.hit",
            "serve.cache.miss",
            "serve.jobs.batch_folded",
        ):
            self.obs.counter(name)
        for how in _HOWS:
            self.obs.histogram(f"serve.latency.{how}_ms")

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Spawn one consumer task per worker slot."""
        if self._consumers:
            return
        self._consumers = [
            asyncio.create_task(self._consume(), name=f"serve-consumer-{i}")
            for i in range(self.pool.workers)
        ]

    async def drain(self, timeout: float | None = 30.0) -> bool:
        """Stop admitting work, let in-flight jobs finish, shut down.

        Returns True if everything drained inside ``timeout``.  Always
        cancels the consumers and shuts the pool down, so the service is
        terminal either way.
        """
        self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        clean = True
        while self.scheduler.inflight:
            if deadline is not None and time.monotonic() >= deadline:
                clean = False
                break
            await asyncio.sleep(0.02)
        for task in self._consumers:
            task.cancel()
        for task in self._consumers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._consumers = []
        self.pool.shutdown(wait=clean)
        return clean

    @property
    def draining(self) -> bool:
        return self._draining

    # -- admission ------------------------------------------------------
    async def submit(self, payload: object) -> tuple[Job, str]:
        """Admit one request; returns ``(job, outcome)``.

        ``outcome``: ``"cached"`` (served warm, job already terminal),
        ``"coalesced"`` (attached to an identical in-flight job), or
        ``"queued"``.  Raises :class:`~repro.serve.protocol.ProtocolError`
        on a bad payload, :class:`QueueFull` on backpressure, and
        :class:`ServiceClosed` while draining.
        """
        if self._draining:
            raise ServiceClosed("service is draining")
        spec = JobSpec.from_payload(payload)
        existing = self.scheduler.coalesce(spec.job_key)
        if existing is not None:
            self.obs.counter("serve.jobs.coalesced").inc()
            return existing, "coalesced"
        submitted = time.monotonic()
        warm = await asyncio.to_thread(self._warm_probe, spec)
        if warm is not None:
            manifest, how = warm
            self.obs.counter("serve.cache.hit").inc()
            job = self.table.create(spec)
            job.attempts = 0
            job.complete(how, manifest)
            self._observe_latency(how, time.monotonic() - submitted)
            return job, "cached"
        self.obs.counter("serve.cache.miss").inc()
        try:
            job, outcome = self.scheduler.submit(
                lambda: self.table.create(spec), spec.job_key
            )
        except QueueFull:
            self.obs.counter("serve.jobs.rejected").inc()
            raise
        self.obs.counter(
            "serve.jobs.coalesced"
            if outcome == "coalesced"
            else "serve.jobs.submitted"
        ).inc()
        return job, outcome

    def _warm_probe(self, spec: JobSpec) -> tuple[dict, str] | None:
        """Serve a fully cached cell without touching the worker tier.

        Runs in a thread (manifest rows and result JSON come off disk).
        The trace's content hash comes from the persistent corpus
        manifest via :meth:`~repro.trace.store.ArtifactStore.
        content_hash_for` -- an O(1) row lookup, falling back to a
        two-seek footer read -- so the probe never decodes chunk data.
        Returns ``(manifest, "cached")`` or None on any miss.
        """
        task = spec.task()
        trace_key = task.key()
        content_hash = self._trace_hashes.get(trace_key)
        if content_hash is None:
            content_hash = self.store.content_hash_for(trace_key)
            if content_hash is None:
                return None
            self._trace_hashes[trace_key] = content_hash
        result = self.store.load_result(
            content_hash, config_fingerprint(task.config())
        )
        if result is None:
            return None
        record = SpanRecord(name=f"serve.job.{spec.cell_id}", wall_seconds=0.0)
        manifest = self._success_manifest(spec, result, "cached", record)
        return manifest, "cached"

    # -- execution ------------------------------------------------------
    async def _consume(self) -> None:
        while True:
            if self.batch:
                jobs = await self.scheduler.pop_batch()
            else:
                jobs = [await self.scheduler.pop()]
            try:
                if self.batch:
                    await self._run_batch(jobs)
                else:
                    await self._run_job(jobs[0])
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - defensive: keep serving
                _log.exception(
                    "consumer crashed on job(s) %s",
                    ", ".join(job.id for job in jobs),
                )
                for job in jobs:
                    if not job.finished:
                        job.fail("internal error")
                    self.scheduler.finished(job, captured=False)

    async def _run_job(self, job: Job) -> None:
        spec = job.spec
        record = SpanRecord(name=f"serve.job.{spec.cell_id}", wall_seconds=0.0)
        started = time.perf_counter()
        try:
            result, how, attempts = await self.pool.run(spec.task())
        except Exception as exc:
            record.wall_seconds = time.perf_counter() - started
            detail = str(exc)
            record.error = (
                f"{type(exc).__name__}: {detail}" if detail else type(exc).__name__
            )
            if isinstance(exc, JobTimeout):
                self.obs.counter("serve.jobs.timeouts").inc()
            self.obs.counter("serve.jobs.failed").inc()
            _log.warning("job %s (%s) failed: %s", job.id, spec.cell_id, record.error)
            job.fail(record.error, self._failure_manifest(spec, record))
            self.scheduler.finished(job, captured=False)
            return
        record.wall_seconds = time.perf_counter() - started
        job.attempts = attempts
        manifest = self._success_manifest(spec, result, how, record)
        job.complete(how, manifest)
        self.obs.counter("serve.jobs.completed").inc()
        self._observe_latency(how, job.latency_seconds or 0.0)
        self.scheduler.finished(job, captured=True)

    async def _run_batch(self, jobs: list[Job]) -> None:
        """Execute a popped trace-key batch via one worker round-trip.

        The worker returns per-cell outcome tuples, so each folded job
        completes or fails on its own terms; only a whole-batch failure
        (timeout, exhausted pool retries) fails every member.
        """
        by_task = {job.spec.task(): job for job in jobs}
        tasks = list(by_task)
        if len(jobs) > 1:
            self.obs.counter("serve.jobs.batch_folded").inc(len(jobs) - 1)
        started = time.perf_counter()
        try:
            outcomes, attempts = await self.pool.run_batch(tasks)
        except Exception as exc:
            elapsed = time.perf_counter() - started
            detail = str(exc)
            error = (
                f"{type(exc).__name__}: {detail}" if detail else type(exc).__name__
            )
            if isinstance(exc, JobTimeout):
                self.obs.counter("serve.jobs.timeouts").inc()
            _log.warning("batch of %d jobs failed: %s", len(jobs), error)
            for job in jobs:
                record = SpanRecord(
                    name=f"serve.job.{job.spec.cell_id}", wall_seconds=elapsed
                )
                record.error = error
                self.obs.counter("serve.jobs.failed").inc()
                job.fail(error, self._failure_manifest(job.spec, record))
                self.scheduler.finished(job, captured=False)
            return
        elapsed = time.perf_counter() - started
        for task, result, how, engine, error in outcomes:
            job = by_task[task]
            record = SpanRecord(
                name=f"serve.job.{job.spec.cell_id}", wall_seconds=elapsed
            )
            if error is not None:
                record.error = error
                self.obs.counter("serve.jobs.failed").inc()
                _log.warning(
                    "job %s (%s) failed: %s", job.id, job.spec.cell_id, error
                )
                job.fail(error, self._failure_manifest(job.spec, record))
                self.scheduler.finished(job, captured=False)
                continue
            job.attempts = attempts
            manifest = self._success_manifest(
                job.spec, result, how, record, engine=engine
            )
            job.complete(how, manifest)
            self.obs.counter("serve.jobs.completed").inc()
            self._observe_latency(how, job.latency_seconds or 0.0)
            self.scheduler.finished(job, captured=True)

    def _observe_latency(self, how: str, seconds: float) -> None:
        if how not in _HOWS:  # pragma: no cover - future-proofing
            return
        self.obs.histogram(f"serve.latency.{how}_ms").observe(
            max(0, round(seconds * 1000))
        )

    # -- manifests ------------------------------------------------------
    def _run_section(self, spec: JobSpec) -> dict[str, Any]:
        section = {
            "scale": spec.scale,
            "jobs": 1,
            "cache": True,
            "trace_dir": str(self.store.root),
            "timeline_interval": spec.timeline_interval,
            "events_capacity": spec.events_capacity,
        }
        if spec.mechanism != "none":
            # Matches ExperimentRunner.manifest: mechanism keys appear
            # only for mechanism-carrying cells.
            section.update(
                mechanism=spec.mechanism,
                vc_entries=spec.vc_entries,
                mc_entries=spec.mc_entries,
                sb_count=spec.sb_count,
                sb_depth=spec.sb_depth,
            )
        return section

    def _success_manifest(
        self,
        spec: JobSpec,
        result,
        how: str,
        record: SpanRecord,
        engine: str | None = None,
    ) -> dict[str, Any]:
        stats = result.stats
        entry = cell(
            spec.cell_id,
            labels={
                "app": spec.app,
                "variant": spec.variant,
                "line_size": spec.line_size,
                **(
                    {"mechanism": spec.mechanism}
                    if spec.mechanism != "none"
                    else {}
                ),
            },
            checksum=result.checksum,
            values={"cycles": stats.cycles},
        )
        timeline = None
        if result.timeline is not None:
            timeline = {
                "cells": {
                    spec.cell_id: {
                        "sample_interval": result.timeline["sample_interval"],
                        "window_count": result.timeline["window_count"],
                        "windows": result.timeline["windows"],
                        "heatmap": result.timeline["heatmap"],
                    }
                }
            }
        return build_manifest(
            f"serve/{spec.cell_id}",
            run=self._run_section(spec),
            seeds={spec.app: spec.seed},
            metrics=stats.to_snapshot(),
            spans=[record.to_dict()],
            cells=[entry],
            summary={
                "how": how,
                "wall_seconds": round(record.wall_seconds, 6),
                **({"engine": engine} if engine is not None else {}),
            },
            timeline=timeline,
        )

    def _failure_manifest(self, spec: JobSpec, record: SpanRecord) -> dict[str, Any]:
        return build_manifest(
            f"serve/{spec.cell_id}",
            run=self._run_section(spec),
            seeds={spec.app: spec.seed},
            metrics={},
            spans=[record.to_dict()],
            cells=[],
            summary={"error": record.error or "unknown"},
        )

    # -- observability --------------------------------------------------
    def metrics_payload(self) -> dict[str, Any]:
        """The ``GET /metrics`` body: live snapshot plus derived views."""
        snapshot = self.obs.snapshot()
        latency: dict[str, Any] = {}
        for how in _HOWS:
            quantiles = histogram_quantiles(
                snapshot[f"serve.latency.{how}_ms"], (0.5, 0.99)
            )
            if quantiles:
                latency[how] = {
                    f"{key}_ms": value for key, value in quantiles.items()
                }
        states: dict[str, int] = {}
        for job in self.table.jobs():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "metrics": snapshot.tree(),
            "latency": latency,
            "jobs_by_state": states,
        }

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "workers": self.pool.workers,
            "mode": self.pool.mode,
            "queue_depth": self.scheduler.depth,
            "inflight": self.scheduler.inflight,
        }
