"""Record-plus-array packing (the Eqntott optimization, Section 5.3).

Eqntott's hot structure is a hash table whose entries point to ``PTERM``
records, each of which points to a separate array of short integers
(Figure 8(a)).  Reading one term therefore touches three scattered
locations.  The optimization (Figure 8(b)):

1. relocate each record and its satellite array into *one* chunk, and
2. lay those chunks out contiguously in increasing hash-index order,

so a sweep over the table in hash order streams linearly through memory.

``pack_record_with_array`` performs step 1 for one record; the
application drives step 2 by allocating chunks from one pool while
walking its table in index order.  Memory forwarding makes both safe:
stray pointers to old records or old arrays keep working.
"""

from __future__ import annotations

from repro.core.machine import Machine
from repro.core.memory import WORD_SIZE
from repro.core.relocate import relocate
from repro.mem.pool import RelocationPool
from repro.runtime.records import RecordLayout


def pack_record_with_array(
    machine: Machine,
    record: int,
    layout: RecordLayout,
    array_field: str,
    array_bytes: int,
    pool: RelocationPool,
) -> int:
    """Relocate ``record`` and the array it points to into one pool chunk.

    ``layout`` describes the record; ``array_field`` names the pointer
    field that holds the satellite array's address; ``array_bytes`` is
    the array's size (rounded up to whole words for relocation).

    Returns the record's new address.  The relocated record's array
    pointer is updated to the array's new location, so accesses through
    the *new* record never forward; only stray pointers to the old
    record or old array pay hops.
    """
    array_words = (array_bytes + WORD_SIZE - 1) // WORD_SIZE
    chunk = pool.allocate(layout.size + array_words * WORD_SIZE)
    new_record = chunk
    new_array = chunk + layout.size

    old_array = layout.read(machine, record, array_field)
    relocate(machine, record, new_record, layout.words)
    if old_array:
        relocate(machine, old_array, new_array, array_words)
        # Patch the *relocated* record's pointer: future dereferences of
        # the new record reach the new array directly.
        layout.write(machine, new_record, array_field, new_array)
    return new_record


def pack_pointer_table(
    machine: Machine,
    table_base: int,
    entries: int,
    layout: RecordLayout,
    array_field: str,
    array_bytes_of: "callable",
    pool: RelocationPool,
) -> int:
    """Pack every record referenced by a pointer table, in index order.

    ``table_base`` is a contiguous array of ``entries`` pointers (NULL
    entries are skipped).  ``array_bytes_of(machine, record)`` returns the
    satellite-array size for a given record, letting variable-length
    arrays (as in Eqntott) pack exactly.  Each table slot is updated to
    the record's new address.  Returns the number of records packed.
    """
    packed = 0
    for index in range(entries):
        slot = table_base + index * WORD_SIZE
        record = machine.load(slot)
        if record == 0:
            continue
        array_bytes = array_bytes_of(machine, record)
        new_record = pack_record_with_array(
            machine, record, layout, array_field, array_bytes, pool
        )
        machine.store(slot, new_record)
        packed += 1
    machine.note_optimizer_invocation()
    return packed
