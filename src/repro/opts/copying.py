"""Data copying for tiled numeric kernels (Section 2.2).

Copying was proposed (Lam/Rothberg/Wolf) to fix conflict misses in
blocked ("tiled") loops: a tile that is reused many times can evict
itself if its rows map into the same cache sets.  The fix copies the
tile into a contiguous temporary buffer before use -- contiguous
addresses cannot conflict with one another.

The paper's angle: copying is only *safe* if no alias can observe the
stale original while the copy is live.  With memory forwarding the copy
can be a true **relocation** -- old words forward to the buffer -- so
even a program that passes around raw element pointers stays correct.

``relocate_tile`` implements the forwarding-backed copy; ``TiledMatrix``
provides the row-major simulated-memory matrix the kernels operate on.
"""

from __future__ import annotations

from repro.core.machine import Machine
from repro.core.memory import WORD_SIZE
from repro.core.relocate import relocate
from repro.mem.pool import RelocationPool


class TiledMatrix:
    """A row-major matrix of 8-byte elements in simulated memory."""

    def __init__(self, machine: Machine, rows: int, cols: int, align: int = WORD_SIZE) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"bad matrix shape {rows}x{cols}")
        self.machine = machine
        self.rows = rows
        self.cols = cols
        self.base = machine.malloc(rows * cols * WORD_SIZE, align=align)

    def address(self, row: int, col: int) -> int:
        return self.base + (row * self.cols + col) * WORD_SIZE

    def get(self, row: int, col: int) -> int:
        return self.machine.load(self.address(row, col))

    def set(self, row: int, col: int, value: int) -> None:
        self.machine.store(self.address(row, col), value)

    def fill(self, fn) -> None:
        for row in range(self.rows):
            for col in range(self.cols):
                self.set(row, col, fn(row, col))


class RelocatedTile:
    """A tile relocated into a contiguous buffer (forwarding-backed).

    Reads and writes go straight to the buffer; the original addresses
    forward, so stray element pointers remain valid.  ``writeback`` is
    unnecessary -- the buffer *is* the data now -- which is the deep
    difference from plain copying.
    """

    def __init__(
        self,
        machine: Machine,
        matrix: TiledMatrix,
        row0: int,
        col0: int,
        tile_rows: int,
        tile_cols: int,
        pool: RelocationPool,
    ) -> None:
        if not (0 <= row0 and row0 + tile_rows <= matrix.rows):
            raise ValueError("tile rows out of range")
        if not (0 <= col0 and col0 + tile_cols <= matrix.cols):
            raise ValueError("tile cols out of range")
        self.machine = machine
        self.rows = tile_rows
        self.cols = tile_cols
        self.base = pool.allocate(tile_rows * tile_cols * WORD_SIZE)
        # Relocate row by row: each row of the tile is contiguous in the
        # source, so one relocate() per row moves `tile_cols` words.
        for row in range(tile_rows):
            relocate(
                machine,
                matrix.address(row0 + row, col0),
                self.base + row * tile_cols * WORD_SIZE,
                tile_cols,
            )

    def address(self, row: int, col: int) -> int:
        return self.base + (row * self.cols + col) * WORD_SIZE

    def get(self, row: int, col: int) -> int:
        return self.machine.load(self.address(row, col))

    def set(self, row: int, col: int, value: int) -> None:
        self.machine.store(self.address(row, col), value)


def tiled_matmul(
    machine: Machine,
    a: TiledMatrix,
    b: TiledMatrix,
    c: TiledMatrix,
    tile: int,
    pool: RelocationPool | None = None,
    work_per_madd: int = 2,
) -> None:
    """C += A x B with square tiling; optionally relocating each B tile.

    With ``pool`` set, every B tile is relocated into contiguous pool
    memory before its reuse loop (the copying optimization, made safe by
    forwarding).  Without it, the kernel reads B in place -- and a
    pathological B layout (rows a multiple of the cache way size apart)
    conflict-misses on every reuse.
    """
    if a.cols != b.rows or c.rows != a.rows or c.cols != b.cols:
        raise ValueError("shape mismatch")
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    m = machine
    for kk in range(0, a.cols, tile):
        k_span = min(tile, a.cols - kk)
        for jj in range(0, b.cols, tile):
            j_span = min(tile, b.cols - jj)
            if pool is not None:
                b_tile = RelocatedTile(m, b, kk, jj, k_span, j_span, pool)

                def read_b(k, j):
                    return b_tile.get(k - kk, j - jj)
            else:

                def read_b(k, j):
                    return b.get(k, j)
            for i in range(a.rows):
                for k in range(kk, kk + k_span):
                    a_ik = a.get(i, k)
                    for j in range(jj, jj + j_span):
                        m.execute(work_per_madd)
                        c.set(i, j, (c.get(i, j) + a_ik * read_b(k, j)) & ((1 << 64) - 1))
