"""Parallel-table merging (the Compress optimization, Section 5.3).

Compress indexes two parallel arrays -- ``htab`` (8-byte hash codes) and
``codetab`` (2-byte codes) -- with the same index ``i``.  The
optimization copies both into one interleaved table ``T`` with
``T[i] = (htab[i], codetab[i])``, so a probe that needs both values
touches one line instead of two.

Relocation granularity imposes an asymmetry that this module models
faithfully (Section 3.3: two objects relocated to different destinations
may not share a word):

* ``htab`` entries are one word each, so each old entry can forward to
  its interleaved slot -- stray pointers into ``htab`` stay safe;
* ``codetab`` entries are sub-word (four share a word) and their new
  homes are *different* interleaved slots, so they cannot be forwarded
  individually.  They are copied instead, and the application must update
  its own ``codetab`` references (which Compress can, since accesses go
  through the table base).

The paper's headline subtlety -- merging *hurts* at 32 B and 64 B lines
and only wins at 128 B -- comes from the interleaved stride: fewer
entries fit per line, which penalises the (frequent) probes that need
``htab`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine import Machine
from repro.core.memory import WORD_SIZE
from repro.mem.pool import RelocationPool


@dataclass
class MergedTable:
    """Description of the interleaved table produced by ``merge_tables``."""

    base: int
    stride: int
    entries: int
    a_offset: int
    b_offset: int

    def entry_address(self, index: int) -> int:
        return self.base + index * self.stride

    def a_address(self, index: int) -> int:
        return self.base + index * self.stride + self.a_offset

    def b_address(self, index: int) -> int:
        return self.base + index * self.stride + self.b_offset


def merge_tables(
    machine: Machine,
    base_a: int,
    elem_a_bytes: int,
    base_b: int,
    elem_b_bytes: int,
    entries: int,
    pool: RelocationPool,
) -> MergedTable:
    """Interleave two parallel arrays into one table in ``pool``.

    ``a`` elements must be exactly one word (they are relocated with
    forwarding stubs); ``b`` elements may be sub-word (they are copied,
    see module docstring).  Returns the merged-table descriptor.
    """
    if elem_a_bytes != WORD_SIZE:
        raise ValueError(
            f"table A elements must be one word ({WORD_SIZE} B) to be "
            f"individually relocatable, got {elem_a_bytes}"
        )
    if elem_b_bytes not in (1, 2, 4, 8):
        raise ValueError(f"unsupported element size {elem_b_bytes}")
    if entries <= 0:
        raise ValueError(f"entries must be positive, got {entries}")
    stride = elem_a_bytes + elem_b_bytes
    stride = (stride + WORD_SIZE - 1) & ~(WORD_SIZE - 1)
    base = pool.allocate(stride * entries)
    merged = MergedTable(
        base=base,
        stride=stride,
        entries=entries,
        a_offset=0,
        b_offset=elem_a_bytes,
    )
    for index in range(entries):
        # A-entry: copy, then forward the old word to the new slot.
        value_a = machine.unforwarded_read(base_a + index * elem_a_bytes)
        machine.unforwarded_write(merged.a_address(index), value_a, 0)
        machine.unforwarded_write(base_a + index * elem_a_bytes, merged.a_address(index), 1)
        # B-entry: plain copy (sub-word entries cannot be forwarded).
        value_b = machine.load(base_b + index * elem_b_bytes, elem_b_bytes)
        machine.store(merged.b_address(index), value_b, elem_b_bytes)
    machine.note_relocation(entries, entries)
    machine.note_optimizer_invocation()
    return merged
