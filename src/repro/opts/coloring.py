"""Data coloring: conflict-avoiding placement (Section 2.2).

Data coloring partitions the cache into logical regions ("colors") and
relocates data-structure elements that are live at the same time into
*different* colors, so they can never conflict-miss against each other.
The paper cites it as one of the optimizations memory forwarding makes
safe; we provide it both for completeness and for the conflict-miss
ablation benchmark.

:class:`ColoredAllocator` hands out pool chunks whose cache-set indices
fall inside the requested color's band.  The pool is viewed as a series
of *spans*, each covering the full set-index range once; color ``c``
owns the ``c``-th band of every span.
"""

from __future__ import annotations

from repro.core.errors import AllocationError
from repro.core.machine import Machine
from repro.core.memory import WORD_SIZE
from repro.core.relocate import relocate
from repro.mem.pool import RelocationPool


class ColoredAllocator:
    """Allocates relocation targets constrained to cache-color bands.

    Parameters
    ----------
    pool:
        Backing pool.  The allocator manages the pool's address range
        directly (do not mix with plain ``pool.allocate`` calls).
    line_size, num_sets:
        Geometry of the cache being partitioned; one span covers
        ``line_size * num_sets`` bytes.
    colors:
        Number of equal partitions; must divide ``num_sets``.
    """

    def __init__(
        self, pool: RelocationPool, line_size: int, num_sets: int, colors: int
    ) -> None:
        if colors < 1 or num_sets % colors:
            raise ValueError(f"{colors} colors do not divide {num_sets} sets")
        self.pool = pool
        self.line_size = line_size
        self.colors = colors
        self.span_bytes = line_size * num_sets
        self.band_bytes = self.span_bytes // colors
        # Align the first span so band boundaries coincide with set bands.
        base = (pool.base + self.span_bytes - 1) & ~(self.span_bytes - 1)
        if base + self.span_bytes > pool.limit:
            raise AllocationError("pool too small for one aligned color span")
        self._span_base = base
        self._bumps = [0] * colors  # bytes consumed within each color band

    def allocate(self, nbytes: int, color: int) -> int:
        """Return a chunk of ``nbytes`` mapping into ``color``'s band."""
        if not 0 <= color < self.colors:
            raise ValueError(f"color {color} out of range [0, {self.colors})")
        size = (nbytes + WORD_SIZE - 1) & ~(WORD_SIZE - 1)
        if size > self.band_bytes:
            raise AllocationError(
                f"object of {size} bytes exceeds color band of {self.band_bytes}"
            )
        bump = self._bumps[color]
        # Does the chunk still fit in the current span's band?
        span, offset = divmod(bump, self.band_bytes)
        if offset + size > self.band_bytes:
            span += 1
            bump = span * self.band_bytes
            offset = 0
        address = (
            self._span_base
            + span * self.span_bytes
            + color * self.band_bytes
            + offset
        )
        if address + size > self.pool.limit:
            raise AllocationError(f"color {color} exhausted the pool")
        self._bumps[color] = bump + size
        self.pool.high_water = max(
            self.pool.high_water, address + size - self.pool.base
        )
        return address

    def color_of(self, address: int) -> int:
        """Which color band an address falls in (for assertions)."""
        offset = (address - self._span_base) % self.span_bytes
        return offset // self.band_bytes


def recolor(
    machine: Machine,
    objects: list[tuple[int, int]],
    allocator: ColoredAllocator,
) -> list[int]:
    """Relocate ``(address, nbytes)`` objects round-robin across colors.

    Objects that are accessed together get distinct colors, eliminating
    mutual conflicts.  Returns the new addresses, in order.
    """
    new_addresses = []
    for index, (address, nbytes) in enumerate(objects):
        color = index % allocator.colors
        target = allocator.allocate(nbytes, color)
        relocate(machine, address, target, (nbytes + WORD_SIZE - 1) // WORD_SIZE)
        new_addresses.append(target)
    machine.note_optimizer_invocation()
    return new_addresses
