"""Layout optimizations enabled by memory forwarding (Section 2.2).

=================  ====================================================
``linearize``      counter-triggered list linearization (VIS policy)
``packing``        record+satellite-array packing (Eqntott, Figure 8)
``clustering``     subtree clustering for trees (BH, Figure 9)
``merging``        parallel-table interleaving (Compress)
``coloring``       conflict-free placement into cache-set bands
``copying``        forwarding-backed tile relocation for blocked loops
=================  ====================================================
"""

from repro.opts.clustering import ClusteringResult, cluster_subtrees
from repro.opts.coloring import ColoredAllocator, recolor
from repro.opts.copying import RelocatedTile, TiledMatrix, tiled_matmul
from repro.opts.linearize import ListLinearizer
from repro.opts.merging import MergedTable, merge_tables
from repro.opts.packing import pack_pointer_table, pack_record_with_array

__all__ = [
    "ClusteringResult",
    "ColoredAllocator",
    "ListLinearizer",
    "MergedTable",
    "RelocatedTile",
    "TiledMatrix",
    "cluster_subtrees",
    "merge_tables",
    "pack_pointer_table",
    "pack_record_with_array",
    "recolor",
    "tiled_matmul",
]
