"""Subtree clustering (the BH optimization, Section 5.3 / Figure 9).

BH builds its octree depth-first but traverses it in data-dependent
order, so consecutive visits jump across the heap.  Subtree clustering
relocates the *internal* nodes so that each cache-line-sized chunk holds
a subtree's top in its most balanced form: whichever child the traversal
descends into next, it is likely already in the current line.

The algorithm fills each chunk with up to ``line_size // node_bytes``
nodes taken in breadth-first order from the subtree root, then recurses
on the children left outside ("frontier" nodes become roots of new
chunks).  Parent child-pointers are rewritten to the new locations as we
go -- and any pointer we miss is caught by memory forwarding, which is
what makes the optimization safe to apply at all (the paper's point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.machine import NULL, Machine
from repro.core.memory import WORD_SIZE
from repro.core.relocate import relocate
from repro.mem.pool import RelocationPool

#: Predicate deciding whether a node takes part in clustering (BH clusters
#: only non-leaf nodes; its leaves live on a separate list).
NodeFilter = Callable[[Machine, int], bool]


@dataclass
class ClusteringResult:
    """Outcome of one clustering pass."""

    nodes_moved: int = 0
    chunks: int = 0


def cluster_subtrees(
    machine: Machine,
    root_slot: int,
    child_offsets: list[int],
    node_bytes: int,
    pool: RelocationPool,
    line_size: int,
    include: NodeFilter | None = None,
) -> ClusteringResult:
    """Cluster the tree reachable from the pointer word at ``root_slot``.

    Parameters
    ----------
    root_slot:
        Address of the pointer *word* naming the (sub)tree root, so the
        root pointer itself can be updated.
    child_offsets:
        Byte offsets of the child-pointer fields within a node.
    node_bytes:
        Node size (word multiple).
    pool:
        Destination pool; chunks are line-aligned within it.
    line_size:
        The cache line size to pack for.
    include:
        Optional filter; nodes for which it returns False are left in
        place (and their subtrees are not descended into).
    """
    if node_bytes % WORD_SIZE:
        raise ValueError(f"node size must be a word multiple, got {node_bytes}")
    node_words = node_bytes // WORD_SIZE
    capacity = max(1, line_size // node_bytes)
    result = ClusteringResult()

    pending = [root_slot]
    while pending:
        slot = pending.pop()
        root = machine.load(slot)
        if root == NULL:
            continue
        if include is not None and not include(machine, root):
            continue

        # Breadth-first collection of up to `capacity` nodes.  Each entry
        # records how to patch the pointer that names it: an external slot
        # for the group root, or (parent group index, child offset) for
        # the rest.  BFS order guarantees parents precede children.
        group: list[tuple[int, tuple]] = [(root, ("slot", slot))]
        members = {root}
        cursor = 0
        while len(group) < capacity and cursor < len(group):
            node = group[cursor][0]
            for offset in child_offsets:
                if len(group) >= capacity:
                    break
                child = machine.load(node + offset)
                if child == NULL or child in members:
                    continue
                if include is not None and not include(machine, child):
                    continue
                group.append((child, ("parent", cursor, offset)))
                members.add(child)
            cursor += 1

        # Line-align multi-node chunks so the group really shares a line;
        # when only one node fits per line, alignment would just pad the
        # footprint, so pack tightly instead.
        chunk_align = line_size if capacity > 1 else WORD_SIZE
        chunk = pool.allocate(len(group) * node_bytes, align=chunk_align)
        new_addresses: list[int] = []
        for index, (old, patch) in enumerate(group):
            new = chunk + index * node_bytes
            relocate(machine, old, new, node_words)
            new_addresses.append(new)
            if patch[0] == "slot":
                machine.store(patch[1], new)
            else:
                _, parent_index, offset = patch
                machine.store(new_addresses[parent_index] + offset, new)
        result.nodes_moved += len(group)
        result.chunks += 1

        # Children hanging off the group become roots of new chunks.  Read
        # their pointers from the relocated copies (the live words); a
        # pointer naming another group member was patched to that member's
        # *new* address, so exclude those as well as the old ones.
        members.update(new_addresses)
        for index, (old, _) in enumerate(group):
            new = new_addresses[index]
            for offset in child_offsets:
                child = machine.load(new + offset)
                if child != NULL and child not in members:
                    pending.append(new + offset)

    machine.note_optimizer_invocation()
    return result
