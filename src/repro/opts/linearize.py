"""Counter-triggered list linearization policy (Section 5.3).

The VIS case study adds an operation counter to every list head and
linearizes a list whenever its counter crosses a threshold (50 in the
paper).  :class:`ListLinearizer` packages that policy for *any* list
layout -- applications with their own node records (Health's patient
lists, Radiosity's interaction lists) use this rather than the generic
:class:`~repro.runtime.listlib.ListLib`.

The counter itself is modeled as one word of application state: each
update is charged a load and a store, as the real added field would cost.
"""

from __future__ import annotations

from repro.core.machine import Machine
from repro.core.relocate import list_linearize
from repro.mem.pool import RelocationPool

DEFAULT_THRESHOLD = 50


class ListLinearizer:
    """Periodic linearization for lists with arbitrary node layouts.

    Parameters
    ----------
    machine:
        The simulated machine.
    pool:
        Destination pool for relocated nodes.
    next_offset, node_bytes:
        Layout of the application's list node.
    threshold:
        Structural operations between linearizations.
    """

    def __init__(
        self,
        machine: Machine,
        pool: RelocationPool,
        next_offset: int,
        node_bytes: int,
        threshold: int = DEFAULT_THRESHOLD,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.machine = machine
        self.pool = pool
        self.next_offset = next_offset
        self.node_bytes = node_bytes
        self.threshold = threshold
        self.linearizations = 0
        self.nodes_moved = 0
        # One counter word per list head; modeled as a field of the head
        # record (a load + store per update, charged below).
        self._counters: dict[int, int] = {}

    def note_op(self, head_handle: int) -> bool:
        """Record one insert/delete on the list; linearize past threshold.

        Returns True if a linearization was performed.
        """
        self.machine.execute(2)  # counter load + store
        count = self._counters.get(head_handle, 0) + 1
        if count > self.threshold:
            self.linearize(head_handle)
            self._counters[head_handle] = 0
            return True
        self._counters[head_handle] = count
        return False

    def linearize(self, head_handle: int) -> int:
        """Linearize the list now; returns nodes moved."""
        _, moved = list_linearize(
            self.machine, head_handle, self.next_offset, self.node_bytes, self.pool
        )
        self.linearizations += 1
        self.nodes_moved += moved
        return moved
