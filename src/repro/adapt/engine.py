"""The adaptive relocation engine: profile -> policy -> safe relocation.

``AdaptEngine`` hangs off the machine's timeline ``on_window`` hook.
Every closed window it folds the heatmap into a decayed profile, asks
its policy whether the window looks bad enough to act, and — when the
policy fires — executes one registered layout action (re-linearization,
hot-object copying, or coloring-aware placement) *through the machine's
timed operations*, so the relocation's cost shows up in the simulation
exactly like the paper's instruction overhead.

Safety comes for free from memory forwarding: applications register
candidate actions up front and keep running with whatever pointers they
hold; any pointer made stale by an engine relocation chases its
forwarding chain to the new location (the entire point of the paper).

Replay parity: the engine issues machine operations only from inside
``on_window`` of a *full* window (``refs == interval``).  Capture ticks
the timeline after each reference and the trace records engine
references in stream order, so a replay reproduces the same window
boundaries and re-executes the identical relocations — adaptive cells
replay bit-exact under their own policy-fingerprinted trace key.  The
trailing partial window flushed by ``finish()`` never executes
decisions, so no machine operation can occur after the final sample.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.adapt.config import AdaptConfig
from repro.adapt.policy import (
    Policy,
    RelocationDecision,
    WindowFeedback,
    make_policy,
)
from repro.adapt.profile import HeatProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import Machine
    from repro.mem.pool import RelocationPool


@dataclass
class LedgerEntry:
    """Cost/benefit accounting for one executed decision.

    ``cost_cycles`` is the simulated-cycle delta spent executing the
    relocation.  The benefit settles one full window later:
    ``benefit_cycles`` is the stall-slot reduction of the following
    window relative to the triggering window, scaled to that window's
    references — stall slots saved are cycles not spent stalled.
    """

    decision: int
    window: int
    candidate: str
    cost_cycles: float
    stall_rate_before: float
    stall_rate_after: float | None = None
    benefit_cycles: float | None = None
    settled: bool = False

    @property
    def net_cycles(self) -> float:
        return (self.benefit_cycles or 0.0) - self.cost_cycles


@dataclass
class _Asset:
    """One registered candidate layout action."""

    action: str
    target: str
    execute: Callable[["AdaptEngine"], None]

    @property
    def candidate(self) -> str:
        return f"{self.action}:{self.target}"


class AdaptEngine:
    """Online feedback-driven relocation driver for one machine run."""

    def __init__(self, machine: "Machine", config: AdaptConfig) -> None:
        self.machine = machine
        self.config = config
        self.policy: Policy = make_policy(config)
        self.profile = HeatProfile(config.decay)
        self.decisions: list[RelocationDecision] = []
        self.ledger: list[LedgerEntry] = []
        self.counters: dict[str, float] = {
            "windows": 0,
            "decisions": 0,
            "cost_cycles": 0.0,
            "benefit_cycles": 0.0,
            "settled": 0,
            "skipped_cooldown": 0,
            "skipped_relocation": 0,
        }
        self._assets: dict[str, _Asset] = {}
        self._pool: "RelocationPool | None" = None
        self._busy = False
        self._cooldown_left = 0
        self._pending: LedgerEntry | None = None
        self._seen_relocated = machine.relocation_stats.words_relocated

    # -- wiring --------------------------------------------------------
    def install(self) -> None:
        """Attach to the machine's timeline (called by ``Machine``)."""
        timeline = self.machine.timeline
        assert timeline is not None, "adapt engine requires a timeline"
        timeline.add_on_window(self.on_window)

    # -- candidate registration (pure bookkeeping, no machine ops) -----
    def register_list(
        self, name: str, head_handle: int, next_offset: int, node_bytes: int
    ) -> None:
        """Register one linked list for on-demand re-linearization."""
        self.register_lists(name, [head_handle], next_offset, node_bytes)

    def register_lists(
        self,
        name: str,
        head_handles: list[int],
        next_offset: int,
        node_bytes: int,
    ) -> None:
        """Register a group of linked lists re-linearized as one action."""
        handles = list(head_handles)

        def execute(engine: "AdaptEngine") -> None:
            from repro.core.relocate import list_linearize

            pool = engine._ensure_pool()
            for handle in handles:
                list_linearize(
                    engine.machine, handle, next_offset, node_bytes, pool
                )

        self._add(_Asset("relinearize", name, execute))

    def register_objects(
        self,
        name: str,
        objects: list[tuple[int, int]],
        slots: list[int] | None = None,
    ) -> None:
        """Register ``(address, nbytes)`` objects for hot-first copying.

        ``slots``, when given, is a parallel list of pointer-cell
        addresses: after relocating object ``i`` the engine stores the
        new address into ``slots[i]`` (0 entries are skipped), repairing
        the principal pointer the way a real optimizer would.  Pointers
        *not* repaired stay safe regardless — they chase the forwarding
        chain — but each chase is a timed access, so repair is what
        makes copying profitable rather than merely correct.
        """
        paired = list(
            zip(objects, slots if slots is not None else [0] * len(objects))
        )

        def execute(engine: "AdaptEngine") -> None:
            from repro.core.relocate import relocate

            machine = engine.machine
            pool = engine._ensure_pool()
            shift = machine.timeline.region_shift
            profile = engine.profile
            # Pack the hottest objects first so they land adjacent at the
            # front of the pool (ties broken by address for determinism).
            ordered = sorted(
                paired,
                key=lambda it: (-profile.heat_of(it[0][0], shift), it[0][0]),
            )
            for (address, nbytes), slot in ordered:
                target = pool.allocate(nbytes)
                relocate(machine, address, target, (nbytes + 7) // 8)
                if slot:
                    machine.store(slot, target)
            machine.note_optimizer_invocation()

        self._add(_Asset("copy", name, execute))

    def register_recolor(
        self,
        name: str,
        objects: list[tuple[int, int]],
        colors: int = 4,
        slots: list[int] | None = None,
    ) -> None:
        """Register objects for coloring-aware (conflict-avoiding) placement.

        ``slots`` repairs principal pointers after the recolor, exactly
        as in :meth:`register_objects`.
        """
        items = list(objects)
        cells = list(slots) if slots is not None else [0] * len(items)

        def execute(engine: "AdaptEngine") -> None:
            from repro.opts.coloring import ColoredAllocator, recolor

            machine = engine.machine
            hierarchy = machine.config.hierarchy
            num_sets = hierarchy.l1_size // (
                hierarchy.line_size * hierarchy.l1_assoc
            )
            ncolors = colors
            while ncolors > 1 and num_sets % ncolors:
                ncolors //= 2
            span = hierarchy.line_size * num_sets
            total = sum(nbytes for _, nbytes in items)
            pool = machine.create_pool(
                max(4 * span, 2 * total + 2 * span), f"adapt.recolor.{name}"
            )
            allocator = ColoredAllocator(
                pool, hierarchy.line_size, num_sets, ncolors
            )
            new_addresses = recolor(machine, items, allocator)
            for slot, target in zip(cells, new_addresses):
                if slot:
                    machine.store(slot, target)

        self._add(_Asset("recolor", name, execute))

    def _add(self, asset: _Asset) -> None:
        if asset.candidate in self._assets:
            raise ValueError(f"duplicate adapt candidate {asset.candidate!r}")
        self._assets[asset.candidate] = asset

    @property
    def candidates(self) -> list[str]:
        """Candidate ids in registration (priority) order."""
        return list(self._assets)

    # -- per-window driver ---------------------------------------------
    def on_window(self, window: dict[str, Any]) -> None:
        timeline = self.machine.timeline
        access, forwarded = timeline.heat_snapshot()
        self.profile.fold(access, forwarded)
        self.counters["windows"] += 1
        refs = window["refs"]
        stall_rate = window["stall_slots"] / refs if refs else 0.0
        full = refs >= timeline.interval
        if full:
            self._settle(stall_rate, refs)
        if not full:
            # Trailing partial window (finish() flush): observe only.
            # Executing here would issue machine operations after the
            # final sample and break capture/replay window parity.
            return
        if self._busy or not self._assets:
            return
        relocated = self.machine.relocation_stats.words_relocated
        if relocated != self._seen_relocated:
            # Relocation traffic (an application optimizer, or our own
            # previous action) dominated this window; its miss spike is
            # self-inflicted noise, not workload behaviour.  Never
            # trigger on it.
            self._seen_relocated = relocated
            self.counters["skipped_relocation"] += 1
            return
        if self.counters["decisions"] >= self.config.max_actions:
            return
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            self.counters["skipped_cooldown"] += 1
            return
        feedback = WindowFeedback(
            index=window["index"],
            refs=refs,
            miss_rate=window["miss_rate"],
            chase_rate=window["chases"] / refs if refs else 0.0,
            stall_rate=stall_rate,
        )
        reason = self.policy.observe(feedback)
        if reason is None:
            return
        candidate = self.policy.choose(self.candidates)
        self._execute(candidate, feedback, reason)

    def _settle(self, stall_rate: float, refs: int) -> None:
        entry = self._pending
        if entry is None:
            return
        self._pending = None
        entry.stall_rate_after = stall_rate
        entry.benefit_cycles = (entry.stall_rate_before - stall_rate) * refs
        entry.settled = True
        self.counters["settled"] += 1
        self.counters["benefit_cycles"] += entry.benefit_cycles
        self.policy.reward(entry.candidate, entry.net_cycles)

    def _execute(
        self, candidate: str, feedback: WindowFeedback, reason: str
    ) -> None:
        asset = self._assets[candidate]
        machine = self.machine
        self._busy = True
        start_cycle = machine.timing.cycle
        try:
            asset.execute(self)
        finally:
            self._busy = False
        cost = machine.timing.cycle - start_cycle
        decision = RelocationDecision(
            index=len(self.decisions),
            window=feedback.index,
            policy=self.policy.name,
            action=asset.action,
            target=asset.target,
            reason=reason,
            trigger=feedback.trigger_metrics(),
        )
        self.decisions.append(decision)
        entry = LedgerEntry(
            decision=decision.index,
            window=feedback.index,
            candidate=candidate,
            cost_cycles=cost,
            stall_rate_before=feedback.stall_rate,
        )
        self.ledger.append(entry)
        self._pending = entry
        self.counters["decisions"] += 1
        self.counters["cost_cycles"] += cost
        self._cooldown_left = self.config.cooldown
        events = machine.events
        if events is not None:
            events.emit(
                "adapt.decision",
                index=decision.index,
                window=decision.window,
                policy=decision.policy,
                action=decision.action,
                target=decision.target,
                reason=reason,
                cost_cycles=cost,
                miss_rate=feedback.miss_rate,
                chase_rate=feedback.chase_rate,
                stall_rate=feedback.stall_rate,
            )

    def _ensure_pool(self) -> "RelocationPool":
        if self._pool is None:
            self._pool = self.machine.create_pool(
                self.config.pool_bytes, "adapt"
            )
        return self._pool

    # -- export --------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """JSON-safe audit record carried in ``AppResult.extras['adapt']``.

        ``counters`` reconcile with the event stream by construction:
        ``counters['decisions'] == len(decisions)`` and one
        ``adapt.decision`` event is emitted per decision (when the
        machine has an event log).
        """
        return {
            "policy": self.policy.name,
            "config": asdict(self.config),
            "candidates": self.candidates,
            "counters": dict(self.counters),
            "decisions": [asdict(decision) for decision in self.decisions],
            "ledger": [asdict(entry) for entry in self.ledger],
            "profile": self.profile.to_payload(),
        }
