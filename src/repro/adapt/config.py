"""Configuration for the adaptive relocation engine.

``AdaptConfig`` is a frozen leaf dataclass so it can nest inside
``MachineConfig`` and flow through ``dataclasses.asdict`` into config
fingerprints unchanged — two runs with different policy knobs can never
alias in the trace/result cache.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Known policy names, in the order they appear in experiment matrices.
POLICIES = ("threshold", "hysteresis", "epsilon_greedy")

#: Default heatmap region granularity (bytes); mirrored by
#: ``MachineConfig.heatmap_region_bytes``.
DEFAULT_HEATMAP_REGION = 64 * 1024

#: Bounds for the serve-tier knob validation (shared so the CLI and the
#: HTTP protocol reject the same ranges).
MIN_INTERVAL = 64
MAX_INTERVAL = 1 << 20
MAX_PATIENCE = 64
MAX_COOLDOWN = 1024
MAX_ACTIONS_LIMIT = 256


@dataclass(frozen=True)
class AdaptConfig:
    """Knobs for one adaptive run.

    Attributes
    ----------
    policy:
        One of :data:`POLICIES`.
    interval:
        Window width (references) used when ``timeline_interval`` is not
        set explicitly; the engine always adopts whatever window width
        the machine's timeline ends up with.
    miss_rate_threshold:
        L1 miss-rate above which a window counts as "bad".
    chase_rate_threshold:
        Forwarding-chase rate (chases per reference) above which a
        window counts as "bad".
    decay:
        Exponential decay applied to per-region heat between windows
        (``heat = heat * decay + window_delta``).
    patience:
        Consecutive bad windows required before the hysteresis policy
        fires (threshold/epsilon-greedy fire immediately).
    cooldown:
        Windows to wait after executing a decision before another may
        fire (applies to every policy; damps thrash).
    epsilon:
        Exploration probability for the epsilon-greedy policy.
    seed:
        Seed for the epsilon-greedy policy's deterministic RNG.
    pool_bytes:
        Size of the relocation pool the engine lazily creates on its
        first executed decision.
    max_actions:
        Hard cap on executed decisions per run (bounds pool pressure).
    """

    policy: str = "hysteresis"
    interval: int = 2048
    miss_rate_threshold: float = 0.08
    chase_rate_threshold: float = 0.02
    decay: float = 0.5
    patience: int = 2
    cooldown: int = 4
    epsilon: float = 0.1
    seed: int = 1
    pool_bytes: int = 4 << 20
    max_actions: int = 8

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown adapt policy {self.policy!r}; known: {list(POLICIES)}"
            )
        if not MIN_INTERVAL <= self.interval <= MAX_INTERVAL:
            raise ValueError(
                f"adapt interval must be in [{MIN_INTERVAL}, {MAX_INTERVAL}], "
                f"got {self.interval}"
            )
        for name in ("miss_rate_threshold", "chase_rate_threshold"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if not 1 <= self.patience <= MAX_PATIENCE:
            raise ValueError(
                f"patience must be in [1, {MAX_PATIENCE}], got {self.patience}"
            )
        if not 0 <= self.cooldown <= MAX_COOLDOWN:
            raise ValueError(
                f"cooldown must be in [0, {MAX_COOLDOWN}], got {self.cooldown}"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {self.epsilon}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.pool_bytes < 4096:
            raise ValueError(f"pool_bytes must be >= 4096, got {self.pool_bytes}")
        if not 1 <= self.max_actions <= MAX_ACTIONS_LIMIT:
            raise ValueError(
                f"max_actions must be in [1, {MAX_ACTIONS_LIMIT}], "
                f"got {self.max_actions}"
            )
