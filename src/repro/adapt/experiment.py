"""The adaptive-relocation experiment: static-never / static-once / adaptive.

The paper's optimizations are *static*: linearize once, when the
programmer-chosen trigger fires, and hope the traversal order never
changes.  The phase-changing workloads (:mod:`repro.apps.phased`) break
that assumption on purpose — a seeded mid-run flip of the hot lists —
and this experiment measures what each relocation *policy* does about
it:

* ``static-never`` — the unoptimized layout (variant ``N``);
* ``static-once`` — the app's own layout optimizer, run on its normal
  static trigger (variant ``L``), which goes stale at the flip;
* one adaptive arm per policy in :data:`repro.adapt.config.POLICIES` —
  variant ``L`` plus the feedback engine, which watches the timeline's
  per-window miss rate and re-linearizes (or copies / recolors) when
  the phase change degrades it.

The matrix runs at a 128-byte line — the regime where linearization
matters most (Figure 5) and therefore where a stale layout hurts most.
Every arm of one app computes the identical checksum (relocation never
changes logical order), which ``run`` verifies; an arm that broke this
would be exploiting a simulation bug, not locality.

Cells are normalized to their app's ``static-once`` arm, so the
headline reads directly: adaptive < 1.0 beats the paper's static
optimizer, and the per-decision ledger in each adaptive cell accounts
for exactly where the cycles went.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adapt.config import POLICIES, AdaptConfig
from repro.apps import PHASE_APPS
from repro.apps.base import Variant
from repro.experiments.report import render_table
from repro.experiments.runner import ExperimentRunner, RunSpec

#: Line size for the whole matrix: the largest Figure-5 line, where
#: traversal-order locality (and therefore a stale layout) matters most.
LINE_SIZE = 128

#: The two static arms; adaptive arms are named after their policy.
STATIC_NEVER = "static-never"
STATIC_ONCE = "static-once"


def adapt_config(policy: str) -> AdaptConfig:
    """The tuned engine configuration used for every adaptive cell.

    One shared config across apps and policies (only ``policy``
    varies), tuned against the phase apps' measured window profiles at
    :data:`LINE_SIZE`: the miss-rate threshold sits between the
    pre-flip steady state (~0.54–0.58 misses/ref for ``mst_phase``) and
    the post-flip regime (~0.70), so triggers fire only once the phase
    change has actually degraded locality.
    """
    return AdaptConfig(
        policy=policy,
        interval=1024,
        miss_rate_threshold=0.62,
        chase_rate_threshold=0.02,
        decay=0.5,
        patience=2,
        cooldown=4,
        max_actions=4,
        seed=1,
    )


def policy_matrix(adapt_policy: str | None = None) -> tuple[str, ...]:
    """The policy axis for a CLI ``--adapt-policy`` request.

    The full matrix by default; a specific request narrows to that one
    policy (the static arms are always run — they are the baselines).
    """
    if adapt_policy is None:
        return POLICIES
    return (adapt_policy,)


@dataclass
class AdaptCell:
    """One (app, arm) measurement of the policy matrix."""

    app: str
    #: ``static-never``, ``static-once``, or the adaptive policy name.
    arm: str
    variant: Variant
    cycles: float
    l1_misses: int
    checksum: int
    #: Engine audit (adaptive arms only; zeros for the static arms).
    decisions: int = 0
    cost_cycles: float = 0.0
    benefit_cycles: float = 0.0
    #: Relative to the same app's ``static-once`` arm (1.0 for it).
    normalized_cycles: float = 1.0
    #: Full engine payload (decisions, ledger, profile) for audit.
    payload: dict = field(default_factory=dict, repr=False)

    @property
    def adaptive(self) -> bool:
        return self.arm not in (STATIC_NEVER, STATIC_ONCE)

    @property
    def net_cycles(self) -> float:
        """Ledger net: settled benefit minus execution cost."""
        return self.benefit_cycles - self.cost_cycles


@dataclass
class AdaptResult:
    cells: list[AdaptCell] = field(default_factory=list)
    #: Adaptive cells that beat their app's static-once arm.
    adaptive_wins: list[tuple[str, str]] = field(default_factory=list)
    #: Every arm of every app computed the same checksum.
    checksums_equal: bool = True

    def cell(self, app: str, arm: str) -> AdaptCell:
        for cell in self.cells:
            if (cell.app, cell.arm) == (app, arm):
                return cell
        raise KeyError((app, arm))

    def render(self) -> str:
        rows = [
            (
                cell.app,
                cell.arm,
                f"{cell.cycles:.0f}",
                f"{cell.normalized_cycles:.3f}",
                cell.decisions,
                f"{cell.cost_cycles:.0f}",
                f"{cell.net_cycles:+.0f}" if cell.adaptive else "-",
            )
            for cell in self.cells
        ]
        table = render_table(
            ["App", "Arm", "Cycles", "Norm.time", "Decisions",
             "Cost", "LedgerNet"],
            rows,
            title=(
                "Adaptive relocation: static-never / static-once / "
                f"policy arms at {LINE_SIZE}B lines (norm. vs static-once)"
            ),
        )
        wins = (
            ", ".join(f"{app}:{arm}" for app, arm in self.adaptive_wins)
            or "none"
        )
        footer = (
            f"adaptive arms beating static-once: {wins}\n"
            f"checksums equal across arms: {self.checksums_equal}"
        )
        return f"{table}\n\n{footer}"


def specs(
    scale: float,
    policies: tuple[str, ...] = POLICIES,
    apps: tuple[str, ...] = PHASE_APPS,
) -> list[RunSpec]:
    """The full run matrix (used by the CLI's parallel prime)."""
    out: list[RunSpec] = []
    for app in apps:
        out.append(RunSpec.make(app, Variant.N, LINE_SIZE, scale))
        out.append(RunSpec.make(app, Variant.L, LINE_SIZE, scale))
        for policy in policies:
            out.append(
                RunSpec.make(
                    app,
                    Variant.L,
                    LINE_SIZE,
                    scale,
                    adapt=adapt_config(policy),
                )
            )
    return out


def run(
    runner: ExperimentRunner | None = None,
    scale: float = 1.0,
    apps: tuple[str, ...] = PHASE_APPS,
    policies: tuple[str, ...] | None = None,
) -> AdaptResult:
    """Execute the matrix and assemble the normalized report.

    ``policies`` defaults to the runner's ``--adapt-policy`` request via
    :func:`policy_matrix` (the full policy set when unset).
    """
    runner = runner or ExperimentRunner(scale=scale)
    if policies is None:
        policies = policy_matrix(runner.adapt_policy)
    result = AdaptResult()
    for app in apps:
        arms: list[tuple[str, RunSpec]] = [
            (STATIC_NEVER, RunSpec.make(app, Variant.N, LINE_SIZE, runner.scale)),
            (STATIC_ONCE, RunSpec.make(app, Variant.L, LINE_SIZE, runner.scale)),
        ]
        for policy in policies:
            arms.append(
                (
                    policy,
                    RunSpec.make(
                        app,
                        Variant.L,
                        LINE_SIZE,
                        runner.scale,
                        adapt=adapt_config(policy),
                    ),
                )
            )
        app_cells: list[AdaptCell] = []
        for arm, spec in arms:
            outcome = runner.run_spec(spec)
            payload = outcome.extras.get("adapt") or {}
            counters = payload.get("counters", {})
            app_cells.append(
                AdaptCell(
                    app=app,
                    arm=arm,
                    variant=spec.variant,
                    cycles=outcome.stats.cycles,
                    l1_misses=(
                        outcome.stats.l1_load_misses_full
                        + outcome.stats.l1_store_misses_full
                    ),
                    checksum=outcome.checksum,
                    decisions=int(counters.get("decisions", 0)),
                    cost_cycles=counters.get("cost_cycles", 0.0),
                    benefit_cycles=counters.get("benefit_cycles", 0.0),
                    payload=payload,
                )
            )
        baseline = next(c for c in app_cells if c.arm == STATIC_ONCE)
        for cell in app_cells:
            if baseline.cycles:
                cell.normalized_cycles = cell.cycles / baseline.cycles
            if cell.adaptive and cell.cycles < baseline.cycles:
                result.adaptive_wins.append((app, cell.arm))
        if len({cell.checksum for cell in app_cells}) > 1:
            result.checksums_equal = False
        result.cells.extend(app_cells)
    return result


def manifest(result: AdaptResult, runner: ExperimentRunner) -> dict:
    """Schema-validated run manifest for the policy matrix."""
    from repro.obs import cell

    cells = [
        cell(
            f"{c.app}/{LINE_SIZE}B/{c.arm}",
            labels={
                "app": c.app,
                "arm": c.arm,
                "variant": c.variant.value,
                "line_size": LINE_SIZE,
            },
            values={
                "cycles": c.cycles,
                "l1_misses": c.l1_misses,
                "normalized_cycles": c.normalized_cycles,
                "decisions": c.decisions,
                "cost_cycles": c.cost_cycles,
                "benefit_cycles": c.benefit_cycles,
                "net_cycles": c.net_cycles,
            },
        )
        for c in result.cells
    ]
    summary: dict[str, float] = {
        "adaptive_wins": float(len(result.adaptive_wins)),
        "checksums_equal": 1.0 if result.checksums_equal else 0.0,
    }
    for c in result.cells:
        summary[f"normalized.{c.app}.{c.arm}"] = c.normalized_cycles
    return runner.manifest("adapt", cells, summary)


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner(verbose=True)).render())


if __name__ == "__main__":  # pragma: no cover
    main()
