"""Decaying per-region heat model folded from timeline windows.

The timeline keeps *cumulative* per-region access/forwarded counts; the
profile diffs those against its last snapshot every window and folds the
deltas into exponentially decayed heat values.  Decay keeps the profile
phase-sensitive: a traversal-order flip shifts which regions are hot
within a few windows instead of being drowned by history.
"""

from __future__ import annotations


class HeatProfile:
    """Exponentially decayed per-region access heat."""

    __slots__ = ("decay", "heat", "forwarded_heat", "_seen_access", "_seen_forwarded")

    def __init__(self, decay: float) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        #: region id -> decayed access heat
        self.heat: dict[int, float] = {}
        #: region id -> decayed forwarded-access heat
        self.forwarded_heat: dict[int, float] = {}
        self._seen_access: dict[int, int] = {}
        self._seen_forwarded: dict[int, int] = {}

    def fold(
        self, access: dict[int, int], forwarded: dict[int, int]
    ) -> tuple[int, int]:
        """Fold cumulative timeline heat into the decayed model.

        Returns ``(access_delta, forwarded_delta)`` — total new events
        since the previous fold.
        """
        decay = self.decay
        heat = self.heat
        if decay < 1.0:
            for region in heat:
                heat[region] *= decay
        total_access = 0
        seen = self._seen_access
        for region, count in access.items():
            delta = count - seen.get(region, 0)
            if delta:
                seen[region] = count
                heat[region] = heat.get(region, 0.0) + delta
                total_access += delta
        fheat = self.forwarded_heat
        if decay < 1.0:
            for region in fheat:
                fheat[region] *= decay
        total_forwarded = 0
        fseen = self._seen_forwarded
        for region, count in forwarded.items():
            delta = count - fseen.get(region, 0)
            if delta:
                fseen[region] = count
                fheat[region] = fheat.get(region, 0.0) + delta
                total_forwarded += delta
        return total_access, total_forwarded

    def hottest(self, n: int = 1) -> list[int]:
        """The ``n`` hottest region ids, hottest first (ties by id)."""
        return sorted(self.heat, key=lambda r: (-self.heat[r], r))[:n]

    def heat_of(self, address: int, region_shift: int) -> float:
        """Decayed heat of the region containing ``address``."""
        return self.heat.get(address >> region_shift, 0.0)

    def chase_fraction(self) -> float:
        """Forwarded share of decayed heat (0 when cold)."""
        total = sum(self.heat.values())
        if total <= 0.0:
            return 0.0
        return sum(self.forwarded_heat.values()) / total

    def to_payload(self) -> dict:
        """JSON-safe summary (top regions only; full maps can be huge)."""
        top = self.hottest(8)
        return {
            "regions": len(self.heat),
            "chase_fraction": self.chase_fraction(),
            "hottest": [
                {"region": region, "heat": self.heat[region]} for region in top
            ],
        }
