"""Pluggable relocation policies.

A policy sees one :class:`WindowFeedback` per completed timeline window
and answers two questions: *should we relocate now* (``observe``) and
*which candidate layout action* (``choose``).  Executed decisions are
reported back through ``reward`` once their benefit settles, which only
the epsilon-greedy bandit uses.

Policies are deliberately machine-free: they never touch the simulated
heap, so they can also drive relocation outside the engine (the SMP
false-sharing experiment feeds them per-round coherence feedback).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adapt.config import POLICIES, AdaptConfig
from repro.runtime.rng import DeterministicRNG


@dataclass(frozen=True)
class WindowFeedback:
    """Per-window signal the engine distills from the timeline."""

    index: int
    refs: int
    miss_rate: float
    chase_rate: float
    stall_rate: float

    def trigger_metrics(self) -> dict[str, float]:
        """The metrics a decision records as its trigger context."""
        return {
            "miss_rate": self.miss_rate,
            "chase_rate": self.chase_rate,
            "stall_rate": self.stall_rate,
        }


@dataclass(frozen=True)
class RelocationDecision:
    """One executed relocation, in full auditable form."""

    index: int
    window: int
    policy: str
    action: str
    target: str
    reason: str
    trigger: dict[str, float] = field(hash=False)

    @property
    def candidate(self) -> str:
        return f"{self.action}:{self.target}"


class Policy:
    """Base policy: trigger logic lives in subclasses; default candidate
    choice is the first (registration-priority) candidate."""

    name = "base"

    def __init__(self, config: AdaptConfig) -> None:
        self.config = config

    def observe(self, feedback: WindowFeedback) -> str | None:
        """Return a human-readable trigger reason, or ``None`` to hold."""
        raise NotImplementedError

    def choose(self, candidates: list[str]) -> str:
        """Pick one candidate id (``action:target``) from a sorted list."""
        return candidates[0]

    def reward(self, candidate: str, value: float) -> None:
        """Feed back the settled net benefit (cycles) of a decision."""


class ThresholdPolicy(Policy):
    """Fire the moment a window crosses either threshold."""

    name = "threshold"

    def observe(self, feedback: WindowFeedback) -> str | None:
        cfg = self.config
        if feedback.miss_rate > cfg.miss_rate_threshold:
            return (
                f"miss_rate {feedback.miss_rate:.4f} > "
                f"{cfg.miss_rate_threshold:.4f}"
            )
        if feedback.chase_rate > cfg.chase_rate_threshold:
            return (
                f"chase_rate {feedback.chase_rate:.4f} > "
                f"{cfg.chase_rate_threshold:.4f}"
            )
        return None


class HysteresisPolicy(ThresholdPolicy):
    """Require ``patience`` consecutive bad windows before firing."""

    name = "hysteresis"

    def __init__(self, config: AdaptConfig) -> None:
        super().__init__(config)
        self._bad_windows = 0

    def observe(self, feedback: WindowFeedback) -> str | None:
        reason = super().observe(feedback)
        if reason is None:
            self._bad_windows = 0
            return None
        self._bad_windows += 1
        if self._bad_windows < self.config.patience:
            return None
        self._bad_windows = 0
        return f"{reason} for {self.config.patience} consecutive windows"


class EpsilonGreedyPolicy(ThresholdPolicy):
    """Threshold trigger + epsilon-greedy bandit over candidate layouts.

    Each candidate is tried once before exploitation begins; after that,
    with probability ``epsilon`` a uniform-random candidate is explored,
    otherwise the best observed mean reward wins (ties by name).
    """

    name = "epsilon_greedy"

    def __init__(self, config: AdaptConfig) -> None:
        super().__init__(config)
        self._rng = DeterministicRNG(config.seed or 1)
        self._counts: dict[str, int] = {}
        self._values: dict[str, float] = {}

    def choose(self, candidates: list[str]) -> str:
        untried = [c for c in candidates if c not in self._counts]
        if untried:
            pick = untried[0]
        elif self._rng.chance(self.config.epsilon):
            pick = candidates[self._rng.randint(len(candidates))]
        else:
            pick = max(
                candidates,
                key=lambda c: (self._values.get(c, 0.0), c),
            )
        self._counts[pick] = self._counts.get(pick, 0) + 1
        return pick

    def reward(self, candidate: str, value: float) -> None:
        count = self._counts.get(candidate, 1)
        mean = self._values.get(candidate, 0.0)
        self._values[candidate] = mean + (value - mean) / count


_POLICY_CLASSES: dict[str, type[Policy]] = {
    cls.name: cls
    for cls in (ThresholdPolicy, HysteresisPolicy, EpsilonGreedyPolicy)
}
assert set(_POLICY_CLASSES) == set(POLICIES)


def make_policy(config: AdaptConfig) -> Policy:
    """Instantiate the policy named by ``config.policy``."""
    return _POLICY_CLASSES[config.policy](config)
