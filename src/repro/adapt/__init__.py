"""Online, feedback-driven relocation policies (DESIGN.md §5j).

The subsystem turns the timeline's live per-window feedback into
mid-run relocation decisions executed through the forwarding-safe
primitives:

- :mod:`repro.adapt.config` — ``AdaptConfig``, nested in
  ``MachineConfig`` and hence in every config fingerprint;
- :mod:`repro.adapt.profile` — decayed per-region heat model;
- :mod:`repro.adapt.policy` — threshold / hysteresis / epsilon-greedy
  policies emitting auditable ``RelocationDecision``s;
- :mod:`repro.adapt.engine` — the on_window driver with its
  cost/benefit ledger;
- :mod:`repro.adapt.experiment` — the ``python -m repro adapt``
  static-never vs static-once vs adaptive headline matrix.
"""

from repro.adapt.config import POLICIES, AdaptConfig
from repro.adapt.policy import (
    Policy,
    RelocationDecision,
    WindowFeedback,
    make_policy,
)
from repro.adapt.profile import HeatProfile

__all__ = [
    "AdaptConfig",
    "POLICIES",
    "Policy",
    "RelocationDecision",
    "WindowFeedback",
    "make_policy",
    "HeatProfile",
]
